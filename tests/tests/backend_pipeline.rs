//! Property tests pinning the lowered `RaOp` pipeline (executed by
//! `SerialBackend`) against the legacy flat-slice kernels
//! (`scan_select` / `hash_join` / `project_rows` / `difference`) on random
//! inputs, plus `TupleBatch` container round-trips. These are the
//! refactoring guardrails: the operator IR must derive byte-identical
//! results to composing the free functions by hand — and, since the
//! sharded backend landed, any backend's fixpoints must be byte-identical
//! to `SerialBackend`'s on random programs and inputs.

use gpulog::backend::{Backend, EvalContext, SerialBackend, ShardedBackend};
use gpulog::planner::{ColumnSource, EmitSource, JoinStep, ScanStep, VersionSel};
use gpulog::ra::project::{filter_rows, project_rows, scan_select};
use gpulog::ra::{difference, hash_join, RaOp, RaPipeline};
use gpulog::relation::RelationStorage;
use gpulog::DeviceTopology;
use gpulog::{EbmConfig, EngineConfig, GpulogEngine, NwayStrategy, RunStats, TupleBatch};
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_hisa::{Hisa, IndexSpec, DEFAULT_LOAD_FACTOR};
use proptest::prelude::*;

fn device() -> Device {
    Device::with_workers(DeviceProfile::nvidia_h100(), 4)
}

fn pairs_strategy(max_value: u32, max_rows: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_value, 0..max_value), 0..max_rows)
}

fn flatten(pairs: &[(u32, u32)]) -> Vec<u32> {
    pairs.iter().flat_map(|&(a, b)| [a, b]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // `Scan → HashJoin → Project` through `SerialBackend` must equal the
    // hand-composed `scan_select` → `hash_join` → `project_rows` chain.
    #[test]
    fn pipeline_matches_legacy_scan_join_project(
        outer in pairs_strategy(13, 120),
        inner in pairs_strategy(13, 80),
        key_col in 0usize..2,
    ) {
        let d = device();
        let outer_flat = flatten(&outer);
        let inner_flat = flatten(&inner);

        let inner_hisa = Hisa::build(&d, IndexSpec::new(2, vec![key_col]), &inner_flat).unwrap();
        let emit = [
            EmitSource::Outer(0),
            EmitSource::Outer(1),
            EmitSource::Inner(1 - key_col),
        ];
        let head_proj = [
            ColumnSource::Col(2),
            ColumnSource::Col(0),
            ColumnSource::Const(7),
        ];

        // The same rule lowered to an operator pipeline.
        let mut relations = vec![
            RelationStorage::new(&d, "Outer", 2, DEFAULT_LOAD_FACTOR).unwrap(),
            RelationStorage::new(&d, "Inner", 2, DEFAULT_LOAD_FACTOR).unwrap(),
            RelationStorage::new(&d, "Head", 3, DEFAULT_LOAD_FACTOR).unwrap(),
        ];
        relations[0].load_full(&outer_flat).unwrap();
        relations[1].load_full(&inner_flat).unwrap();
        let pipeline = RaPipeline {
            head: 2,
            ops: vec![
                RaOp::Scan {
                    step: ScanStep {
                        relation: 0,
                        version: VersionSel::Full,
                        const_filters: vec![],
                        eq_filters: vec![],
                        keep_cols: vec![0, 1],
                    },
                    filters: vec![],
                },
                RaOp::HashJoin {
                    step: JoinStep {
                        relation: 1,
                        version: VersionSel::Full,
                        outer_key_cols: vec![1],
                        inner_key_cols: vec![key_col],
                        inner_const_filters: vec![],
                        inner_eq_filters: vec![],
                        emit: emit.to_vec(),
                    },
                    filters: vec![],
                },
                RaOp::Project {
                    columns: head_proj.to_vec(),
                },
            ],
            text: "property pipeline".into(),
        };
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut relations,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        let outcome = SerialBackend.execute(&mut ctx, &pipeline).unwrap();
        let got = relations[2].take_new(&EbmConfig::default());

        // The storage path deduplicates the outer relation (HISA set
        // semantics), so compare against the legacy composition re-run over
        // the storage's canonical outer tuples: byte-identical output.
        let canon_outer = relations[0].full().tuples_flat().to_vec();
        let canon_scanned = scan_select(&d, &canon_outer, 2, &[], &[], &[0, 1]);
        let canon_joined = hash_join(&d, &canon_scanned, 2, &[1], &inner_hisa, &[], &[], &emit);
        let canon_expected = if canon_joined.is_empty() {
            Vec::new()
        } else {
            project_rows(&d, &canon_joined, 3, &head_proj)
        };
        prop_assert_eq!(outcome.derived_rows, canon_expected.len() / 3);
        prop_assert_eq!(got, canon_expected);
    }

    // A `Scan` op with constant/equality/comparison filters must equal
    // `scan_select` + `filter_rows`.
    #[test]
    fn scan_op_matches_legacy_scan_select(
        rows in pairs_strategy(6, 150),
        const_val in 0u32..6,
    ) {
        use gpulog::planner::FilterStep;
        use gpulog::CmpOp;

        let d = device();
        let flat = flatten(&rows);
        let filters = vec![FilterStep {
            left: ColumnSource::Col(0),
            op: CmpOp::Ne,
            right: ColumnSource::Col(1),
        }];

        let mut relations = [
            RelationStorage::new(&d, "Src", 2, DEFAULT_LOAD_FACTOR).unwrap(),
            RelationStorage::new(&d, "Head", 1, DEFAULT_LOAD_FACTOR).unwrap(),
        ];
        relations[0].load_full(&flat).unwrap();
        let canon = relations[0].full().tuples_flat().to_vec();

        let scanned = scan_select(&d, &canon, 2, &[(1, const_val)], &[], &[0]);
        let expected = filter_rows(&d, &scanned, 1, &[]);
        // keep_cols = [0] drops column 1, so the Ne filter on (0, 1) cannot
        // be applied post-scan; use a 2-column scan for the filter case.
        let scanned2 = scan_select(&d, &canon, 2, &[], &[], &[0, 1]);
        let expected2 = filter_rows(&d, &scanned2, 2, &filters);

        let run_pipeline = |ops: Vec<RaOp>, head: usize, arity: usize| {
            let mut rels = vec![
                RelationStorage::new(&d, "Src", 2, DEFAULT_LOAD_FACTOR).unwrap(),
                RelationStorage::new(&d, "Head", arity, DEFAULT_LOAD_FACTOR).unwrap(),
            ];
            rels[0].load_full(&flat).unwrap();
            let mut stats = RunStats::default();
            let mut ctx = EvalContext {
                device: &d,
                relations: &mut rels,
                stats: &mut stats,
                ebm: EbmConfig::default(),
            };
            SerialBackend
                .execute(
                    &mut ctx,
                    &RaPipeline {
                        head,
                        ops,
                        text: "scan property".into(),
                    },
                )
                .unwrap();
            rels[head].take_new(&EbmConfig::default())
        };

        let got = run_pipeline(
            vec![
                RaOp::Scan {
                    step: ScanStep {
                        relation: 0,
                        version: VersionSel::Full,
                        const_filters: vec![(1, const_val)],
                        eq_filters: vec![],
                        keep_cols: vec![0],
                    },
                    filters: vec![],
                },
                RaOp::Project {
                    columns: vec![ColumnSource::Col(0)],
                },
            ],
            1,
            1,
        );
        prop_assert_eq!(got, expected);

        let got2 = run_pipeline(
            vec![
                RaOp::Scan {
                    step: ScanStep {
                        relation: 0,
                        version: VersionSel::Full,
                        const_filters: vec![],
                        eq_filters: vec![],
                        keep_cols: vec![0, 1],
                    },
                    filters,
                },
                RaOp::Project {
                    columns: vec![ColumnSource::Col(0), ColumnSource::Col(1)],
                },
            ],
            1,
            2,
        );
        prop_assert_eq!(got2, expected2);
    }

    // The `Diff` op must install exactly `difference(new, full)` as the
    // delta and merge it into full.
    #[test]
    fn diff_op_matches_legacy_difference(
        base in pairs_strategy(15, 120),
        derived in pairs_strategy(15, 120),
    ) {
        let d = device();
        let base_flat = flatten(&base);
        let derived_flat = flatten(&derived);

        let mut relations =
            vec![RelationStorage::new(&d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap()];
        relations[0].load_full(&base_flat).unwrap();
        let expected_delta = difference(&d, &derived_flat, 2, relations[0].full().canonical());

        relations[0].push_new(&derived_flat);
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut relations,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        let outcome = SerialBackend
            .execute(&mut ctx, &RaPipeline::diff(0))
            .unwrap();

        prop_assert_eq!(outcome.new_rows, derived.len());
        prop_assert_eq!(outcome.delta_rows, expected_delta.len() / 2);
        prop_assert_eq!(relations[0].delta.tuples_flat(), expected_delta.as_slice());
        // Full must now be the union.
        let mut union: std::collections::BTreeSet<(u32, u32)> = base.iter().copied().collect();
        union.extend(derived.iter().copied());
        prop_assert_eq!(relations[0].len(), union.len());
    }

    // Any shard count must reach a fixpoint byte-identical to the serial
    // backend's, on random programs (REACH / SG), random inputs, and both
    // n-way strategies (covering `HashJoin` and `FusedJoin` sharding).
    #[test]
    fn sharded_fixpoints_match_serial_on_random_programs(
        edges in pairs_strategy(18, 80),
        program_idx in 0usize..2,
        strategy_idx in 0usize..2,
    ) {
        const REACH_SRC: &str = r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y).
            Reach(x, y) :- Edge(x, z), Reach(z, y).
        ";
        const SG_SRC: &str = r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl SG(x: number, y: number)
            .output SG
            SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
            SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
        ";
        let (src, output) = [(REACH_SRC, "Reach"), (SG_SRC, "SG")][program_idx];
        let nway = [
            NwayStrategy::TemporarilyMaterialized,
            NwayStrategy::FusedNestedLoop,
        ][strategy_idx];
        let edges: Vec<[u32; 2]> = edges.iter().map(|&(a, b)| [a, b]).collect();

        let run = |shards: usize| {
            let d = device();
            let cfg = EngineConfig::new().with_nway(nway).with_shard_count(shards);
            let mut engine = GpulogEngine::from_source(&d, src, cfg).unwrap();
            engine.add_facts("Edge", &edges).unwrap();
            let stats = engine.run().unwrap();
            (engine.relation_batch(output).unwrap(), stats.iterations)
        };
        let (serial_batch, serial_iterations) = run(1);
        for shards in [2usize, 7] {
            let (sharded_batch, iterations) = run(shards);
            prop_assert_eq!(
                sharded_batch.as_flat(),
                serial_batch.as_flat(),
                "{} with {} shards must be byte-identical to serial",
                output,
                shards
            );
            prop_assert_eq!(iterations, serial_iterations);
        }
    }

    // Deferring and batching full-merges must never change results: the
    // pipelined backend's fixpoints are byte-identical to the serial
    // backend's for S ∈ {1, 2, 7} shards, on random programs (REACH / SG),
    // random inputs, and both n-way strategies. This is the property that
    // licenses breaking the per-iteration barrier at all.
    #[test]
    fn pipelined_fixpoints_match_serial_on_random_programs(
        edges in pairs_strategy(18, 80),
        program_idx in 0usize..2,
        strategy_idx in 0usize..2,
    ) {
        const REACH_SRC: &str = r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y).
            Reach(x, y) :- Edge(x, z), Reach(z, y).
        ";
        const SG_SRC: &str = r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl SG(x: number, y: number)
            .output SG
            SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
            SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
        ";
        let (src, output) = [(REACH_SRC, "Reach"), (SG_SRC, "SG")][program_idx];
        let nway = [
            NwayStrategy::TemporarilyMaterialized,
            NwayStrategy::FusedNestedLoop,
        ][strategy_idx];
        let edges: Vec<[u32; 2]> = edges.iter().map(|&(a, b)| [a, b]).collect();

        let run = |pipelined: usize| {
            let d = device();
            let mut cfg = EngineConfig::new().with_nway(nway);
            if pipelined > 0 {
                cfg = cfg.with_pipelined(pipelined);
            }
            let mut engine = GpulogEngine::from_source(&d, src, cfg).unwrap();
            engine.add_facts("Edge", &edges).unwrap();
            let stats = engine.run().unwrap();
            (engine.relation_batch(output).unwrap(), stats)
        };
        let (serial_batch, serial_stats) = run(0);
        prop_assert_eq!(serial_stats.overlap_nanos, 0);
        for shards in [1usize, 2, 7] {
            let (pipelined_batch, stats) = run(shards);
            prop_assert_eq!(
                pipelined_batch.as_flat(),
                serial_batch.as_flat(),
                "{} pipelined over {} shards must be byte-identical to serial",
                output,
                shards
            );
            prop_assert_eq!(stats.iterations, serial_stats.iterations);
        }
    }

    // The delta exchange is lossless and order-stable at the data layer:
    // partitioning a sorted-unique delta by destination shard (the
    // exchange) and k-way-merging the per-destination pieces back (the
    // reassembly) must reproduce the unsharded delta byte-for-byte, for
    // topologies of 1, 2, and 7 devices.
    #[test]
    fn delta_exchange_round_trips_byte_identically(
        pairs in pairs_strategy(50, 200),
        key_on_first_col in prop::bool::ANY,
    ) {
        use std::num::NonZeroUsize;
        // Build a sorted-unique "delta" the way the diff op would.
        let mut rows: Vec<(u32, u32)> = pairs;
        rows.sort();
        rows.dedup();
        let flat: Vec<u32> = rows.iter().flat_map(|&(a, b)| [a, b]).collect();
        let delta = TupleBatch::from_sorted_unique_flat(2, flat);
        let key_cols: &[usize] = if key_on_first_col { &[0] } else { &[0, 1] };
        for devices in [1usize, 2, 7] {
            let devices = NonZeroUsize::new(devices).unwrap();
            let parts = delta.partition_by_key_hash(key_cols, devices);
            prop_assert_eq!(parts.len(), devices.get());
            prop_assert!(parts.iter().all(TupleBatch::is_sorted_unique));
            let reassembled = TupleBatch::merge_sorted_unique(2, parts);
            prop_assert_eq!(&reassembled, &delta, "devices = {}", devices);
        }
    }

    // The multi-GPU simulation must reach fixpoints byte-identical to the
    // serial backend on random programs and inputs — pinning shards to
    // modeled devices changes attribution and scheduling, never results.
    // Topologies of 1, 2, and 7 devices mirror the sharded S ∈ {1, 2, 7}
    // pinning.
    #[test]
    fn multigpu_fixpoints_match_serial_on_random_programs(
        edges in pairs_strategy(18, 80),
        program_idx in 0usize..2,
        strategy_idx in 0usize..2,
    ) {
        use std::num::NonZeroUsize;
        const REACH_SRC: &str = r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y).
            Reach(x, y) :- Edge(x, z), Reach(z, y).
        ";
        const SG_SRC: &str = r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl SG(x: number, y: number)
            .output SG
            SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
            SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
        ";
        let (src, output) = [(REACH_SRC, "Reach"), (SG_SRC, "SG")][program_idx];
        let nway = [
            NwayStrategy::TemporarilyMaterialized,
            NwayStrategy::FusedNestedLoop,
        ][strategy_idx];
        let edges: Vec<[u32; 2]> = edges.iter().map(|&(a, b)| [a, b]).collect();

        let run = |topology: Option<usize>| {
            let d = device();
            let mut cfg = EngineConfig::new().with_nway(nway);
            if let Some(devices) = topology {
                let devices = NonZeroUsize::new(devices).unwrap();
                cfg = cfg.with_device_topology(DeviceTopology::nvlink_like(devices));
            }
            let mut engine = GpulogEngine::from_source(&d, src, cfg).unwrap();
            engine.add_facts("Edge", &edges).unwrap();
            let stats = engine.run().unwrap();
            (engine.relation_batch(output).unwrap(), stats)
        };
        let (serial_batch, serial_stats) = run(None);
        prop_assert!(serial_stats.topology.is_none());
        for devices in [1usize, 2, 7] {
            let (multi_batch, stats) = run(Some(devices));
            prop_assert_eq!(
                multi_batch.as_flat(),
                serial_batch.as_flat(),
                "{} on {} devices must be byte-identical to serial",
                output,
                devices
            );
            prop_assert_eq!(stats.iterations, serial_stats.iterations);
            let report = stats.topology.expect("multigpu reports topology stats");
            prop_assert_eq!(report.devices.len(), devices);
            if devices == 1 {
                prop_assert_eq!(report.total_exchange_bytes, 0);
            }
        }
    }

    // `TupleBatch::from_rows` and `as_flat`/`to_rows` are inverses.
    #[test]
    fn tuple_batch_round_trips(
        rows in prop::collection::vec(prop::collection::vec(0u32..1000, 3..4), 0..80),
    ) {
        let batch = TupleBatch::from_rows(3, &rows);
        prop_assert_eq!(batch.len(), rows.len());
        prop_assert_eq!(batch.arity(), 3);
        let flat: Vec<u32> = rows.iter().flatten().copied().collect();
        prop_assert_eq!(batch.as_flat(), flat.as_slice());
        prop_assert_eq!(batch.to_rows(), rows.clone());
        let rebuilt = TupleBatch::new(3, batch.clone().into_flat());
        prop_assert_eq!(rebuilt.to_rows(), rows);
    }
}

/// A sharded op must cost one worker-pool epoch, not one per shard: the
/// shard-map build is one `run_tasks` hand-off, the per-shard joins are
/// one, and the per-shard differences are one, with every kernel inside a
/// shard task running inline on its worker. Executing the identical
/// pipeline with 2 and with 7 shards must therefore move
/// `Metrics::pool_dispatches` by exactly the same amount.
#[test]
fn sharded_ops_dispatch_one_epoch_per_op_not_one_per_shard() {
    let join_pipeline = RaPipeline {
        head: 2,
        ops: vec![
            RaOp::Scan {
                step: ScanStep {
                    relation: 0,
                    version: VersionSel::Full,
                    const_filters: vec![],
                    eq_filters: vec![],
                    keep_cols: vec![0, 1],
                },
                filters: vec![],
            },
            RaOp::HashJoin {
                step: JoinStep {
                    relation: 1,
                    version: VersionSel::Full,
                    outer_key_cols: vec![1],
                    inner_key_cols: vec![0],
                    inner_const_filters: vec![],
                    inner_eq_filters: vec![],
                    emit: vec![
                        EmitSource::Outer(0),
                        EmitSource::Outer(1),
                        EmitSource::Inner(1),
                    ],
                },
                filters: vec![],
            },
            RaOp::Project {
                columns: vec![ColumnSource::Col(0), ColumnSource::Col(2)],
            },
        ],
        text: "H(x, z) :- A(x, y), B(y, z).".into(),
    };

    // 53 distinct key values: every shard of a 2- or 7-way partition is
    // non-empty, so each epoch really fans out.
    let dispatches_with = |shards: usize| {
        let d = device();
        let backend = ShardedBackend::new(shards).unwrap();
        let mut relations = vec![
            RelationStorage::new(&d, "A", 2, DEFAULT_LOAD_FACTOR).unwrap(),
            RelationStorage::new(&d, "B", 2, DEFAULT_LOAD_FACTOR).unwrap(),
            RelationStorage::new(&d, "H", 2, DEFAULT_LOAD_FACTOR).unwrap(),
        ];
        let a: Vec<u32> = (0..212u32).flat_map(|i| [i, i % 53]).collect();
        let b: Vec<u32> = (0..159u32)
            .flat_map(|i| [i % 53, i.wrapping_mul(7)])
            .collect();
        relations[0].load_full(&a).unwrap();
        relations[1].load_full(&b).unwrap();
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut relations,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        let before = d.metrics().snapshot();
        let outcome = backend.execute(&mut ctx, &join_pipeline).unwrap();
        assert!(outcome.derived_rows > 0, "the join must derive rows");
        let diff_outcome = backend.execute(&mut ctx, &RaPipeline::diff(2)).unwrap();
        assert!(diff_outcome.delta_rows > 0, "the diff must install a delta");
        d.metrics().snapshot().since(&before).pool_dispatches
    };

    let with_2 = dispatches_with(2);
    let with_7 = dispatches_with(7);
    assert!(with_2 > 0, "sharded execution must dispatch to the pool");
    assert_eq!(
        with_2, with_7,
        "pool epochs must not scale with the shard count"
    );
}

/// On a merge-heavy chain-REACH workload (one iteration per node, tiny
/// deltas) the pipelined backend must actually overlap: background merges
/// stay outstanding across iterations (`overlap_nanos`, `epochs_in_flight`)
/// while the fixpoint stays exactly the serial one.
#[test]
fn pipelined_overlap_is_reported_on_chain_reach() {
    use gpulog_datasets::generators::road_network;
    use gpulog_queries::reach;

    let chain = road_network(160, 0, 23);
    let d_serial = device();
    let serial = reach::run(&d_serial, &chain, EngineConfig::new()).unwrap();
    assert_eq!(serial.stats.overlap_nanos, 0);
    assert_eq!(serial.stats.epochs_in_flight, 0);

    let d_pipelined = device();
    let pipelined =
        reach::run(&d_pipelined, &chain, EngineConfig::new().with_pipelined(4)).unwrap();
    assert_eq!(pipelined.reach_size, serial.reach_size);
    assert_eq!(pipelined.stats.iterations, serial.stats.iterations);
    assert!(
        pipelined.stats.overlap_nanos > 0,
        "deferred merges must stay outstanding across iterations"
    );
    assert!(
        pipelined.stats.epochs_in_flight >= 1,
        "the high-water mark must record at least one in-flight merge"
    );
}
