//! Workspace-spanning integration tests: the full GPUlog stack (device →
//! HISA → engine → queries) against reference implementations and the
//! comparator engines, plus the paper's worked examples.

use gpulog::{EbmConfig, NwayStrategy};
use gpulog_baselines::{cudf_like, gpujoin_like, souffle_like};
use gpulog_datasets::generators::{binary_tree, power_law_graph, random_graph, road_network};
use gpulog_datasets::{EdgeList, PaperDataset};
use gpulog_device::{profile::DeviceProfile, Device, DeviceError};
use gpulog_queries::{cspa, reach, sg};

fn device() -> Device {
    Device::with_workers(DeviceProfile::nvidia_h100(), 4)
}

fn figure1_graph() -> EdgeList {
    EdgeList::new(
        "figure1",
        vec![
            (0, 1),
            (0, 2),
            (1, 3),
            (1, 4),
            (2, 4),
            (2, 5),
            (3, 6),
            (4, 7),
            (4, 8),
            (5, 8),
        ],
    )
}

#[test]
fn fixpoint_runs_spawn_zero_threads_after_warmup() {
    // The worker pool is created with the device; every kernel launch after
    // that must reuse the parked threads. A full fixpoint evaluation — the
    // warmup run and a second run on the same device — must therefore leave
    // the spawn counter exactly where device creation put it.
    let d = device();
    let spawned_at_creation = d.metrics().threads_spawned();
    let mut warmup = sg::prepare(&d, &figure1_graph(), gpulog_tests::config_from_env()).unwrap();
    warmup.run().unwrap();
    let after_warmup = d.metrics().snapshot();
    assert_eq!(after_warmup.threads_spawned, spawned_at_creation);

    let mut engine = sg::prepare(&d, &figure1_graph(), gpulog_tests::config_from_env()).unwrap();
    engine.run().unwrap();
    let delta = d.metrics().snapshot().since(&after_warmup);
    assert_eq!(delta.threads_spawned, 0, "post-warmup runs must not spawn");
    assert!(
        delta.kernel_launches > 0,
        "the run must actually have launched kernels"
    );
}

#[test]
fn device_phase_nanos_never_exceed_run_wall_time() {
    // Regression for the PhaseTimer double-count: sharded and multi-GPU
    // ops run S concurrent shard tasks per epoch, each timing the same
    // sort / merge / index phases. With per-task spans summed, a phase
    // bucket could report S x its wall time; the union accounting pins
    // every per-phase total at or below the run's wall clock. Runs under
    // the CI backend matrix so the concurrent legs exercise it for real.
    let d = device();
    let graph = PaperDataset::Gnutella31.generate(0.1);
    let start = std::time::Instant::now();
    let result = reach::run(&d, &graph, gpulog_tests::config_from_env()).unwrap();
    let wall = start.elapsed();
    assert!(result.reach_size > 0);
    let phases = d.metrics().phase_times();
    for phase in ["sort", "merge", "index"] {
        if let Some(spent) = phases.get(phase) {
            assert!(
                *spent <= wall,
                "{phase} phase nanos ({spent:?}) exceed run wall time ({wall:?})"
            );
        }
    }
}

#[test]
fn merge_heavy_chain_fixpoint_keeps_index_maintenance_delta_proportional() {
    // A pure chain drives REACH through one iteration per node with steadily
    // shrinking deltas — the merge-heavy long tail where the old per-merge
    // hash rebuild was O(|full|). With EBM reserving headroom, the hash
    // layer must absorb every delta through incremental inserts, with
    // rebuilds limited to the (amortised, geometric) capacity growths —
    // far fewer than one per iteration.
    // config_from_env keeps this under the CI backend matrix: the sharded
    // legs validate that shard-local merges inherit incremental
    // maintenance (per-shard tables grow amortised too).
    let d = device();
    let chain = road_network(60, 0, 1);
    let before = d.metrics().snapshot();
    let result = reach::run(&d, &chain, gpulog_tests::config_from_env()).unwrap();
    let spent = d.metrics().snapshot().since(&before);
    assert_eq!(result.reach_size, reach::reference_closure(&chain).len());
    let total_delta: usize = result
        .stats
        .iteration_records
        .iter()
        .map(|r| r.delta_tuples)
        .sum();
    assert!(
        result.stats.iterations >= 50,
        "chain must run many iterations"
    );
    assert!(
        spent.hash_inserts >= total_delta as u64,
        "every merged delta tuple must go through the incremental insert path \
         (inserts {}, delta tuples {total_delta})",
        spent.hash_inserts,
    );
    assert!(
        (spent.hash_rebuilds as usize) < result.stats.iterations,
        "rebuilds ({}) must stay amortised, not once per iteration ({})",
        spent.hash_rebuilds,
        result.stats.iterations,
    );
}

#[test]
fn figure1_sg_trace_matches_the_paper() {
    // Figure 1 of the paper walks SG through three iterations on a 9-node
    // graph: iteration 1 derives 8 tuples, iteration 2 adds 6 more, and
    // iteration 3 derives nothing new, ending at 14 tuples.
    let d = device();
    let mut engine = sg::prepare(&d, &figure1_graph(), gpulog_tests::config_from_env()).unwrap();
    let stats = engine.run().unwrap();
    assert_eq!(engine.relation_size("SG"), Some(14));
    assert_eq!(stats.iterations, 3);
    assert_eq!(stats.iteration_records[0].delta_tuples, 8);
    assert_eq!(stats.iteration_records[1].delta_tuples, 6);
    assert_eq!(stats.iteration_records[2].delta_tuples, 0);
    // Spot-check tuples listed in the figure.
    for pair in [[3u32, 5], [5, 3], [6, 8], [8, 6], [1, 2], [7, 8]] {
        assert!(engine.contains("SG", &pair), "missing SG{pair:?}");
    }
    assert!(!engine.contains("SG", &[0, 1]));
}

#[test]
fn gpulog_and_all_baselines_agree_on_reach() {
    for (name, graph) in [
        ("random", random_graph(80, 260, 3)),
        ("tree", binary_tree(6)),
        ("road", road_network(150, 12, 4)),
        ("powerlaw", power_law_graph(200, 3, 5)),
    ] {
        let d = device();
        let gpulog_size = reach::run(&d, &graph, gpulog_tests::config_from_env())
            .unwrap()
            .reach_size;
        let reference = reach::reference_closure(&graph).len();
        assert_eq!(gpulog_size, reference, "GPUlog vs reference on {name}");
        assert_eq!(
            souffle_like::reach(&graph, 4).tuples,
            Some(reference),
            "souffle-like on {name}"
        );
        assert_eq!(
            gpujoin_like::reach(&graph, usize::MAX).tuples,
            Some(reference),
            "gpujoin-like on {name}"
        );
        assert_eq!(
            cudf_like::reach(&graph, usize::MAX).tuples,
            Some(reference),
            "cudf-like on {name}"
        );
    }
}

#[test]
fn gpulog_and_baselines_agree_on_sg() {
    for (name, graph) in [
        ("random", random_graph(26, 50, 7)),
        ("tree", binary_tree(4)),
    ] {
        let d = device();
        let gpulog_size = sg::run(&d, &graph, gpulog_tests::config_from_env())
            .unwrap()
            .sg_size;
        let reference = sg::reference_sg(&graph).len();
        assert_eq!(gpulog_size, reference, "GPUlog vs reference on {name}");
        assert_eq!(souffle_like::sg(&graph, 4).tuples, Some(reference));
        assert_eq!(cudf_like::sg(&graph, usize::MAX).tuples, Some(reference));
    }
}

#[test]
fn gpulog_and_souffle_like_agree_on_cspa_relation_sizes() {
    let input = gpulog_datasets::cspa::httpd_like(1.0 / 3000.0);
    let d = device();
    let result = cspa::run(&d, &input, gpulog_tests::config_from_env()).unwrap();
    let (_, sizes) = souffle_like::cspa(&input, 4);
    assert_eq!(result.sizes.value_flow, sizes.value_flow, "ValueFlow");
    assert_eq!(result.sizes.memory_alias, sizes.memory_alias, "MemoryAlias");
    assert_eq!(result.sizes.value_alias, sizes.value_alias, "ValueAlias");
}

#[test]
fn ebm_configurations_do_not_change_results_only_memory() {
    let graph = PaperDataset::SfCedge.generate(0.12);
    let run = |ebm: EbmConfig| {
        let d = device();
        let cfg = gpulog_tests::config_from_env().with_ebm(ebm);
        let r = reach::run(&d, &graph, cfg).unwrap();
        (r.reach_size, r.stats.peak_device_bytes)
    };
    let (size_off, mem_off) = run(EbmConfig::disabled());
    let (size_on, mem_on) = run(EbmConfig::with_growth_factor(8.0));
    // The policy is purely about memory management: derived results must be
    // identical, and both configurations must report a real memory peak.
    assert_eq!(size_off, size_on);
    assert!(mem_on > 0 && mem_off > 0);
}

#[test]
fn join_strategies_agree_on_cspa() {
    let input = gpulog_datasets::cspa::postgres_like(1.0 / 6000.0);
    let d = device();
    let materialized = cspa::run(&d, &input, gpulog_tests::config_from_env()).unwrap();
    let cfg = gpulog_tests::config_from_env().with_nway(NwayStrategy::FusedNestedLoop);
    let fused = cspa::run(&d, &input, cfg).unwrap();
    assert_eq!(materialized.sizes, fused.sizes);
}

#[test]
fn out_of_memory_is_reported_as_an_error_for_gpulog_and_as_oom_for_baselines() {
    // A dense random graph whose closure is far larger than the tiny budget.
    let graph = random_graph(300, 8000, 2);
    let budget = 200 * 1024;
    let tiny = Device::with_workers(DeviceProfile::tiny_test_device(budget), 2);
    match reach::run(&tiny, &graph, gpulog_tests::config_from_env()) {
        Err(gpulog::EngineError::Device(DeviceError::OutOfMemory { .. })) => {}
        other => panic!("expected OOM, got {other:?}"),
    }
    assert!(gpujoin_like::reach(&graph, budget).out_of_memory);
    assert!(cudf_like::reach(&graph, budget).out_of_memory);
}

#[test]
fn run_statistics_are_consistent_with_results() {
    let graph = PaperDataset::FeBody.generate(0.2);
    let d = device();
    let result = reach::run(&d, &graph, gpulog_tests::config_from_env()).unwrap();
    let stats = &result.stats;
    assert_eq!(stats.iteration_records.len(), stats.iterations);
    assert_eq!(stats.relation_sizes["Reach"], result.reach_size);
    assert_eq!(stats.relation_sizes["Edge"], graph.len());
    assert!(stats.wall_seconds > 0.0);
    assert!(stats.modeled_seconds() > 0.0);
    assert!(stats.peak_device_bytes > 0);
    // The per-iteration deltas must sum to the final Reach size.
    let delta_sum: usize = stats.iteration_records.iter().map(|r| r.delta_tuples).sum();
    assert_eq!(delta_sum, result.reach_size);
    // Tail iterations are a subset of all iterations.
    assert!(stats.tail_iterations(result.reach_size, 0.01) <= stats.iterations);
}

#[test]
fn modeled_time_orders_paper_gpus_correctly() {
    // The same workload, replayed through each profile's cost model, must
    // reproduce the paper's hardware ordering (Table 5): H100 fastest, then
    // A100, then MI250, then MI50.
    let graph = PaperDataset::FeSphere.generate(0.2);
    let d = device();
    let before = d.metrics().snapshot();
    sg::run(&d, &graph, gpulog_tests::config_from_env()).unwrap();
    let work = d.metrics().snapshot().since(&before);
    let times: Vec<f64> = DeviceProfile::paper_gpus()
        .into_iter()
        .map(|p| gpulog_device::CostModel::new(p).estimate(&work).total_sec())
        .collect();
    assert!(times[0] < times[1], "H100 should beat A100");
    assert!(times[1] < times[2], "A100 should beat MI250");
    assert!(times[2] < times[3], "MI250 should beat MI50");
}

#[test]
fn scaled_paper_datasets_run_end_to_end_quickly() {
    let d = device();
    for dataset in PaperDataset::table2() {
        let graph = dataset.generate(0.08);
        let result = reach::run(&d, &graph, gpulog_tests::config_from_env()).unwrap();
        assert!(result.reach_size >= graph.len(), "{}", dataset.paper_name());
    }
}
