//! Stratified-evaluation integration tests: the `Literal` body redesign
//! must leave purely positive programs byte-identical (golden tuples for
//! the paper's Figure 1 REACH / SG fixpoints), and programs mixing `!atom`
//! negation with `min` head aggregates must reach byte-identical fixpoints
//! on every backend — pinned both by an exact-tuple run under the CI
//! backend matrix (`GPULOG_TEST_BACKEND`) and by a property test over
//! random graphs comparing serial against sharded:4, pipelined:4, and the
//! simulated 2-device topology. Programs that recurse through negation or
//! aggregation must be rejected with the typed `CyclicNegation` error.

use gpulog::{DeviceTopology, EngineConfig, EngineError, GpulogEngine};
use gpulog_datasets::EdgeList;
use gpulog_device::{profile::DeviceProfile, Device};
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn device() -> Device {
    Device::with_workers(DeviceProfile::nvidia_h100(), 4)
}

fn figure1_graph() -> EdgeList {
    EdgeList::new(
        "figure1",
        vec![
            (0, 1),
            (0, 2),
            (1, 3),
            (1, 4),
            (2, 4),
            (2, 5),
            (3, 6),
            (4, 7),
            (4, 8),
            (5, 8),
        ],
    )
}

/// A program combining both stratified features: `!Blocked` negation in a
/// recursive closure and a `min` head aggregate over the finished
/// `PathLen` relation (hop counts spelled through an extensional `Succ`
/// table).
const STRATIFIED_SRC: &str = r"
.decl Edge(x: number, y: number)
.input Edge
.decl Blocked(x: number)
.input Blocked
.decl Succ(d: number, d1: number)
.input Succ
.decl Reach(x: number, y: number)
.output Reach
.decl PathLen(x: number, y: number, d: number)
.decl SP(x: number, y: number, d: number)
.output SP
Reach(x, y) :- Edge(x, y), !Blocked(y).
Reach(x, z) :- Reach(x, y), Edge(y, z), !Blocked(z).
PathLen(x, y, 1) :- Edge(x, y), !Blocked(y).
PathLen(x, z, d1) :- PathLen(x, y, d), Edge(y, z), Succ(d, d1), !Blocked(z).
SP(x, y, min(d)) :- PathLen(x, y, d).
";

fn succ_facts(max_hops: u32) -> Vec<u32> {
    (1..max_hops).flat_map(|d| [d, d + 1]).collect()
}

// The pre-redesign regression anchor: with `Rule.body` now `Vec<Literal>`,
// a purely positive program must still lower to exactly the same pipeline
// and fixpoint. The Figure 1 REACH closure is pinned tuple-for-tuple
// (canonical sorted order), under every CI backend leg.
#[test]
fn positive_reach_fixpoint_matches_golden_tuples() {
    const REACH_SRC: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl Reach(x: number, y: number)
        .output Reach
        Reach(x, y) :- Edge(x, y).
        Reach(x, y) :- Edge(x, z), Reach(z, y).
    ";
    let d = device();
    let mut engine =
        GpulogEngine::from_source(&d, REACH_SRC, gpulog_tests::config_from_env()).unwrap();
    engine
        .add_facts_flat("Edge", &figure1_graph().to_flat())
        .unwrap();
    engine.run().unwrap();
    // Merge order: the base edges, then each iteration's (sorted) delta —
    // 2-hop pairs, then 3-hop pairs. Every backend must reproduce this
    // byte order exactly.
    let golden: Vec<Vec<u32>> = [
        [0u32, 1],
        [0, 2],
        [1, 3],
        [1, 4],
        [2, 4],
        [2, 5],
        [3, 6],
        [4, 7],
        [4, 8],
        [5, 8],
        [0, 3],
        [0, 4],
        [0, 5],
        [1, 6],
        [1, 7],
        [1, 8],
        [2, 7],
        [2, 8],
        [0, 6],
        [0, 7],
        [0, 8],
    ]
    .iter()
    .map(|t| t.to_vec())
    .collect();
    assert_eq!(engine.relation_tuples("Reach"), Some(golden));
}

#[test]
fn positive_sg_fixpoint_matches_golden_tuples() {
    const SG_SRC: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl SG(x: number, y: number)
        .output SG
        SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
        SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
    ";
    let d = device();
    let mut engine =
        GpulogEngine::from_source(&d, SG_SRC, gpulog_tests::config_from_env()).unwrap();
    engine
        .add_facts_flat("Edge", &figure1_graph().to_flat())
        .unwrap();
    engine.run().unwrap();
    // Merge order: iteration 1's 8 sibling pairs, then iteration 2's 6
    // cousin pairs (each delta internally sorted).
    let golden: Vec<Vec<u32>> = [
        [1u32, 2],
        [2, 1],
        [3, 4],
        [4, 3],
        [4, 5],
        [5, 4],
        [7, 8],
        [8, 7],
        [3, 5],
        [5, 3],
        [6, 7],
        [6, 8],
        [7, 6],
        [8, 6],
    ]
    .iter()
    .map(|t| t.to_vec())
    .collect();
    assert_eq!(engine.relation_tuples("SG"), Some(golden));
}

// The stratified workload leg of the backend matrix: negation + min
// aggregate with exact golden tuples, honored per CI leg via
// `GPULOG_TEST_BACKEND`. The graph is a chain with a shortcut so that the
// aggregate genuinely has competing path lengths to minimize over.
#[test]
fn stratified_negation_and_min_aggregate_match_golden_tuples_on_every_backend() {
    let d = device();
    let mut engine =
        GpulogEngine::from_source(&d, STRATIFIED_SRC, gpulog_tests::config_from_env()).unwrap();
    // 0→1→2→3→4 with shortcuts 0→3 and 1→4; node 2 is blocked.
    let edges: &[u32] = &[0, 1, 1, 2, 2, 3, 0, 3, 3, 4, 1, 4];
    engine.add_facts_flat("Edge", edges).unwrap();
    engine.add_facts_flat("Blocked", &[2]).unwrap();
    engine.add_facts_flat("Succ", &succ_facts(4)).unwrap();
    engine.run().unwrap();

    // Closure that never enters node 2 (2 may still be a source); merge
    // order is the filtered base edges then the 2-hop delta.
    let reach_golden: Vec<Vec<u32>> = [[0u32, 1], [0, 3], [1, 4], [2, 3], [3, 4], [0, 4], [2, 4]]
        .iter()
        .map(|t| t.to_vec())
        .collect();
    assert_eq!(engine.relation_tuples("Reach"), Some(reach_golden));

    // Hop counts: (0,4) is reachable in 2 via either shortcut route; the
    // min aggregate must keep exactly one tuple per (x, y) group.
    let sp_golden: Vec<Vec<u32>> = [
        [0u32, 1, 1],
        [0, 3, 1],
        [0, 4, 2],
        [1, 4, 1],
        [2, 3, 1],
        [2, 4, 2],
        [3, 4, 1],
    ]
    .iter()
    .map(|t| t.to_vec())
    .collect();
    assert_eq!(engine.relation_tuples("SP"), Some(sp_golden));
}

#[test]
fn cyclic_negation_is_rejected_with_a_typed_error() {
    let d = device();
    let err = GpulogEngine::from_source(
        &d,
        r"
        .decl S(x: number)
        .input S
        .decl R(x: number)
        .output R
        R(x) :- S(x), !R(x).
        ",
        gpulog_tests::config_from_env(),
    )
    .unwrap_err();
    match err {
        EngineError::CyclicNegation { relation, .. } => assert_eq!(relation, "R"),
        other => panic!("expected CyclicNegation, got {other:?}"),
    }

    // Aggregation through the rule's own head is a stratification cycle
    // too: the aggregate reads the finished relation it is defining.
    let err = GpulogEngine::from_source(
        &d,
        r"
        .decl E(x: number, y: number)
        .input E
        .decl P(x: number, y: number)
        .output P
        P(x, y) :- E(x, y).
        P(x, min(y)) :- P(x, y).
        ",
        gpulog_tests::config_from_env(),
    )
    .unwrap_err();
    assert!(
        matches!(err, EngineError::CyclicNegation { ref relation, .. } if relation == "P"),
        "aggregate over its own head must be unstratifiable, got {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // A stratified program (negation + min aggregate) must reach fixpoints
    // byte-identical to the serial backend's on random graphs, across
    // sharded:4, pipelined:4, and the simulated 2-device topology — for
    // both the negated recursive closure and the aggregated relation.
    #[test]
    fn stratified_fixpoints_match_serial_on_random_graphs(
        edges in prop::collection::vec((0u32..18, 0u32..18), 0..80),
    ) {
        let edges: Vec<[u32; 2]> = edges.iter().map(|&(a, b)| [a, b]).collect();
        let run = |cfg: EngineConfig| {
            let d = device();
            let mut engine = GpulogEngine::from_source(&d, STRATIFIED_SRC, cfg).unwrap();
            engine.add_facts("Edge", &edges).unwrap();
            // Block every third node; bound hop counts at 6.
            let blocked: Vec<u32> = (0..18).step_by(3).collect();
            engine.add_facts_flat("Blocked", &blocked).unwrap();
            engine.add_facts_flat("Succ", &succ_facts(6)).unwrap();
            let stats = engine.run().unwrap();
            (
                engine.relation_batch("Reach").unwrap(),
                engine.relation_batch("SP").unwrap(),
                stats.iterations,
            )
        };
        let (serial_reach, serial_sp, serial_iters) = run(EngineConfig::new());
        let variants: Vec<(&str, EngineConfig)> = vec![
            ("sharded:4", EngineConfig::new().with_shard_count(4)),
            ("pipelined:4", EngineConfig::new().with_pipelined(4)),
            (
                "multigpu:2",
                EngineConfig::new().with_device_topology(DeviceTopology::nvlink_like(
                    NonZeroUsize::new(2).unwrap(),
                )),
            ),
        ];
        for (label, cfg) in variants {
            let (reach, sp, iters) = run(cfg);
            prop_assert_eq!(
                reach.as_flat(),
                serial_reach.as_flat(),
                "Reach on {} must be byte-identical to serial",
                label
            );
            prop_assert_eq!(
                sp.as_flat(),
                serial_sp.as_flat(),
                "SP on {} must be byte-identical to serial",
                label
            );
            prop_assert_eq!(iters, serial_iters);
        }
    }
}
