//! Property-based tests over the whole stack: HISA against a B-tree model,
//! the parallel primitives against their sequential references, and the
//! GPUlog engine against an independent fixpoint computation, on randomly
//! generated inputs.

use gpulog::relation::RelationStorage;
use gpulog::EbmConfig;
use gpulog_datasets::EdgeList;
use gpulog_device::thrust::merge::merge_path_merge;
use gpulog_device::thrust::sort::{
    lexicographic_sort_indices, lexicographic_sort_indices_by_comparison,
    lexicographic_sort_indices_lsd, lexicographic_sort_indices_msd, stable_sort_by,
};
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_hisa::{Hisa, IndexSpec, DEFAULT_LOAD_FACTOR};
use gpulog_queries::{reach, sg};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn device() -> Device {
    Device::with_workers(DeviceProfile::nvidia_h100(), 4)
}

fn edges_strategy(max_node: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_node, 0..max_node), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_sort_matches_std_sort(mut values in prop::collection::vec(0u32..10_000, 0..2000)) {
        let d = device();
        let mut expected = values.clone();
        expected.sort();
        stable_sort_by(&d, &mut values, |a, b| a.cmp(b));
        prop_assert_eq!(values, expected);
    }

    #[test]
    fn merge_path_matches_std_merge(
        mut a in prop::collection::vec(0u32..5_000, 0..800),
        mut b in prop::collection::vec(0u32..5_000, 0..800),
    ) {
        let d = device();
        a.sort();
        b.sort();
        let merged = merge_path_merge(&d, &a, &b, |x, y| x.cmp(y));
        let mut expected = a.clone();
        expected.extend_from_slice(&b);
        expected.sort();
        prop_assert_eq!(merged, expected);
    }

    #[test]
    fn radix_sort_matches_comparison_sort(
        tuples in prop::collection::vec((0u32..60_000, 0u32..300, 0u32..4), 0..600),
    ) {
        let d = device();
        let flat: Vec<u32> = tuples.iter().flat_map(|&(a, b, c)| [a, b, c]).collect();
        for order in [vec![0usize, 1, 2], vec![2, 0, 1], vec![1], vec![2, 1]] {
            let radix = lexicographic_sort_indices(&d, &flat, 3, &order);
            let comparison = lexicographic_sort_indices_by_comparison(&d, &flat, 3, &order);
            prop_assert_eq!(&radix, &comparison, "column order {:?}", &order);
        }
    }

    #[test]
    fn msd_lsd_and_comparison_sorts_agree_on_random_skewed_and_dense_keys(
        uniform in prop::collection::vec((0u32..u32::MAX, 0u32..50_000), 0..500),
        dense in prop::collection::vec((0u32..64, 0u32..16), 0..500),
        hub in prop::collection::vec(prop::bool::weighted(0.9), 0..500),
    ) {
        let d = device();
        // Three distributions: wide uniform, dense ids, and a skewed set
        // where 90% of keys collapse onto one hub value.
        let skewed: Vec<(u32, u32)> = hub
            .iter()
            .enumerate()
            .map(|(i, &is_hub)| if is_hub { (7, i as u32) } else { (i as u32 * 131, 1) })
            .collect();
        for tuples in [&uniform, &dense, &skewed] {
            let flat: Vec<u32> = tuples.iter().flat_map(|&(a, b)| [a, b]).collect();
            for order in [vec![0usize, 1], vec![1, 0], vec![0]] {
                let msd = lexicographic_sort_indices_msd(&d, &flat, 2, &order);
                let lsd = lexicographic_sort_indices_lsd(&d, &flat, 2, &order);
                let cmp = lexicographic_sort_indices_by_comparison(&d, &flat, 2, &order);
                prop_assert_eq!(&msd, &lsd, "MSD vs LSD, order {:?}", &order);
                prop_assert_eq!(&lsd, &cmp, "LSD vs comparison, order {:?}", &order);
            }
        }
    }

    #[test]
    fn random_merge_sequences_match_a_fresh_hash_layer_lookup_for_lookup(
        base in edges_strategy(40, 80),
        deltas in prop::collection::vec(edges_strategy(40, 30), 1..5),
        reserve in prop::bool::ANY,
    ) {
        let d = device();
        let spec = IndexSpec::new(2, vec![0]);
        let base_flat: Vec<u32> = base.iter().flat_map(|&(a, b)| [a, b]).collect();
        let mut full = Hisa::build(&d, spec.clone(), &base_flat).unwrap();
        if reserve {
            // Headroom: every merge below must stay on the incremental
            // insert path (no rebuilds).
            full.reserve_additional_rows(256).unwrap();
        }
        let before = d.metrics().snapshot();
        let mut union: BTreeSet<(u32, u32)> = base.iter().copied().collect();
        for delta_edges in &deltas {
            let fresh: Vec<(u32, u32)> = delta_edges
                .iter()
                .copied()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .filter(|t| !union.contains(t))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            let flat: Vec<u32> = fresh.iter().flat_map(|&(a, b)| [a, b]).collect();
            let delta = Hisa::build(&d, spec.clone(), &flat).unwrap();
            full.merge_from(&delta).unwrap();
            union.extend(fresh);
        }
        if reserve {
            prop_assert_eq!(
                d.metrics().snapshot().since(&before).hash_rebuilds, 0,
                "with reserved capacity every merge must be incremental"
            );
        }
        // The merged hash layer must answer lookup-for-lookup identically
        // to one built from scratch over the union: same entry positions,
        // same range-query results, same membership.
        let union_flat: Vec<u32> = union.iter().flat_map(|&(a, b)| [a, b]).collect();
        let fresh = Hisa::build(&d, spec, &union_flat).unwrap();
        prop_assert_eq!(full.to_sorted_tuples(), fresh.to_sorted_tuples());
        for key in 0..41u32 {
            prop_assert_eq!(
                full.key_start_position(&[key]),
                fresh.key_start_position(&[key]),
                "hash entry position for key {}", key
            );
            let got: BTreeSet<u32> = full
                .range_query(&[key])
                .map(|r| full.row(r as usize)[1])
                .collect();
            let expected: BTreeSet<u32> = fresh
                .range_query(&[key])
                .map(|r| fresh.row(r as usize)[1])
                .collect();
            prop_assert_eq!(got, expected, "range query for key {}", key);
        }
    }

    #[test]
    fn delta_reuse_merge_keeps_secondary_indices_consistent(
        base in edges_strategy(25, 120),
        extra in edges_strategy(25, 60),
    ) {
        let d = device();
        let mut storage = RelationStorage::new(&d, "Edge", 2, DEFAULT_LOAD_FACTOR).unwrap();
        let base_flat: Vec<u32> = base.iter().flat_map(|&(a, b)| [a, b]).collect();
        storage.load_full(&base_flat).unwrap();
        // Materialize a secondary index before the merge so the reuse path
        // has to keep it consistent.
        let _ = storage.full_mut().unwrap().index_on(&d, &[1]).unwrap();
        // Delta must be sorted, deduplicated, and disjoint from full.
        let mut delta_set: BTreeSet<(u32, u32)> = extra.iter().copied().collect();
        for &(a, b) in &base {
            delta_set.remove(&(a, b));
        }
        let delta_flat: Vec<u32> = delta_set.iter().flat_map(|&(a, b)| [a, b]).collect();
        storage.set_delta_sorted_unique(&delta_flat).unwrap();
        storage.merge_delta_into_full(&EbmConfig::default()).unwrap();

        // The merged secondary index must agree with an index built from
        // scratch over the union.
        let mut union: BTreeSet<(u32, u32)> = base.iter().copied().collect();
        union.extend(delta_set.iter().copied());
        let union_flat: Vec<u32> = union.iter().flat_map(|&(a, b)| [a, b]).collect();
        let fresh = Hisa::build(&d, IndexSpec::new(2, vec![1]), &union_flat).unwrap();
        let merged = storage.full_mut().unwrap().index_on(&d, &[1]).unwrap();
        prop_assert_eq!(merged.len(), union.len());
        prop_assert_eq!(merged.to_sorted_tuples(), fresh.to_sorted_tuples());
        for key in 0..25u32 {
            prop_assert_eq!(
                merged.range_query(&[key]).count(),
                fresh.range_query(&[key]).count(),
                "range size for key {}", key
            );
        }
    }

    #[test]
    fn hisa_behaves_like_a_set_with_range_queries(edges in edges_strategy(40, 300)) {
        let d = device();
        let flat: Vec<u32> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        let hisa = Hisa::build(&d, IndexSpec::new(2, vec![0]), &flat).unwrap();
        let model: BTreeSet<(u32, u32)> = edges.iter().copied().collect();
        prop_assert_eq!(hisa.len(), model.len());
        // Membership agrees on present and absent tuples.
        for &(a, b) in edges.iter().take(20) {
            prop_assert!(hisa.contains(&[a, b]));
            prop_assert_eq!(hisa.contains(&[b.wrapping_add(41), a]), model.contains(&(b.wrapping_add(41), a)));
        }
        // Range queries return exactly the model's per-key groups.
        for key in 0..40u32 {
            let expected: BTreeSet<u32> = model.iter().filter(|t| t.0 == key).map(|t| t.1).collect();
            let got: BTreeSet<u32> = hisa
                .range_query(&[key])
                .map(|row| hisa.row(row as usize)[1])
                .collect();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn hisa_merge_equals_set_union(
        left in edges_strategy(30, 150),
        right in edges_strategy(30, 150),
    ) {
        let d = device();
        let left_flat: Vec<u32> = left.iter().flat_map(|&(a, b)| [a, b]).collect();
        // Keep the delta disjoint from full, as the engine guarantees.
        let left_set: BTreeSet<(u32, u32)> = left.iter().copied().collect();
        let right_disjoint: Vec<(u32, u32)> = right
            .iter()
            .copied()
            .filter(|t| !left_set.contains(t))
            .collect();
        let right_flat: Vec<u32> = right_disjoint.iter().flat_map(|&(a, b)| [a, b]).collect();
        let mut full = Hisa::build(&d, IndexSpec::new(2, vec![0]), &left_flat).unwrap();
        let delta = Hisa::build(&d, IndexSpec::new(2, vec![0]), &right_flat).unwrap();
        full.merge_from(&delta).unwrap();
        let mut union: BTreeSet<(u32, u32)> = left_set;
        union.extend(right_disjoint.iter().copied());
        prop_assert_eq!(full.len(), union.len());
        let merged: BTreeSet<(u32, u32)> = full
            .iter_rows()
            .map(|row| (row[0], row[1]))
            .collect();
        prop_assert_eq!(merged, union);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn reach_agrees_with_bfs_reference(edges in edges_strategy(30, 120)) {
        let graph = EdgeList::new("prop", edges.into_iter().filter(|(a, b)| a != b).collect());
        let d = device();
        let result = reach::run(&d, &graph, gpulog_tests::config_from_env()).unwrap();
        prop_assert_eq!(result.reach_size, reach::reference_closure(&graph).len());
    }

    #[test]
    fn sg_agrees_with_naive_reference(edges in edges_strategy(16, 40)) {
        let graph = EdgeList::new("prop", edges.into_iter().filter(|(a, b)| a != b).collect());
        let d = device();
        let result = sg::run(&d, &graph, gpulog_tests::config_from_env()).unwrap();
        prop_assert_eq!(result.sg_size, sg::reference_sg(&graph).len());
    }
}
