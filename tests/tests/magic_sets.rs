//! End-to-end and property tests for goal-directed evaluation: on random
//! graphs and random goal constants, the magic-sets rewrite must answer a
//! point query with exactly the full fixpoint's tuples restricted to the
//! goal, byte for byte, on every backend the CI matrix runs
//! (`GPULOG_TEST_BACKEND`: serial, sharded:4, pipelined:4, multigpu:2).

use gpulog::{EngineConfig, EngineError, GpulogEngine};
use gpulog_bench::BackendSpec;
use gpulog_datasets::generators::hub_graph;
use gpulog_datasets::EdgeList;
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_queries::goal;
use gpulog_tests::config_from_env;
use proptest::prelude::*;

fn device() -> Device {
    Device::with_workers(DeviceProfile::nvidia_h100(), 4)
}

/// The full fixpoint's `Reach` tuples restricted to the goal source,
/// canonically sorted — the answer set `run_query` must reproduce.
fn restricted_full_fixpoint(graph: &EdgeList, source: u32, config: EngineConfig) -> Vec<u32> {
    let mut engine = goal::prepare(&device(), graph, config).expect("prepare failed");
    engine.run().expect("full fixpoint failed");
    let mut rows: Vec<Vec<u32>> = engine
        .relation_batch("Reach")
        .expect("Reach exists")
        .rows()
        .filter(|row| row[0] == source)
        .map(<[u32]>::to_vec)
        .collect();
    rows.sort_unstable();
    rows.dedup();
    rows.into_iter().flatten().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // On random graphs and random goal constants, the magic-rewritten
    // answers equal the full-fixpoint answers restricted to the goal —
    // and both agree with an independent host BFS. The engine runs on
    // whatever backend the matrix leg selects.
    #[test]
    fn magic_answers_equal_the_restricted_full_fixpoint(
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..120),
        source in 0u32..40,
    ) {
        let graph = EdgeList::new("random", edges);
        let config = config_from_env();
        let engine = goal::prepare(&device(), &graph, config.clone()).expect("prepare failed");
        let result = goal::query(&engine, source).expect("goal query failed");
        let expected = restricted_full_fixpoint(&graph, source, config);
        prop_assert_eq!(result.answers.as_flat(), &expected[..]);
        let bfs: Vec<u32> = goal::reference_reachable_from(&graph, source)
            .into_iter()
            .flat_map(|(a, b)| [a, b])
            .collect();
        prop_assert_eq!(result.answers.as_flat(), &bfs[..]);
    }
}

/// One fixed workload, every backend explicitly: the answer bytes must be
/// identical across serial, sharded, pipelined, and the simulated
/// multi-GPU topology — canonical answers may not depend on scheduling.
#[test]
fn goal_answers_are_byte_identical_across_backends() {
    let graph = hub_graph(64, 4, 7);
    let source = 20;
    let expected: Vec<u32> = goal::reference_reachable_from(&graph, source)
        .into_iter()
        .flat_map(|(a, b)| [a, b])
        .collect();
    assert!(!expected.is_empty(), "hub graphs are connected");
    for spec in [
        BackendSpec::Serial,
        BackendSpec::Sharded(4),
        BackendSpec::Pipelined(4),
        BackendSpec::MultiGpu(2),
    ] {
        let config = spec.configure(EngineConfig::default());
        let result = goal::run_goal(&device(), &graph, source, config).expect("goal run failed");
        let engine = goal::prepare(&device(), &graph, spec.configure(EngineConfig::default()))
            .expect("prepare failed");
        let answers = goal::query(&engine, source).expect("goal query failed");
        assert_eq!(
            answers.answers.as_flat(),
            &expected[..],
            "backend {} diverged from the host reference",
            spec.label()
        );
        assert_eq!(result.answer_count, expected.len() / 2);
    }
}

/// A `?-` goal embedded in source drives `run_query` end to end, and the
/// query survives a round trip through the parser with its span.
#[test]
fn source_embedded_goals_run_end_to_end() {
    let source = r"
.decl Edge(x: number, y: number)
.input Edge
.decl Reach(x: number, y: number)
.output Reach
Reach(x, y) :- Edge(x, y).
Reach(x, z) :- Reach(x, y), Edge(y, z).
?- Reach(3, y).
";
    let graph = hub_graph(32, 2, 13);
    let mut engine =
        GpulogEngine::from_source(&device(), source, config_from_env()).expect("build failed");
    engine
        .add_facts_flat("Edge", &graph.to_flat())
        .expect("loading edges failed");
    let result = engine.run_query().expect("embedded goal failed");
    let expected: Vec<u32> = goal::reference_reachable_from(&graph, 3)
        .into_iter()
        .flat_map(|(a, b)| [a, b])
        .collect();
    assert_eq!(result.answers.as_flat(), &expected[..]);
}

/// Malformed goals fail with the typed query errors, carrying the parse
/// span of the offending `?-` line.
#[test]
fn malformed_goals_surface_typed_errors_with_spans() {
    let unknown = r"
.decl Edge(x: number, y: number)
.input Edge
?- Ghost(1, y).
";
    let engine =
        GpulogEngine::from_source(&device(), unknown, config_from_env()).expect("build failed");
    match engine.run_query() {
        Err(EngineError::UnknownQueryRelation {
            relation,
            line,
            column,
        }) => {
            assert_eq!(relation, "Ghost");
            assert_eq!(line, 4);
            assert!(column > 0);
        }
        other => panic!("expected UnknownQueryRelation, got {other:?}"),
    }

    let arity = r"
.decl Edge(x: number, y: number)
.input Edge
?- Edge(1).
";
    let engine =
        GpulogEngine::from_source(&device(), arity, config_from_env()).expect("build failed");
    match engine.run_query() {
        Err(EngineError::QueryArityMismatch {
            relation,
            expected,
            got,
            line,
            ..
        }) => {
            assert_eq!(relation, "Edge");
            assert_eq!((expected, got), (2, 1));
            assert_eq!(line, 4);
        }
        other => panic!("expected QueryArityMismatch, got {other:?}"),
    }
}
