//! The static-analysis pass framework, end to end: golden diagnostics for
//! every lint code, span-carrying error paths, the duplicate-declaration
//! parser regression, and the semantics-preservation property — the
//! optimized fixpoint must be byte-identical to the unoptimized one on
//! every declared output relation, on every `GPULOG_TEST_BACKEND` matrix
//! leg.

use gpulog::{parse_program, EngineError, Gpulog, GpulogEngine, LintCode, LintLevel, Program};
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_tests::config_from_env;
use proptest::prelude::*;

fn device() -> Device {
    Device::with_workers(DeviceProfile::nvidia_h100(), 4)
}

/// A program exercising every lint code exactly once, with known line
/// numbers:
///
/// - `Stray` is written but read by nothing and is not an output (GL001)
/// - the `Stray` rule therefore feeds no output or goal (GL002)
/// - `lonely` in the `Far` rule is a singleton (GL003)
/// - the `Near` rule repeats `Edge(x, y)` (GL004)
/// - the `Never` rule carries `1 = 2` (GL005)
/// - `Pick` reads `Tag(3, x)` but every `Tag` writer pins column 0
///   to 1 (GL006)
/// - the third `Reach` rule is subsumed by the first (GL007)
const EVERY_LINT_PROGRAM: &str = "\
.decl Edge(x: number, y: number)\n\
.decl Reach(x: number, y: number)\n\
.decl Near(x: number, y: number)\n\
.decl Far(x: number, y: number)\n\
.decl Stray(x: number)\n\
.decl Never(x: number)\n\
.decl Tag(t: number, v: number)\n\
.decl Pick(v: number)\n\
.input Edge\n\
.output Reach\n\
.output Near\n\
.output Far\n\
.output Never\n\
.output Pick\n\
Reach(x, y) :- Edge(x, y).\n\
Reach(x, y) :- Edge(x, z), Reach(z, y).\n\
Reach(x, y) :- Edge(x, y), Reach(x, y).\n\
Near(x, y) :- Edge(x, y), Edge(x, y).\n\
Far(x, y) :- Edge(x, y), Edge(x, lonely).\n\
Stray(x) :- Edge(x, _).\n\
Never(x) :- Edge(x, _), 1 = 2.\n\
Tag(1, x) :- Edge(x, _).\n\
Pick(x) :- Tag(3, x).\n";

#[test]
fn golden_diagnostics_cover_every_lint_code() {
    let program = parse_program(EVERY_LINT_PROGRAM).unwrap();
    let diags = gpulog::lint_program(&program);
    let codes: Vec<&str> = diags.iter().map(|d| d.code.code()).collect();
    assert_eq!(
        codes,
        vec!["GL001", "GL002", "GL003", "GL004", "GL005", "GL006", "GL007"],
        "one finding per lint, in code order:\n{diags}"
    );

    let find = |code: LintCode| diags.iter().find(|d| d.code == code).unwrap();
    // GL001 anchors to the declaration (no rule, no span).
    let unused = find(LintCode::UnusedRelation);
    assert!(unused.message.contains("Stray"));
    assert_eq!(unused.rule, None);
    assert!(!unused.span.is_known());
    // Rule-anchored findings carry the 1-based source line of their rule
    // head (or offending atom), and the rule's index.
    let unreachable = find(LintCode::UnreachableRule);
    assert_eq!((unreachable.rule, unreachable.span.line), (Some(5), 20));
    let singleton = find(LintCode::SingletonVariable);
    assert_eq!((singleton.rule, singleton.span.line), (Some(4), 19));
    assert!(singleton.message.contains("lonely"));
    let duplicate = find(LintCode::DuplicateLiteral);
    assert_eq!(duplicate.rule, Some(3));
    assert_eq!(duplicate.span.line, 18, "anchored at the repeated literal");
    assert!(
        duplicate.span.column > 1,
        "the second Edge atom is mid-line"
    );
    let always_false = find(LintCode::AlwaysFalse);
    assert_eq!((always_false.rule, always_false.span.line), (Some(6), 21));
    let mismatch = find(LintCode::ConstantMismatch);
    assert_eq!(mismatch.rule, Some(8));
    assert_eq!(mismatch.span.line, 23, "anchored at the Tag(3, x) literal");
    let subsumed = find(LintCode::SubsumedRule);
    assert_eq!((subsumed.rule, subsumed.span.line), (Some(2), 17));

    // The rendering contract golden tests and the CLI both rely on.
    let rendered = singleton.to_string();
    assert!(rendered.starts_with("warning[GL003]:"), "got: {rendered}");
    assert!(
        rendered.ends_with("at line 19, column 1"),
        "got: {rendered}"
    );
}

#[test]
fn engine_surfaces_diagnostics_and_deny_fails_the_build() {
    let d = device();
    let engine = GpulogEngine::builder(&d)
        .program(EVERY_LINT_PROGRAM)
        .config(config_from_env())
        .build()
        .expect("warn level collects findings without failing");
    assert_eq!(engine.diagnostics().len(), 7);

    let err = GpulogEngine::builder(&d)
        .program(EVERY_LINT_PROGRAM)
        .config(config_from_env())
        .lint(LintLevel::Deny)
        .build()
        .unwrap_err();
    match err {
        EngineError::LintDenied { count, ref first } => {
            assert_eq!(count, 7);
            assert!(first.starts_with("warning[GL001]"), "got: {first}");
        }
        other => panic!("expected LintDenied, got {other:?}"),
    }

    let engine = GpulogEngine::builder(&d)
        .program(EVERY_LINT_PROGRAM)
        .config(config_from_env())
        .lint(LintLevel::Allow)
        .build()
        .expect("allow skips the lints");
    assert!(engine.diagnostics().is_empty());
}

#[test]
fn facade_exposes_diagnostics_at_the_default_warn_level() {
    let d = device();
    let dl = Gpulog::from_source(&d, EVERY_LINT_PROGRAM).unwrap();
    assert!(dl.diagnostics().has(LintCode::SingletonVariable));
    assert_eq!(dl.diagnostics().len(), 7);
}

#[test]
fn duplicate_input_and_output_declarations_are_rejected_with_spans() {
    let err = parse_program(
        ".decl Edge(x: number, y: number)\n\
         .input Edge\n\
         .input Edge\n",
    )
    .unwrap_err();
    match err {
        EngineError::Parse {
            line,
            column,
            ref message,
            ..
        } => {
            assert_eq!((line, column), (3, 8), "span pins the second declaration");
            assert!(message.contains("duplicate .input declaration for Edge"));
        }
        other => panic!("expected a parse error, got {other:?}"),
    }

    let err = parse_program(
        ".decl Reach(x: number, y: number)\n\
         .output Reach\n\
         .output Reach\n",
    )
    .unwrap_err();
    match err {
        EngineError::Parse {
            line, ref message, ..
        } => {
            assert_eq!(line, 3);
            assert!(message.contains("duplicate .output declaration for Reach"));
        }
        other => panic!("expected a parse error, got {other:?}"),
    }

    // Declaring a relation as both .input and .output stays legal.
    parse_program(
        ".decl Edge(x: number, y: number)\n\
         .input Edge\n\
         .output Edge\n",
    )
    .unwrap();
}

#[test]
fn unbound_variable_errors_carry_the_parse_span() {
    // Unbound head variable: pinned to the rule head's atom. Parsing
    // succeeds — safety validation happens in `stratify_program`.
    let program = parse_program(
        ".decl Edge(x: number, y: number)\n\
         .decl R(x: number)\n\
         .input Edge\n\
         .output R\n\
         R(ghost) :- Edge(x, y).\n",
    )
    .unwrap();
    let err = gpulog::stratify_program(&program).unwrap_err();
    match err {
        EngineError::UnboundVariable {
            line,
            column,
            ref variable,
            ..
        } => {
            assert_eq!((line, column), (5, 1));
            assert_eq!(variable, "ghost");
        }
        other => panic!("expected UnboundVariable, got {other:?}"),
    }

    // Unbound negated-atom variable: pinned to the negated atom itself.
    let program = parse_program(
        ".decl Edge(x: number, y: number)\n\
         .decl Blocked(x: number)\n\
         .decl R(x: number)\n\
         .input Edge\n\
         .input Blocked\n\
         .output R\n\
         R(x) :- Edge(x, _), !Blocked(z).\n",
    )
    .unwrap();
    let err = gpulog::stratify_program(&program).unwrap_err();
    match err {
        EngineError::UnboundVariable {
            line,
            column,
            ref context,
            ..
        } => {
            assert_eq!(line, 7);
            assert!(
                column > 1,
                "the negated atom sits mid-line, got column {column}"
            );
            assert!(context.contains("negated atom Blocked"));
        }
        other => panic!("expected UnboundVariable, got {other:?}"),
    }

    // Programmatically-built rules carry no span and the display omits it.
    let program = gpulog::ProgramBuilder::new()
        .input_relation("Edge", 2)
        .output_relation("R", 1)
        .rule("R", vec![gpulog::Term::var("ghost")])
        .body("Edge", vec![gpulog::Term::var("x"), gpulog::Term::var("y")])
        .end_rule()
        .build()
        .unwrap();
    let err = gpulog::stratify_program(&program).unwrap_err();
    match err {
        EngineError::UnboundVariable { line, column, .. } => {
            assert_eq!((line, column), (0, 0));
            assert!(!err.to_string().contains("line"));
        }
        other => panic!("expected UnboundVariable, got {other:?}"),
    }
}

#[test]
fn goal_directed_runs_still_reach_relations_the_optimizer_pruned() {
    // Scratch is dead weight for the full run (the optimizer prunes its
    // rule from the compiled program), but a goal-directed query targets
    // it through the retained original AST and must still see its tuples.
    let d = device();
    let mut engine = GpulogEngine::builder(&d)
        .program(
            ".decl Edge(x: number, y: number)\n\
             .input Edge\n\
             .decl Reach(x: number, y: number)\n\
             .output Reach\n\
             .decl Scratch(x: number, y: number)\n\
             Reach(x, y) :- Edge(x, y).\n\
             Reach(x, y) :- Edge(x, z), Reach(z, y).\n\
             Scratch(y, x) :- Reach(x, y).\n",
        )
        .config(config_from_env())
        .build()
        .unwrap();
    engine
        .add_facts("Edge", [[0u32, 1], [1, 2], [2, 3]])
        .unwrap();
    let stats = engine.run().unwrap();
    assert_eq!(
        stats.relation_sizes.get("Scratch"),
        Some(&0),
        "the full run must not materialize the dead Scratch relation"
    );
    assert_eq!(engine.relation_size("Reach"), Some(6));

    let result = engine
        .run_query_with("Scratch", &[None, Some(0)])
        .expect("the query path evaluates the original AST");
    let answers: Vec<&[u32]> = result.answers.rows().collect();
    assert_eq!(answers, vec![&[1u32, 0][..], &[2, 0], &[3, 0]]);
}

/// The three program shapes the semantics-preservation property sweeps:
/// each hits several rewrites at once (dead rules, duplicates,
/// subsumption, constant propagation, always-false elimination) across
/// negation and aggregation.
const PROPERTY_PROGRAMS: [&str; 3] = [
    // Closure with a dead derived chain, a duplicate literal, a subsumed
    // rule, and a constant selection.
    ".decl Edge(x: number, y: number)\n\
     .input Edge\n\
     .decl Reach(x: number, y: number)\n\
     .output Reach\n\
     .decl Near(x: number, y: number)\n\
     .output Near\n\
     .decl Scratch(x: number, y: number)\n\
     Reach(x, y) :- Edge(x, y).\n\
     Reach(x, y) :- Edge(x, z), Reach(z, y).\n\
     Reach(x, y) :- Edge(x, y), Edge(x, y), Reach(x, y).\n\
     Near(x, y) :- Edge(x, y), x = 1.\n\
     Scratch(y, x) :- Reach(x, y), Edge(y, x).\n",
    // Stratified negation plus an always-false rule and a pinned-variable
    // contradiction.
    ".decl Edge(x: number, y: number)\n\
     .input Edge\n\
     .decl Blocked(x: number)\n\
     .decl Reach(x: number, y: number)\n\
     .output Reach\n\
     Blocked(x) :- Edge(x, x).\n\
     Reach(x, y) :- Edge(x, y), !Blocked(y).\n\
     Reach(x, y) :- Edge(x, z), Reach(z, y), !Blocked(y).\n\
     Reach(x, y) :- Edge(x, y), 3 < 2.\n\
     Reach(x, y) :- Edge(x, y), x = 0, x = 2.\n",
    // A head aggregate over a relation that also feeds a dead rule.
    ".decl Edge(x: number, y: number)\n\
     .input Edge\n\
     .decl PathLen(x: number, y: number, d: number)\n\
     .decl SP(x: number, y: number, d: number)\n\
     .output SP\n\
     .decl Unused(x: number)\n\
     PathLen(x, y, 1) :- Edge(x, y).\n\
     PathLen(x, y, 2) :- Edge(x, z), Edge(z, y).\n\
     SP(x, y, min(d)) :- PathLen(x, y, d).\n\
     Unused(x) :- PathLen(x, _, _).\n",
];

/// Sorted tuples of every declared output relation.
fn output_fixpoint(engine: &GpulogEngine, program: &Program) -> Vec<(String, Vec<Vec<u32>>)> {
    program
        .relations
        .iter()
        .filter(|decl| decl.is_output)
        .map(|decl| {
            let mut tuples = engine
                .relation_tuples(&decl.name)
                .expect("declared relations exist");
            tuples.sort();
            (decl.name.clone(), tuples)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Semantics preservation on the configured backend matrix leg: for
    // random edge sets, the optimized engine's fixpoint on every output
    // relation is byte-identical to the unoptimized engine's.
    #[test]
    fn optimized_fixpoint_matches_unoptimized_on_outputs(
        edges in prop::collection::vec((0u32..12, 0u32..12), 0..60),
        which in 0usize..PROPERTY_PROGRAMS.len(),
    ) {
        let source = PROPERTY_PROGRAMS[which];
        let program = parse_program(source).unwrap();
        let d = device();
        let run = |optimize: bool| {
            let mut engine = GpulogEngine::builder(&d)
                .program(source)
                .config(config_from_env())
                .optimize(optimize)
                .build()
                .expect("property program builds");
            engine
                .add_facts("Edge", edges.iter().map(|&(a, b)| [a, b]))
                .unwrap();
            engine.run().unwrap();
            output_fixpoint(&engine, &program)
        };
        let unoptimized = run(false);
        let optimized = run(true);
        prop_assert_eq!(optimized, unoptimized);
    }
}
