//! Snapshot-isolation guarantee, pinned across the backend matrix: reader
//! threads querying a [`gpulog_serve::ServeHandle`] while the writer
//! materializes the next fixpoint must observe exactly one *complete*
//! fixpoint per query — byte-identical to the serially-computed fixpoint of
//! whatever generation they caught, never a torn mix of two generations.
//!
//! The test precomputes the expected fixpoint for every generation with a
//! fresh serial engine over the cumulative fact set, then replays the same
//! growth through a `ServeWriter` on each backend under concurrent readers
//! and compares the canonical sorted tuple streams byte for byte.

use gpulog::{EngineConfig, GpulogEngine};
use gpulog_bench::parse_backend_spec;
use gpulog_device::profile::DeviceProfile;
use gpulog_device::Device;
use gpulog_hisa::TupleBatch;
use gpulog_serve::ServeWriter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const REACH: &str = r"
    .decl Edge(x: number, y: number)
    .input Edge
    .decl Reach(x: number, y: number)
    .output Reach
    Reach(x, y) :- Edge(x, y).
    Reach(x, y) :- Edge(x, z), Reach(z, y).
";

/// Edges present at generation `g` (1-based): a chain that starts with 5
/// nodes and grows one edge per refresh, plus a shortcut every other round
/// so later generations are not pure supersets of a single frontier edge.
fn edges_at_generation(gen: u64) -> Vec<[u32; 2]> {
    let mut edges: Vec<[u32; 2]> = (0..4).map(|i| [i, i + 1]).collect();
    for round in 1..gen {
        let next = 4 + round as u32;
        edges.push([next - 1, next]);
        if round % 2 == 0 {
            edges.push([0, next]);
        }
    }
    edges
}

/// The canonical (sorted, deduplicated, flattened) fixpoint of generation
/// `gen`, computed from scratch by a fresh serial engine.
fn expected_fixpoint(gen: u64) -> (Vec<u32>, Vec<u32>) {
    let device = Device::with_workers(DeviceProfile::nvidia_h100(), 2);
    let mut engine = GpulogEngine::from_source(&device, REACH, EngineConfig::default()).unwrap();
    engine.add_facts("Edge", edges_at_generation(gen)).unwrap();
    engine.run().unwrap();
    let snap = engine.snapshot().unwrap();
    (
        snap.sorted_tuples_flat("Edge").unwrap(),
        snap.sorted_tuples_flat("Reach").unwrap(),
    )
}

fn isolation_under_concurrent_writes(spec: &str) {
    const ROUNDS: u64 = 6;
    const READERS: usize = 4;
    let expected: Vec<(Vec<u32>, Vec<u32>)> = (1..=ROUNDS + 1).map(expected_fixpoint).collect();
    let expected = Arc::new(expected);

    let config = parse_backend_spec(spec)
        .unwrap()
        .configure(EngineConfig::default());
    let device = Device::with_workers(DeviceProfile::nvidia_h100(), 4);
    let mut engine = GpulogEngine::from_source(&device, REACH, config).unwrap();
    engine.add_facts("Edge", edges_at_generation(1)).unwrap();
    let mut writer = ServeWriter::new(engine).unwrap();
    let handle = writer.handle();

    let stop = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..READERS)
        .map(|_| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut observations = 0u64;
                let mut generations_seen = std::collections::BTreeSet::new();
                while !stop.load(Ordering::Relaxed) {
                    // One snapshot, two relations read from it: both must
                    // come from the same serially-verified generation.
                    let snap = handle.latest();
                    let gen = snap.generation();
                    let (ref want_edge, ref want_reach) = expected[(gen - 1) as usize];
                    assert_eq!(
                        snap.sorted_tuples_flat("Edge").as_ref(),
                        Some(want_edge),
                        "[{gen}] torn or divergent Edge fixpoint"
                    );
                    assert_eq!(
                        snap.sorted_tuples_flat("Reach").as_ref(),
                        Some(want_reach),
                        "[{gen}] torn or divergent Reach fixpoint"
                    );
                    generations_seen.insert(gen);
                    observations += 1;
                }
                (observations, generations_seen)
            })
        })
        .collect();

    for gen in 1..=ROUNDS {
        // Stage exactly the delta between generation `gen` and `gen + 1`.
        let have = edges_at_generation(gen);
        let next: Vec<[u32; 2]> = edges_at_generation(gen + 1)
            .into_iter()
            .filter(|e| !have.contains(e))
            .collect();
        writer
            .insert_facts_batch("Edge", &TupleBatch::from_rows(2, next))
            .unwrap();
        writer.refresh().unwrap();
        // The writer's own published snapshot must match the from-scratch
        // serial fixpoint byte for byte, on every backend.
        let snap = handle.latest();
        assert_eq!(snap.generation(), gen + 1);
        let (ref want_edge, ref want_reach) = expected[gen as usize];
        assert_eq!(snap.sorted_tuples_flat("Edge").as_ref(), Some(want_edge));
        assert_eq!(snap.sorted_tuples_flat("Reach").as_ref(), Some(want_reach));
    }
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        let (observations, _) = t.join().expect("reader thread panicked");
        assert!(observations > 0, "a reader made no observations");
    }
    assert_eq!(handle.generation(), ROUNDS + 1);
}

#[test]
fn serial_backend_serves_isolated_snapshots() {
    isolation_under_concurrent_writes("serial");
}

#[test]
fn sharded_backend_serves_isolated_snapshots() {
    isolation_under_concurrent_writes("sharded:4");
}

#[test]
fn pipelined_backend_serves_isolated_snapshots() {
    isolation_under_concurrent_writes("pipelined:4");
}
