//! Integration-test crate for the GPUlog reproduction workspace.
//!
//! All test content lives in the `tests/` directory and exercises the
//! public APIs of the workspace crates together (end-to-end Datalog
//! queries, cross-engine agreement, paper figure traces). This library
//! exports the one piece of shared harness code: the CI backend matrix's
//! `GPULOG_TEST_BACKEND` override.

use gpulog::EngineConfig;

/// The shard count selected by the `GPULOG_TEST_BACKEND` environment
/// variable: `serial` (or unset) means 1, `sharded` means 4, and
/// `sharded:N` means `N` — the same spec grammar the bench bins'
/// `--backend` flag accepts, parsed by the same
/// [`gpulog_bench::parse_backend_spec`] so the two cannot drift apart.
/// CI runs the workspace test suite once per matrix leg so every
/// engine-level test exercises every backend.
///
/// # Panics
///
/// Panics on an unrecognized value — a typo in the CI matrix must fail
/// loudly, not silently fall back to the serial backend.
pub fn shard_count_from_env() -> usize {
    match std::env::var("GPULOG_TEST_BACKEND") {
        Err(_) => 1,
        Ok(value) if value.trim().is_empty() => 1,
        Ok(value) => match gpulog_bench::parse_backend_spec(value.trim()) {
            Ok((_, shards)) => shards,
            Err(err) => panic!("invalid GPULOG_TEST_BACKEND: {err}"),
        },
    }
}

/// The engine configuration tests should build engines with: the default
/// configuration, re-targeted at the backend the `GPULOG_TEST_BACKEND`
/// matrix leg selects (see [`shard_count_from_env`]).
pub fn config_from_env() -> EngineConfig {
    EngineConfig::default().with_shard_count(shard_count_from_env())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_serial() {
        // The variable is unset in a plain `cargo test` run, and CI's
        // serial leg sets it to `serial`; both must mean one shard.
        if std::env::var("GPULOG_TEST_BACKEND").is_err() {
            assert_eq!(config_from_env().shard_count, 1);
        }
    }
}
