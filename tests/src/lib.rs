//! Integration-test crate for the GPUlog reproduction workspace.
//!
//! This crate intentionally exports nothing; all content lives in its
//! `tests/` directory and exercises the public APIs of the workspace crates
//! together (end-to-end Datalog queries, cross-engine agreement, paper
//! figure traces).
