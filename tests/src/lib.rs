//! Integration-test crate for the GPUlog reproduction workspace.
//!
//! All test content lives in the `tests/` directory and exercises the
//! public APIs of the workspace crates together (end-to-end Datalog
//! queries, cross-engine agreement, paper figure traces). This library
//! exports the one piece of shared harness code: the CI backend matrix's
//! `GPULOG_TEST_BACKEND` override.

use gpulog::EngineConfig;
use gpulog_bench::BackendSpec;

/// The backend selected by the `GPULOG_TEST_BACKEND` environment variable:
/// `serial` (or unset), `sharded` / `sharded:N`, `multigpu:N` (an
/// `N`-device simulated NVLink-like topology), or `pipelined:N`
/// (iteration overlap over `N` shards) — the same spec grammar the
/// bench bins' `--backend` flag accepts, parsed by the same
/// [`gpulog_bench::parse_backend_spec`] so the two cannot drift apart.
/// CI runs the workspace test suite once per matrix leg so every
/// engine-level test exercises every backend.
///
/// # Panics
///
/// Panics on an unrecognized value — a typo in the CI matrix must fail
/// loudly, not silently fall back to the serial backend.
pub fn backend_from_env() -> BackendSpec {
    match std::env::var("GPULOG_TEST_BACKEND") {
        Err(_) => BackendSpec::Serial,
        Ok(value) if value.trim().is_empty() => BackendSpec::Serial,
        Ok(value) => match gpulog_bench::parse_backend_spec(value.trim()) {
            Ok(spec) => spec,
            Err(err) => panic!("invalid GPULOG_TEST_BACKEND: {err}"),
        },
    }
}

/// The engine configuration tests should build engines with: the default
/// configuration, re-targeted at the backend the `GPULOG_TEST_BACKEND`
/// matrix leg selects (see [`backend_from_env`]).
pub fn config_from_env() -> EngineConfig {
    backend_from_env().configure(EngineConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_serial() {
        // The variable is unset in a plain `cargo test` run, and CI's
        // serial leg sets it to `serial`; both must mean one shard and no
        // topology.
        if std::env::var("GPULOG_TEST_BACKEND").is_err() {
            let config = config_from_env();
            assert_eq!(config.shard_count, 1);
            assert!(config.device_topology.is_none());
        }
    }
}
