//! Graph reachability over the paper's named (synthetic, scaled) datasets,
//! with per-phase timing and a comparison against the Soufflé-like CPU
//! baseline — a miniature version of the paper's Table 2 experiment.
//!
//! ```text
//! cargo run --release --example reachability [scale]
//! ```

use gpulog::{EngineConfig, Phase};
use gpulog_baselines::souffle_like;
use gpulog_datasets::PaperDataset;
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_queries::reach;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let dataset = PaperDataset::Gnutella31;
    let graph = dataset.generate(scale);
    println!(
        "dataset {} : {} nodes, {} edges",
        graph.name,
        graph.node_count(),
        graph.len()
    );

    let device = Device::new(DeviceProfile::nvidia_h100());
    let result = reach::run(&device, &graph, EngineConfig::default())?;
    println!(
        "GPUlog: {} Reach tuples in {} iterations",
        result.reach_size, result.stats.iterations
    );
    println!(
        "        wall {:.1} ms, modeled H100 {:.2} ms",
        result.stats.wall_seconds * 1e3,
        result.stats.modeled_seconds() * 1e3
    );
    for phase in Phase::all() {
        println!(
            "        {:<18} {:>5.1}%",
            phase.label(),
            result.stats.phase_percent(phase)
        );
    }

    let baseline = souffle_like::reach(&graph, 8);
    println!(
        "Souffle-like baseline: {:?} tuples in {:.1} ms (must agree: {})",
        baseline.tuples.unwrap_or(0),
        baseline.seconds().unwrap_or(0.0) * 1e3,
        baseline.tuples == Some(result.reach_size),
    );
    Ok(())
}
