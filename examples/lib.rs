//! Placeholder library target for the examples package; all content lives
//! in the example binaries next to this file (`cargo run --example ...`).
