//! Shared sources for the examples package; the runnable content lives in
//! the example binaries next to this file (`cargo run --example ...`).
//!
//! The programs embedded in the examples are exported here so tooling —
//! in particular the `gpulog-lint` CLI's `--embedded` sweep — can lint
//! them without executing the binaries.

/// The Datalog program the `quickstart` example runs: transitive closure
/// over an `Edge` relation.
pub const QUICKSTART_PROGRAM: &str = r"
    .decl Edge(x: number, y: number)
    .input Edge
    .decl Reach(x: number, y: number)
    .output Reach
    Reach(x, y) :- Edge(x, y).
    Reach(x, y) :- Edge(x, z), Reach(z, y).
";
