//! The Same Generation query on the paper's Figure 1 example graph,
//! printing the iteration-by-iteration deltas the figure walks through,
//! then a larger run comparing the temporarily-materialized and fused
//! n-way join strategies.
//!
//! ```text
//! cargo run --release --example same_generation
//! ```

use gpulog::{EngineConfig, NwayStrategy};
use gpulog_datasets::{generators::layered_dag, EdgeList};
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_queries::sg;

fn figure1_graph() -> EdgeList {
    EdgeList::new(
        "paper-figure-1",
        vec![
            (0, 1),
            (0, 2),
            (1, 3),
            (1, 4),
            (2, 4),
            (2, 5),
            (3, 6),
            (4, 7),
            (4, 8),
            (5, 8),
        ],
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::new(DeviceProfile::nvidia_h100());

    // Part 1: the 9-node graph from Figure 1 of the paper.
    let graph = figure1_graph();
    let mut engine = sg::prepare(&device, &graph, EngineConfig::default())?;
    let stats = engine.run()?;
    println!("SG on the paper's Figure 1 graph");
    println!(
        "  final SG size: {}",
        engine.relation_size("SG").unwrap_or(0)
    );
    for record in &stats.iteration_records {
        println!(
            "  iteration {}: {} tuples derived, {} new (delta)",
            record.iteration, record.new_tuples, record.delta_tuples
        );
    }
    // Borrow the rows straight out of relation storage — no per-row clones.
    let mut tuples: Vec<&[u32]> = engine
        .relation_tuples_iter("SG")
        .into_iter()
        .flatten()
        .collect();
    tuples.sort();
    println!("  SG = {tuples:?}");

    // Part 2: strategy comparison on a layered DAG.
    let big = layered_dag(8, 40, 3, 7);
    for (label, strategy) in [
        (
            "temporarily materialized",
            NwayStrategy::TemporarilyMaterialized,
        ),
        ("fused nested loop", NwayStrategy::FusedNestedLoop),
    ] {
        let cfg = EngineConfig::new().with_nway(strategy);
        let result = sg::run(&device, &big, cfg)?;
        println!(
            "strategy {label:<26}: {} tuples, wall {:.1} ms, modeled {:.2} ms",
            result.sg_size,
            result.stats.wall_seconds * 1e3,
            result.stats.modeled_seconds() * 1e3
        );
    }
    Ok(())
}
