//! Quickstart: build an engine with `EngineBuilder`, load facts, run it to
//! fixpoint, and inspect results and run statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpulog::GpulogEngine;
use gpulog_device::{profile::DeviceProfile, Device};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a device. The profile determines memory capacity and the
    //    analytic cost model used for modeled-device-time reporting.
    let device = Device::new(DeviceProfile::nvidia_h100());

    // 2. Build the engine: `GpulogEngine::builder` takes the program as
    //    Soufflé-style source and exposes every tuning knob (EBM policy,
    //    join strategy, load factor, iteration cap, evaluation backend)
    //    as a builder setter. The defaults reproduce the paper's setup.
    let mut engine = GpulogEngine::builder(&device)
        .program(gpulog_examples::QUICKSTART_PROGRAM)
        .max_iterations(100_000)
        .build()?;

    // 3. Load extensional facts (here: a small cycle plus a tail).
    engine.add_facts("Edge", [[0u32, 1], [1, 2], [2, 0], [2, 3], [3, 4]])?;

    // 4. Run to fixpoint. Every rule is lowered to an operator pipeline
    //    (Scan → HashJoin* → Project) and dispatched through the engine's
    //    backend — `SerialBackend` unless one was installed on the builder.
    //    Adding `.shard_count(4)` to the builder (or
    //    `EngineConfig::with_shard_count`) swaps in the hash-partitioned
    //    `ShardedBackend`: relations shard by join-key hash and each
    //    join/dedup op fans across the worker pool, with results
    //    byte-identical to the serial run.
    let stats = engine.run()?;

    // 5. Inspect results: indexed point lookups, borrowed row iteration,
    //    or an owned `TupleBatch` for host-side export.
    println!(
        "Reach has {} tuples",
        engine.relation_size("Reach").unwrap_or(0)
    );
    println!("0 reaches 4?  {}", engine.contains("Reach", &[0, 4]));
    println!("4 reaches 0?  {}", engine.contains("Reach", &[4, 0]));
    let from_zero = engine
        .relation_tuples_iter("Reach")
        .into_iter()
        .flatten()
        .filter(|row| row[0] == 0)
        .count();
    println!("closure pairs leaving node 0: {from_zero}");
    println!();
    println!("fixpoint iterations : {}", stats.iterations);
    println!("wall time           : {:.3} ms", stats.wall_seconds * 1e3);
    println!(
        "modeled H100 time   : {:.3} ms",
        stats.modeled_seconds() * 1e3
    );
    println!(
        "peak device memory  : {:.1} KiB",
        stats.peak_device_bytes as f64 / 1024.0
    );
    Ok(())
}
