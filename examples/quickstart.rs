//! Quickstart: define a Datalog program, load facts, run it to fixpoint,
//! and inspect results and run statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpulog::Gpulog;
use gpulog_device::{profile::DeviceProfile, Device};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a device. The profile determines memory capacity and the
    //    analytic cost model used for modeled-device-time reporting.
    let device = Device::new(DeviceProfile::nvidia_h100());

    // 2. Write a Datalog program in Soufflé-style syntax.
    let mut datalog = Gpulog::from_source(
        &device,
        r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl Reach(x: number, y: number)
        .output Reach
        Reach(x, y) :- Edge(x, y).
        Reach(x, y) :- Edge(x, z), Reach(z, y).
    ",
    )?;

    // 3. Load extensional facts (here: a small cycle plus a tail).
    datalog.add_facts("Edge", [[0u32, 1], [1, 2], [2, 0], [2, 3], [3, 4]])?;

    // 4. Run to fixpoint.
    let stats = datalog.run()?;

    // 5. Inspect results.
    println!("Reach has {} tuples", datalog.len("Reach").unwrap_or(0));
    println!("0 reaches 4?  {}", datalog.contains("Reach", &[0, 4]));
    println!("4 reaches 0?  {}", datalog.contains("Reach", &[4, 0]));
    println!();
    println!("fixpoint iterations : {}", stats.iterations);
    println!("wall time           : {:.3} ms", stats.wall_seconds * 1e3);
    println!(
        "modeled H100 time   : {:.3} ms",
        stats.modeled_seconds() * 1e3
    );
    println!(
        "peak device memory  : {:.1} KiB",
        stats.peak_device_bytes as f64 / 1024.0
    );
    Ok(())
}
