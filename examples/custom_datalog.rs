//! Building a Datalog program programmatically with `ProgramBuilder` — no
//! source text involved — and tuning the engine configuration (eager buffer
//! management factor, hash-table load factor, join strategy).
//!
//! The program is the DDisasm-flavoured multi-column join the paper uses to
//! motivate requirement R3, plus a small derived summary relation.
//!
//! ```text
//! cargo run --release --example custom_datalog
//! ```

use gpulog::{CmpOp, EbmConfig, EngineConfig, GpulogEngine, NwayStrategy, ProgramBuilder, Term};
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_queries::ddisasm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a two-column join key (ea, reg): exercised through the
    // builder API instead of the parser.
    let program = ProgramBuilder::new()
        .input_relation("def_used", 3) // (ea, reg, kind)
        .input_relation("mem_access", 4) // (op, ea, reg, base)
        .output_relation("unsupported", 2) // (ea, reg)
        .output_relation("unsupported_regs", 1)
        .rule("unsupported", vec![Term::var("ea"), Term::var("reg")])
        .body(
            "def_used",
            vec![Term::var("ea"), Term::var("reg"), Term::var("k")],
        )
        .body(
            "mem_access",
            vec![
                Term::Const(1),
                Term::var("ea"),
                Term::var("reg"),
                Term::var("base"),
            ],
        )
        .constraint(Term::var("base"), CmpOp::Ne, Term::Const(0))
        .end_rule()
        .rule("unsupported_regs", vec![Term::var("reg")])
        .body("unsupported", vec![Term::var("ea"), Term::var("reg")])
        .end_rule()
        .build()?;

    // Tune the engine: larger EBM growth factor, paper's 0.8 load factor,
    // temporarily-materialized joins (the default, spelled out here).
    let config = EngineConfig::new()
        .with_ebm(EbmConfig::with_growth_factor(16.0))
        .with_load_factor(0.8)
        .with_nway(NwayStrategy::TemporarilyMaterialized);

    let device = Device::new(DeviceProfile::nvidia_a100());
    let mut engine = GpulogEngine::builder(&device)
        .program_ast(&program)
        .config(config)
        .build()?;

    // Reuse the synthetic DDisasm workload generator from gpulog-queries.
    let input = ddisasm::generate(20_000, 7);
    let def_flat: Vec<u32> = input.def_used.iter().flatten().copied().collect();
    let mem_flat: Vec<u32> = input.memory_access.iter().flatten().copied().collect();
    engine.add_facts_flat("def_used", &def_flat)?;
    engine.add_facts_flat("mem_access", &mem_flat)?;

    let stats = engine.run()?;
    println!(
        "def_used {} tuples, mem_access {} tuples",
        input.def_used.len(),
        input.memory_access.len()
    );
    println!(
        "unsupported (multi-column join result): {} tuples",
        engine.relation_size("unsupported").unwrap_or(0)
    );
    println!(
        "distinct registers involved: {}",
        engine.relation_size("unsupported_regs").unwrap_or(0)
    );
    println!(
        "wall {:.1} ms, modeled A100 {:.2} ms, peak device {:.1} KiB",
        stats.wall_seconds * 1e3,
        stats.modeled_seconds() * 1e3,
        stats.peak_device_bytes as f64 / 1024.0
    );
    Ok(())
}
