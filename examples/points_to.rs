//! Context-sensitive points-to analysis (CSPA) on a synthetic program graph
//! shaped like the paper's httpd input — the workload behind the paper's
//! headline 37-45x speedups (Table 4) and its phase-breakdown figure.
//!
//! ```text
//! cargo run --release --example points_to [scale-divisor]
//! ```

use gpulog::{EngineConfig, Phase};
use gpulog_baselines::souffle_like;
use gpulog_datasets::cspa::httpd_like;
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_queries::cspa;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let divisor: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1200.0);
    let input = httpd_like(1.0 / divisor);
    println!(
        "input {}: Assign {}, Dereference {}",
        input.name,
        input.assign_len(),
        input.dereference_len()
    );

    let device = Device::new(DeviceProfile::nvidia_h100());
    let result = cspa::run(&device, &input, EngineConfig::default())?;
    println!(
        "GPUlog: ValueFlow {}  ValueAlias {}  MemoryAlias {}",
        result.sizes.value_flow, result.sizes.value_alias, result.sizes.memory_alias
    );
    println!(
        "        {} iterations, wall {:.1} ms, modeled H100 {:.2} ms",
        result.stats.iterations,
        result.stats.wall_seconds * 1e3,
        result.stats.modeled_seconds() * 1e3
    );
    println!("        phase breakdown (Figure 6 buckets):");
    for phase in Phase::all() {
        println!(
            "          {:<18} {:>5.1}%",
            phase.label(),
            result.stats.phase_percent(phase)
        );
    }

    let (outcome, sizes) = souffle_like::cspa(&input, 8);
    let agree = sizes.value_flow == result.sizes.value_flow
        && sizes.value_alias == result.sizes.value_alias
        && sizes.memory_alias == result.sizes.memory_alias;
    println!(
        "Souffle-like baseline: {:.1} ms, relation sizes agree: {agree}",
        outcome.seconds().unwrap_or(0.0) * 1e3
    );
    Ok(())
}
