//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of criterion's API the workspace benches use
//! (`Criterion`, `Bencher::iter`, benchmark groups, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros) with a simple
//! warmup-then-sample wall-clock measurement. Each benchmark prints one
//! line with min / median / mean time per iteration. Benches are declared
//! with `harness = false`, so `cargo bench` runs these `main` functions
//! directly.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// work. Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group, e.g. a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id labelled with just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the closure given to [`Criterion::bench_function`]; runs and
/// times the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine`, first warming up, then collecting samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: run until the warmup budget is spent, counting
        // iterations so the measurement phase can size its samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim each sample at measurement_time / sample_size of work.
        let sample_budget = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).max(1);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark driver. Stand-in for `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warmup budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        {
            let mut bencher = Bencher {
                samples: &mut samples,
                warm_up_time: self.warm_up_time,
                measurement_time: self.measurement_time,
                sample_size: self.sample_size,
            };
            f(&mut bencher);
        }
        report(name, &mut samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} min {:>12}   median {:>12}   mean {:>12}",
        format_duration(min),
        format_duration(median),
        format_duration(mean)
    );
}

/// A named group of benchmarks sharing the parent driver's settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{id}", self.name);
        self.criterion.bench_function(&label, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{id}", self.name);
        self.criterion.bench_function(&label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group: a configuration plus target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        c.bench_function("spin", |b| b.iter(|| (0..100u32).sum::<u32>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        targets = spin
    }

    #[test]
    fn group_macro_produces_runnable_function() {
        benches();
    }

    #[test]
    fn bencher_collects_requested_samples() {
        let mut samples = Vec::new();
        {
            let mut b = Bencher {
                samples: &mut samples,
                warm_up_time: Duration::from_millis(1),
                measurement_time: Duration::from_millis(5),
                sample_size: 4,
            };
            b.iter(|| black_box(1 + 1));
        }
        assert_eq!(samples.len(), 4);
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        for n in [10u32, 20] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u32>())
            });
        }
        group.finish();
    }
}
