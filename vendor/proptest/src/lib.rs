//! Minimal stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), [`Strategy`] for integer ranges, tuples, and
//! `prop::collection::vec`, plus `prop_assert!` / `prop_assert_eq!`.
//! Inputs are generated from a deterministic per-test seed (a hash of
//! the test name), so failures reproduce without a persistence file.
//! No shrinking is performed: a failing case panics immediately with the
//! case number.

use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::Range;

/// A source of random test inputs. Subset of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies. Subset of `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from an element strategy, with
    /// lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies. Subset of `proptest::bool`.
pub mod bool {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    /// Strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// Strategy yielding `true` with the given probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    /// `true` with probability `probability_true`.
    pub fn weighted(probability_true: f64) -> Weighted {
        Weighted(probability_true)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(self.0)
        }
    }
}

/// Per-test configuration. Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Stable 64-bit seed derived from a test's name.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, unlike `DefaultHasher`.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Items the [`proptest!`] expansion needs from the caller's scope.
#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;
}

/// The common imports property tests use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs its body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident ( $($p:pat_param in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            use $crate::__rt::SeedableRng as _;
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::__rt::SmallRng::seed_from_u64($crate::seed_for(stringify!($name)));
            for __case in 0..__config.cases {
                let __run = || {
                    $(let $p = $crate::Strategy::generate(&$s, &mut __rng);)+
                    $body
                };
                if let Err(panic) = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__run),
                ) {
                    eprintln!(
                        "property {} failed on case {}/{} (seed {})",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        $crate::seed_for(stringify!($name)),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy(limit: u32) -> impl Strategy<Value = (u32, u32)> {
        (0..limit, 0..limit)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(v in 3u32..17) {
            prop_assert!((3..17).contains(&v));
        }

        #[test]
        fn vecs_respect_length_and_element_bounds(
            values in prop::collection::vec(0u32..100, 2..50),
        ) {
            prop_assert!((2..50).contains(&values.len()));
            prop_assert!(values.iter().all(|&v| v < 100));
        }

        #[test]
        fn tuples_and_mut_bindings_work(mut pair in pair_strategy(9)) {
            pair.0 += 1;
            prop_assert!(pair.0 <= 9 && pair.1 < 9);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }
}
