//! Minimal stand-in for the `rand` crate.
//!
//! Implements exactly the surface the workspace uses — a seedable small
//! RNG with `gen`, `gen_range` over (inclusive) ranges, and `gen_bool` —
//! backed by splitmix64 followed by an xorshift* scramble. The value
//! stream differs from the real `SmallRng`; all workspace call sites
//! only require determinism per seed, not a specific stream.

use std::ops::{Range, RangeInclusive};

/// Types constructible from a seed. Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG seeded from a `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value type an RNG can produce uniformly. Support trait for
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_u64(bits: u64) -> Self;
}

impl Standard for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}

/// A range an RNG can sample a `T` from. Support trait for
/// [`Rng::gen_range`]. The element type is a type parameter (as in the
/// real `rand`) so integer-literal ranges infer it from the call site.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample(&self, bits: u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(&self, bits: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bits % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(&self, bits: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (bits % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Random-value methods. Subset of `rand::Rng`.
pub trait Rng {
    /// The next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic RNG (xorshift64* over a splitmix64
    /// seeded state). Stand-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 turns any seed (including 0) into a well-mixed,
            // non-zero xorshift state.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            SmallRng { state: z.max(1) }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(2u32..=9);
            assert!((2..=9).contains(&w));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
