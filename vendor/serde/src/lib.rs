//! No-op stand-in for `serde`'s derive macros.
//!
//! The workspace annotates a few plain-data types with
//! `#[derive(Serialize, Deserialize)]` so they are ready for a real
//! serialization dependency, but nothing actually serializes. This
//! proc-macro crate accepts the derives and expands to nothing, which
//! keeps the annotations compiling in the offline build environment.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
