//! # `gpulog-bench`: the experiment harness
//!
//! One binary per table and figure of the paper's evaluation section:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1_ebm` | Table 1 — REACH with vs. without eager buffer management |
//! | `table2_reach` | Table 2 — REACH: GPUlog vs Soufflé-like vs GPUJoin-like vs cuDF-like |
//! | `table3_sg` | Table 3 — SG: GPUlog vs GPUlog-HIP vs Soufflé-like vs cuDF-like |
//! | `table4_cspa` | Table 4 — CSPA: sizes, GPUlog vs Soufflé-like, speedups |
//! | `table5_hardware` | Table 5 — GPUlog across H100 / A100 / MI250 / MI50 |
//! | `table6_primitives` | Table 6 — sort / merge / allocation, GPU vs CPU |
//! | `figure6_breakdown` | Figure 6 — CSPA phase breakdown |
//!
//! All binaries accept the `GPULOG_SCALE` environment variable (default
//! `0.35`) scaling the synthetic datasets, and print plain-text tables in
//! the same row/column layout as the paper.

use gpulog::EngineConfig;
use gpulog_device::topology::DeviceTopology;
use gpulog_device::{Device, DeviceProfile};
use std::num::NonZeroUsize;

/// Reads the dataset scale factor from `GPULOG_SCALE` (default 0.35).
pub fn scale_from_env() -> f64 {
    std::env::var("GPULOG_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(0.35)
}

/// The VRAM-style memory budget applied to every engine in the comparison
/// tables, scaled with the dataset scale so that the memory-hungry
/// strategies hit it the way they hit 80 GB in the paper.
pub fn vram_budget_bytes(scale: f64) -> usize {
    // At the default scale this is ~24 MB — large enough for GPUlog and the
    // Soufflé-like engine on every dataset, small enough that the fused
    // merge/dedup and dataframe strategies exceed it on the bigger graphs.
    ((68.0 * 1024.0 * 1024.0) * scale) as usize
}

/// The simulated H100 GPUlog runs on in the comparison tables, with its
/// memory capacity replaced by the scaled VRAM budget.
pub fn gpulog_device(scale: f64) -> Device {
    let mut profile = DeviceProfile::nvidia_h100();
    profile.memory_capacity_bytes = vram_budget_bytes(scale);
    Device::new(profile)
}

/// A parsed backend selection shared by the bench bins' `--backend` flag
/// and the CI matrix's `GPULOG_TEST_BACKEND` variable (via
/// `gpulog_tests::config_from_env`), so the two spec grammars cannot
/// drift apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendSpec {
    /// The serial single-device backend.
    Serial,
    /// The hash-partitioned `ShardedBackend` with `N` shards.
    Sharded(usize),
    /// The `MultiGpuBackend` over an `N`-device NVLink-like topology.
    MultiGpu(usize),
    /// The iteration-overlapping `PipelinedBackend` with `N` shards.
    Pipelined(usize),
}

impl BackendSpec {
    /// The normalized label (`serial`, `sharded:N`, `multigpu:N`,
    /// `pipelined:N`) used in tables and artifacts.
    pub fn label(&self) -> String {
        match self {
            BackendSpec::Serial => "serial".to_string(),
            BackendSpec::Sharded(n) => format!("sharded:{n}"),
            BackendSpec::MultiGpu(n) => format!("multigpu:{n}"),
            BackendSpec::Pipelined(n) => format!("pipelined:{n}"),
        }
    }

    /// The number of hash partitions the spec evaluates over (1 for
    /// serial; the device count for a topology).
    pub fn shards(&self) -> usize {
        match self {
            BackendSpec::Serial => 1,
            BackendSpec::Sharded(n) | BackendSpec::MultiGpu(n) | BackendSpec::Pipelined(n) => *n,
        }
    }

    /// Re-targets an engine configuration at this backend: sets the shard
    /// count, for `multigpu:N` installs an `N`-device NVLink-like
    /// [`DeviceTopology`], and for `pipelined:N` enables iteration overlap
    /// over `N` shards.
    pub fn configure(&self, config: EngineConfig) -> EngineConfig {
        match self {
            BackendSpec::Serial => config.with_shard_count(1),
            BackendSpec::Sharded(n) => config.with_shard_count(*n),
            BackendSpec::MultiGpu(n) => {
                let devices = NonZeroUsize::new(*n).expect("parse rejects zero devices");
                config
                    .with_shard_count(1)
                    .with_device_topology(DeviceTopology::nvlink_like(devices))
            }
            BackendSpec::Pipelined(n) => config.with_shard_count(1).with_pipelined(*n),
        }
    }
}

/// Parses a backend spec: `serial`, `sharded` (4 shards), `sharded:N`,
/// `multigpu:N` (an `N`-device simulated NVLink-like topology), or
/// `pipelined:N` (iteration overlap over `N` shards).
///
/// # Errors
///
/// Returns a description of the expected syntax for anything else.
pub fn parse_backend_spec(spec: &str) -> Result<BackendSpec, String> {
    let parse_count = |n: &str| n.parse::<usize>().ok().filter(|n| *n >= 1);
    match spec {
        "serial" => Ok(BackendSpec::Serial),
        "sharded" => Ok(BackendSpec::Sharded(4)),
        other => {
            if let Some(n) = other.strip_prefix("sharded:").and_then(parse_count) {
                Ok(BackendSpec::Sharded(n))
            } else if let Some(n) = other.strip_prefix("multigpu:").and_then(parse_count) {
                Ok(BackendSpec::MultiGpu(n))
            } else if let Some(n) = other.strip_prefix("pipelined:").and_then(parse_count) {
                Ok(BackendSpec::Pipelined(n))
            } else {
                Err(format!(
                    "expected `serial`, `sharded`, `sharded:N`, `multigpu:N`, or \
                     `pipelined:N` (N >= 1), got {other:?}"
                ))
            }
        }
    }
}

/// Reads the `--backend serial|sharded:N|multigpu:N|pipelined:N`
/// command-line flag (default `serial`). Exits with a usage message on a
/// malformed spec so CI failures are self-explanatory.
pub fn backend_from_args() -> BackendSpec {
    let args: Vec<String> = std::env::args().collect();
    let mut spec = "serial".to_string();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--backend" {
            match args.get(i + 1) {
                Some(value) => spec = value.clone(),
                None => {
                    eprintln!(
                        "--backend needs a value: serial | sharded | sharded:N | multigpu:N | pipelined:N"
                    );
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    parse_backend_spec(&spec).unwrap_or_else(|err| {
        eprintln!("invalid --backend: {err}");
        std::process::exit(2);
    })
}

/// Formats a ratio as the paper prints speedups, e.g. `37.2x`.
pub fn speedup(baseline_seconds: f64, system_seconds: f64) -> String {
    if system_seconds <= 0.0 {
        return "-".to_string();
    }
    format!("{:.1}x", baseline_seconds / system_seconds)
}

/// A minimal fixed-width text table writer shared by the harness binaries.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have the same number of cells as the header).
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Prints a standard experiment banner naming the paper artefact being
/// regenerated.
pub fn banner(what: &str, scale: f64) {
    println!("==============================================================");
    println!("GPUlog reproduction — {what}");
    println!("(synthetic stand-in datasets, scale {scale}; see EXPERIMENTS.md)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_renders_aligned_columns() {
        let mut t = TextTable::new(["Dataset", "Time (s)"]);
        t.row(["usroads", "17.53"]);
        t.row(["a-very-long-name", "3.1"]);
        let rendered = t.render();
        assert!(rendered.contains("Dataset"));
        assert!(rendered.contains("a-very-long-name"));
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn text_table_rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn speedup_formats_like_the_paper() {
        assert_eq!(speedup(49.48, 1.33), "37.2x");
        assert_eq!(speedup(1.0, 0.0), "-");
    }

    #[test]
    fn backend_specs_parse_and_normalize() {
        assert_eq!(parse_backend_spec("serial"), Ok(BackendSpec::Serial));
        assert_eq!(parse_backend_spec("sharded"), Ok(BackendSpec::Sharded(4)));
        assert_eq!(parse_backend_spec("sharded:7"), Ok(BackendSpec::Sharded(7)));
        assert_eq!(
            parse_backend_spec("multigpu:2"),
            Ok(BackendSpec::MultiGpu(2))
        );
        assert_eq!(
            parse_backend_spec("multigpu:2").unwrap().label(),
            "multigpu:2"
        );
        assert_eq!(
            parse_backend_spec("pipelined:4"),
            Ok(BackendSpec::Pipelined(4))
        );
        assert_eq!(
            parse_backend_spec("pipelined:4").unwrap().label(),
            "pipelined:4"
        );
        assert!(parse_backend_spec("sharded:0").is_err());
        assert!(parse_backend_spec("multigpu:0").is_err());
        assert!(parse_backend_spec("pipelined:0").is_err());
        assert!(parse_backend_spec("pipelined").is_err());
        assert!(parse_backend_spec("gpu").is_err());
    }

    #[test]
    fn backend_specs_configure_engine_configs() {
        let sharded = BackendSpec::Sharded(4).configure(EngineConfig::default());
        assert_eq!(sharded.shard_count, 4);
        assert!(sharded.device_topology.is_none());
        let multi = BackendSpec::MultiGpu(2).configure(EngineConfig::default());
        let topology = multi.device_topology.expect("topology installed");
        assert_eq!(topology.device_count().get(), 2);
        assert_eq!(topology.link().name, "NVLink-like");
        assert_eq!(BackendSpec::MultiGpu(2).shards(), 2);
        let pipelined = BackendSpec::Pipelined(4).configure(EngineConfig::default());
        assert_eq!(pipelined.pipelined, 4);
        assert_eq!(pipelined.shard_count, 1);
        assert!(pipelined.device_topology.is_none());
        assert_eq!(BackendSpec::Pipelined(4).shards(), 4);
    }

    #[test]
    fn scale_default_and_budget_are_positive() {
        assert!(scale_from_env() > 0.0);
        assert!(vram_budget_bytes(0.35) > 1 << 20);
        let d = gpulog_device(0.35);
        assert!(d.profile().memory_capacity_bytes < 1 << 30);
    }
}
