//! Table 5 — GPUlog running times across GPU vendors and models (NVIDIA
//! H100 / A100, AMD MI250 / MI50), using the analytic cost model to convert
//! the recorded device work into per-profile modeled time.

use gpulog::{EbmConfig, EngineConfig};
use gpulog_bench::{banner, scale_from_env, TextTable};
use gpulog_datasets::cspa::{httpd_like, linux_like, postgres_like};
use gpulog_datasets::PaperDataset;
use gpulog_device::{CostModel, Device, DeviceProfile};
use gpulog_queries::{cspa, sg};

/// Runs a workload once on a reference device and reports the modeled time
/// under each profile. The AMD profiles model the HIP backend, which lacks
/// the pooled allocator (EBM off), matching the paper's Section 6.6 setup.
fn modeled_times(
    run: impl Fn(&Device, EngineConfig) -> gpulog_device::CounterSnapshot,
) -> Vec<f64> {
    let mut out = Vec::new();
    for profile in DeviceProfile::paper_gpus() {
        let is_amd = profile.name.starts_with("AMD");
        let device = Device::new(profile.clone());
        let mut cfg = EngineConfig::default();
        if is_amd {
            cfg.ebm = EbmConfig::disabled();
        }
        let work = run(&device, cfg);
        out.push(CostModel::new(profile).estimate(&work).total_sec());
    }
    out
}

fn main() {
    let scale = scale_from_env();
    banner(
        "Table 5: GPUlog across GPU models (modeled device time)",
        scale,
    );
    let cspa_scale = scale / 400.0;

    let mut table = TextTable::new([
        "Query",
        "Dataset",
        "H100 (s)",
        "A100 (s)",
        "MI250 (s)",
        "MI50 (s)",
    ]);

    for dataset in [
        PaperDataset::FeBody,
        PaperDataset::LocBrightkite,
        PaperDataset::FeSphere,
    ] {
        let graph = dataset.generate(scale);
        let times = modeled_times(|device, cfg| {
            let before = device.metrics().snapshot();
            sg::run(device, &graph, cfg).expect("sg run");
            device.metrics().snapshot().since(&before)
        });
        table.row([
            "SG".to_string(),
            dataset.paper_name().to_string(),
            format!("{:.4}", times[0]),
            format!("{:.4}", times[1]),
            format!("{:.4}", times[2]),
            format!("{:.4}", times[3]),
        ]);
    }

    for (name, input) in [
        ("httpd", httpd_like(cspa_scale)),
        ("linux", linux_like(cspa_scale)),
        ("postgres", postgres_like(cspa_scale)),
    ] {
        let times = modeled_times(|device, cfg| {
            let before = device.metrics().snapshot();
            cspa::run(device, &input, cfg).expect("cspa run");
            device.metrics().snapshot().since(&before)
        });
        table.row([
            "CSPA".to_string(),
            name.to_string(),
            format!("{:.4}", times[0]),
            format!("{:.4}", times[1]),
            format!("{:.4}", times[2]),
            format!("{:.4}", times[3]),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape (paper Table 5): H100 < A100 < MI250 < MI50 on every");
    println!("row, with the MI250 roughly half the A100's speed (single-chiplet use");
    println!("plus no pooled allocator) and the MI50 roughly half the MI250's.");
}
