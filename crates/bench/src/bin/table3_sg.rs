//! Table 3 — Same Generation (SG) execution-time comparison: GPUlog (CUDA,
//! modeled H100), GPUlog-HIP (modeled MI250 without the pooled allocator),
//! Soufflé-like, and cuDF-like.

use gpulog::{EbmConfig, EngineConfig};
use gpulog_baselines::{cudf_like, souffle_like};
use gpulog_bench::{
    backend_from_args, banner, gpulog_device, scale_from_env, speedup, vram_budget_bytes, TextTable,
};
use gpulog_datasets::PaperDataset;
use gpulog_device::{Device, DeviceProfile};
use gpulog_queries::sg;

fn main() {
    let scale = scale_from_env();
    let backend = backend_from_args();
    banner(
        "Table 3: SG — GPUlog vs GPUlog-HIP vs Souffle-like vs cuDF-like",
        scale,
    );
    println!("(GPUlog backend: {})", backend.label());
    let budget = vram_budget_bytes(scale);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut table = TextTable::new([
        "Dataset",
        "SG tuples",
        "GPUlog H100 (s, modeled)",
        "GPUlog (s, host wall)",
        "GPUlog-HIP MI250 (s, modeled)",
        "Souffle-like (s)",
        "cuDF-like (s)",
        "GPUlog vs Souffle",
    ]);

    for dataset in PaperDataset::table3() {
        let graph = dataset.generate(scale);

        // CUDA-like configuration: H100 profile, pooled allocation (EBM on).
        let cuda_device = gpulog_device(scale);
        let cuda = sg::prepare(
            &cuda_device,
            &graph,
            backend.configure(EngineConfig::default()),
        )
        .and_then(|mut engine| engine.run().map(|stats| (engine, stats)));
        let (cuda_cell, cuda_wall_cell, cuda_modeled, sg_size) = match &cuda {
            Ok((engine, stats)) => {
                // Sanity-check the export path over borrowed rows (no
                // per-row `Vec<u32>` clones) against the indexed count.
                assert_eq!(
                    engine
                        .relation_tuples_iter("SG")
                        .map(Iterator::count)
                        .unwrap_or(0),
                    engine.relation_size("SG").unwrap_or(0)
                );
                (
                    format!("{:.4}", stats.modeled_seconds()),
                    format!("{:.3}", stats.wall_seconds),
                    stats.modeled_seconds(),
                    engine.relation_size("SG").unwrap_or(0),
                )
            }
            Err(_) => ("OOM".to_string(), "OOM".to_string(), f64::NAN, 0),
        };

        // HIP configuration: MI250 profile and no pooled allocator (the paper
        // notes ROCm lacks RMM, so its HIP backend allocates exactly). Its
        // column is the modeled device time on that profile.
        let mut hip_profile = DeviceProfile::amd_mi250();
        hip_profile.memory_capacity_bytes = budget;
        let hip_device = Device::new(hip_profile);
        let hip_cfg = backend.configure(EngineConfig::new().with_ebm(EbmConfig::disabled()));
        let hip_cell = match sg::run(&hip_device, &graph, hip_cfg) {
            Ok(r) => format!("{:.3}", r.stats.modeled_seconds()),
            Err(_) => "OOM".to_string(),
        };

        let souffle = souffle_like::sg(&graph, workers);
        let cudf = cudf_like::sg(&graph, budget);

        table.row([
            dataset.paper_name().to_string(),
            format!("{sg_size}"),
            cuda_cell,
            cuda_wall_cell,
            hip_cell,
            souffle.cell(),
            cudf.cell(),
            match souffle.seconds() {
                Some(s) if cuda_modeled.is_finite() => speedup(s, cuda_modeled),
                _ => "-".to_string(),
            },
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape (paper Table 3): GPUlog fastest and never OOM; the HIP");
    println!("build roughly 2-4x slower than CUDA; cuDF-like OOM on the larger");
    println!("graphs and slower than Souffle-like when it finishes.");
}
