//! Table 4 — Context-Sensitive Program Analysis (CSPA): input/output
//! relation sizes and GPUlog vs Soufflé-like execution time with speedups.

use gpulog::EngineConfig;
use gpulog_baselines::souffle_like;
use gpulog_bench::{banner, gpulog_device, scale_from_env, speedup, TextTable};
use gpulog_datasets::cspa::{httpd_like, linux_like, postgres_like};
use gpulog_queries::cspa;

fn main() {
    let scale = scale_from_env();
    banner("Table 4: CSPA — GPUlog vs Souffle-like", scale);
    // The paper's CSPA inputs are fixed-size Graspan extractions; the
    // synthetic stand-ins scale them down by a constant factor adjusted by
    // GPULOG_SCALE.
    let cspa_scale = scale / 400.0;
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let inputs = [
        ("Httpd", httpd_like(cspa_scale)),
        ("Linux", linux_like(cspa_scale)),
        ("PostgreSQL", postgres_like(cspa_scale)),
    ];

    let mut table = TextTable::new([
        "Dataset",
        "Assign",
        "Dereference",
        "ValueFlow",
        "ValueAlias",
        "MemAlias",
        "GPUlog H100 (s, modeled)",
        "GPUlog (s, host wall)",
        "Souffle-like (s)",
        "Speedup",
    ]);

    for (name, input) in &inputs {
        let device = gpulog_device(scale);
        let gpulog_result =
            cspa::run(&device, input, EngineConfig::default()).expect("gpulog cspa");
        let (souffle_outcome, souffle_sizes) = souffle_like::cspa(input, workers);
        // Cross-check: both engines must derive the same relation sizes, as
        // the paper notes "All relation sizes match that of Souffle's".
        let agree = gpulog_result.sizes.value_flow == souffle_sizes.value_flow
            && gpulog_result.sizes.value_alias == souffle_sizes.value_alias
            && gpulog_result.sizes.memory_alias == souffle_sizes.memory_alias;
        table.row([
            format!("{name}{}", if agree { "" } else { " (MISMATCH!)" }),
            format!("{:.2e}", input.assign_len() as f64),
            format!("{:.2e}", input.dereference_len() as f64),
            format!("{:.2e}", gpulog_result.sizes.value_flow as f64),
            format!("{:.2e}", gpulog_result.sizes.value_alias as f64),
            format!("{:.2e}", gpulog_result.sizes.memory_alias as f64),
            format!("{:.4}", gpulog_result.stats.modeled_seconds()),
            format!("{:.3}", gpulog_result.stats.wall_seconds),
            souffle_outcome.cell(),
            match souffle_outcome.seconds() {
                Some(s) => speedup(s, gpulog_result.stats.modeled_seconds()),
                None => "-".to_string(),
            },
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape (paper Table 4): output sizes match Souffle exactly;");
    println!("GPUlog wins on every dataset (the paper reports 34-45x on real GPUs;");
    println!("on the simulated device the ratio is smaller but the ordering holds).");
}
