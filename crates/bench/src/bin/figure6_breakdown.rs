//! Figure 6 — Running-time breakdown of the CSPA query into the phases
//! Deduplication, Indexing Delta, Indexing Full, Merge Delta/Full, and Join.

use gpulog::{EngineConfig, Phase};
use gpulog_bench::{banner, gpulog_device, scale_from_env, TextTable};
use gpulog_datasets::cspa::{httpd_like, linux_like, postgres_like};
use gpulog_queries::cspa;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 6: CSPA phase breakdown (percent of run time)",
        scale,
    );
    let cspa_scale = scale / 400.0;

    let mut table = TextTable::new([
        "Dataset",
        "Deduplication %",
        "Indexing Delta %",
        "Indexing Full %",
        "Merge Delta/Full %",
        "Join %",
        "Other %",
    ]);

    for (name, input) in [
        ("Httpd", httpd_like(cspa_scale)),
        ("Linux", linux_like(cspa_scale)),
        ("PostgreSQL", postgres_like(cspa_scale)),
    ] {
        let device = gpulog_device(scale);
        let result = cspa::run(&device, &input, EngineConfig::default()).expect("cspa run");
        let s = &result.stats;
        table.row([
            name.to_string(),
            format!("{:.1}", s.phase_percent(Phase::Deduplication)),
            format!("{:.1}", s.phase_percent(Phase::IndexDelta)),
            format!("{:.1}", s.phase_percent(Phase::IndexFull)),
            format!("{:.1}", s.phase_percent(Phase::Merge)),
            format!("{:.1}", s.phase_percent(Phase::Join)),
            format!("{:.1}", s.phase_percent(Phase::Other)),
        ]);

        // Also print the stacked-bar view for a closer visual match with the
        // paper's figure.
        let mut bar = String::new();
        for phase in Phase::all() {
            let blocks = (s.phase_percent(phase) / 2.0).round() as usize;
            let ch = match phase {
                Phase::Deduplication => 'D',
                Phase::IndexDelta => 'd',
                Phase::IndexFull => 'F',
                Phase::Merge => 'M',
                Phase::Join => 'J',
                Phase::Other => '.',
            };
            bar.extend(std::iter::repeat_n(ch, blocks));
        }
        println!("{name:>12} |{bar}|");
    }
    println!();
    println!("{}", table.render());
    println!("Legend: D=Deduplication d=Indexing Delta F=Indexing Full M=Merge J=Join");
    println!("Expected shape (paper Figure 6): Join and Merge dominate (roughly 40%");
    println!("each on the real GPU), with indexing and deduplication sharing the rest.");
}
