//! CI serve smoke: measures the concurrent serving layer. A REACH fixpoint
//! is materialized and published through a [`gpulog_serve::ServeWriter`];
//! then, for every reader count N ∈ {1, 2, 4, 8}, N reader threads hammer
//! point lookups against the latest snapshot for a fixed window — once with
//! the writer idle and once with a writer thread concurrently staging fresh
//! edges and re-running the engine to publish new generations. A
//! goal-directed leg rides along: before the sweep the writer answers a
//! magic-sets point query (`ServeWriter::goal_query`) and its canonical
//! answers must match the snapshot's `goal_lookup` for the same bindings;
//! then a `mode: "goal"` reader leg hammers `goal_lookup` with *non-prefix*
//! bindings (`Reach(_, target)`), the shape the sorted-prefix point lookup
//! cannot serve. Each leg reports queries/sec and p50/p99 per-query latency
//! into a `bench_smoke.json`-style artifact.
//!
//! ```text
//! cargo run --release -p gpulog-bench --bin serve_smoke -- \
//!     [--out serve_smoke.json] [--leg-ms 200]
//! cargo run --release -p gpulog-bench --bin serve_smoke -- --check serve_smoke.json
//! ```
//!
//! The binary gates on the ISSUE's starvation bound: at 4 readers, the
//! with-writer throughput must stay at or above
//! `GPULOG_SERVE_MIN_RATIO` (default 0.5) of the no-writer throughput —
//! readers clone an `Arc` under a read lock and then run lock-free, so the
//! writer's long re-run must never starve them.

use gpulog::EngineConfig;
use gpulog_bench::{banner, gpulog_device, scale_from_env, TextTable};
use gpulog_datasets::generators::road_network;
use gpulog_hisa::TupleBatch;
use gpulog_queries::reach;
use gpulog_serve::{ServeHandle, ServeWriter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ServeRow {
    /// `"point"` (sorted-prefix `point_lookup`) or `"goal"` (arbitrary
    /// bound/free bindings through `goal_lookup`).
    mode: &'static str,
    readers: usize,
    with_writer: bool,
    queries: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    /// Fixpoint generations published while the leg ran (1 = the initial
    /// fixpoint, i.e. the writer was idle).
    generations: u64,
}

fn usize_flag(args: &[String], flag: &str, default: usize) -> usize {
    match args.iter().position(|a| a == flag) {
        None => default,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("{flag} needs a positive integer, got {:?}", args.get(i + 1));
                std::process::exit(2);
            }
        },
    }
}

fn string_flag(args: &[String], flag: &str, default: &str) -> String {
    match args.iter().position(|a| a == flag) {
        None => default.to_string(),
        Some(i) => match args.get(i + 1) {
            Some(value) => value.clone(),
            None => {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            }
        },
    }
}

const ROW_KEYS: [&str; 8] = [
    "\"mode\"",
    "\"readers\"",
    "\"with_writer\"",
    "\"queries\"",
    "\"qps\"",
    "\"p50_us\"",
    "\"p99_us\"",
    "\"generations\"",
];

/// Validates the artifact's schema the same dependency-free way
/// `bench_smoke` does: one result object per line, every row carrying
/// every required key.
fn validate_schema(json: &str) -> Result<(), String> {
    for key in ["\"scale\"", "\"leg_ms\"", "\"host_workers\"", "\"results\""] {
        if !json.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    let rows: Vec<&str> = json.lines().filter(|l| l.contains("\"readers\"")).collect();
    if rows.is_empty() {
        return Err("no result rows".to_string());
    }
    for mode in ["point", "goal"] {
        let key = format!("\"mode\": \"{mode}\"");
        if !rows.iter().any(|row| row.contains(&key)) {
            return Err(format!("no result row for mode {mode}"));
        }
    }
    for row in rows {
        for key in ROW_KEYS {
            if !row.contains(key) {
                return Err(format!("result row missing {key}: {row}"));
            }
        }
    }
    Ok(())
}

fn percentile_us(sorted_ns: &[u64], fraction: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * fraction).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Runs one leg: `readers` threads issue lookups for `window`, recording
/// per-query latency. `goal` legs probe `goal_lookup` with the *second*
/// column bound (`Reach(_, target)`), which the sorted-prefix point lookup
/// cannot answer; point legs keep the original `point_lookup` path.
/// Returns (latencies ns, total queries).
fn run_leg(
    handle: &ServeHandle,
    readers: usize,
    id_bound: u32,
    window: Duration,
    goal: bool,
) -> (Vec<u64>, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..readers)
        .map(|reader| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut latencies: Vec<u64> = Vec::with_capacity(4096);
                // Per-reader LCG so threads probe different keys without a
                // shared RNG serializing them.
                let mut state = 0x9e37_79b9u64.wrapping_mul(reader as u64 + 1) | 1;
                while !stop.load(Ordering::Relaxed) {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = ((state >> 33) as u32) % id_bound.max(1);
                    let t = Instant::now();
                    if goal {
                        let rows = handle
                            .goal_lookup("Reach", &[None, Some(key)])
                            .expect("Reach is a known relation");
                        latencies.push(t.elapsed().as_nanos() as u64);
                        assert!(
                            rows.iter().all(|row| row[1] == key),
                            "goal lookup returned a row that violates its binding"
                        );
                    } else {
                        let rows = handle
                            .point_lookup("Reach", &[key])
                            .expect("Reach is a known relation");
                        let probe = rows.first().cloned().unwrap_or_default();
                        let hit = handle.contains("Reach", &probe);
                        latencies.push(t.elapsed().as_nanos() as u64);
                        assert!(rows.is_empty() || hit, "lookup row missing from snapshot");
                    }
                }
                latencies
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut all: Vec<u64> = Vec::new();
    for t in threads {
        all.extend(t.join().expect("reader thread panicked"));
    }
    let queries = all.len() as u64;
    (all, queries)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--check needs a path to an artifact");
            std::process::exit(2);
        });
        let json = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            eprintln!("cannot read {path}: {err}");
            std::process::exit(1);
        });
        match validate_schema(&json) {
            Ok(()) => {
                println!("{path}: schema ok");
                return;
            }
            Err(err) => {
                eprintln!("{path}: schema violation: {err}");
                std::process::exit(1);
            }
        }
    }
    let leg_ms = usize_flag(&args, "--leg-ms", 200);
    let out_path = string_flag(&args, "--out", "serve_smoke.json");
    let scale = scale_from_env();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let min_ratio: f64 = std::env::var("GPULOG_SERVE_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);

    banner(
        "serve smoke — snapshot readers vs a concurrent fixpoint writer",
        scale,
    );
    println!("(leg window {leg_ms} ms, host workers {workers}, gate ratio {min_ratio})");

    // A bidirectional chain keeps the closure quadratic-but-bounded and the
    // re-run convergent in a couple of iterations, so writer refreshes are
    // substantial (they re-seed and re-join the whole fixpoint) without
    // dominating the whole leg.
    let chain_nodes = ((400.0 * scale).round() as u32).max(48);
    let graph = road_network(chain_nodes, 0, 23);
    let id_bound = graph.id_bound();
    let device = gpulog_device(scale);
    let engine = reach::prepare(&device, &graph, EngineConfig::default()).expect("prepare failed");
    let mut writer = ServeWriter::new(engine).expect("initial fixpoint failed");
    let handle = writer.handle();
    let base_size = handle.relation_size("Reach").expect("Reach exists");
    println!("initial fixpoint: {chain_nodes}-node chain, |Reach| = {base_size}");

    // Goal-directed probe: the writer's magic-sets point query must agree,
    // byte for byte, with the published snapshot's goal_lookup for the same
    // bindings — the demand-driven path and the materialized closure are
    // two routes to the same answers. (No materialization gate here: the
    // serving program is the *right-recursive* closure, whose bf-demand
    // cone on a connected chain is the whole graph; the fewer-tuples gate
    // lives in bench_smoke's left-recursive `reach-goal` row.)
    let goal_source = chain_nodes / 2;
    let magic = writer
        .goal_query("Reach", &[Some(goal_source), None])
        .expect("goal query failed");
    let snapshot_rows: Vec<u32> = handle
        .goal_lookup("Reach", &[Some(goal_source), None])
        .expect("Reach is a known relation")
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(
        magic.answers.as_flat(),
        &snapshot_rows[..],
        "magic-sets answers diverge from the snapshot's goal lookup"
    );
    println!(
        "goal probe: ?- Reach({goal_source}, y) -> {} answers \
         ({} tuples materialized vs |Reach| = {base_size})",
        magic.answers.len(),
        magic.tuples_materialized
    );

    let window = Duration::from_millis(leg_ms as u64);
    let mut rows: Vec<ServeRow> = Vec::new();
    // The goal-directed leg runs at a single reader count: it shares the
    // starvation machinery but its gate is answer correctness, not the
    // reader-scaling curve.
    let legs: [(&'static str, &[usize]); 2] = [("point", &[1, 2, 4, 8]), ("goal", &[4])];
    for &(mode, reader_counts) in &legs {
        for &with_writer in &[false, true] {
            for &readers in reader_counts {
                let gen_before = handle.generation();
                let (mut latencies, queries) = if with_writer {
                    // The writer owns `writer` for the leg: stage a batch of
                    // isolated fresh edges (cheap closure growth, real re-run
                    // work) and publish, repeatedly, until the leg ends.
                    let stop = Arc::new(AtomicBool::new(false));
                    let stop_writer = Arc::clone(&stop);
                    let mut fresh = id_bound + 1_000_000 * (readers as u32);
                    std::thread::scope(|scope| {
                        let writer = &mut writer;
                        scope.spawn(move || {
                            while !stop_writer.load(Ordering::Relaxed) {
                                let edges: Vec<[u32; 2]> =
                                    (0..8).map(|i| [fresh + 2 * i, fresh + 2 * i + 1]).collect();
                                fresh += 16;
                                writer
                                    .insert_facts_batch("Edge", &TupleBatch::from_rows(2, edges))
                                    .expect("staging fresh edges failed");
                                writer.refresh().expect("refresh failed");
                            }
                        });
                        let out = run_leg(&handle, readers, id_bound, window, mode == "goal");
                        stop.store(true, Ordering::Relaxed);
                        out
                    })
                } else {
                    run_leg(&handle, readers, id_bound, window, mode == "goal")
                };
                latencies.sort_unstable();
                let qps = queries as f64 / window.as_secs_f64();
                rows.push(ServeRow {
                    mode,
                    readers,
                    with_writer,
                    queries,
                    qps,
                    p50_us: percentile_us(&latencies, 0.50),
                    p99_us: percentile_us(&latencies, 0.99),
                    generations: handle.generation() - gen_before + 1,
                });
                if with_writer {
                    assert!(
                        handle.generation() > gen_before,
                        "the writer leg must publish at least one new generation"
                    );
                }
            }
        }
    }

    let mut table = TextTable::new([
        "Mode",
        "Readers",
        "Writer",
        "Queries",
        "QPS",
        "p50 (us)",
        "p99 (us)",
        "Generations",
    ]);
    for row in &rows {
        table.row([
            row.mode.to_string(),
            format!("{}", row.readers),
            if row.with_writer { "yes" } else { "no" }.to_string(),
            format!("{}", row.queries),
            format!("{:.0}", row.qps),
            format!("{:.1}", row.p50_us),
            format!("{:.1}", row.p99_us),
            format!("{}", row.generations),
        ]);
    }
    println!("{}", table.render());

    // The starvation gate: a concurrent writer re-running the engine must
    // not cost 4 readers more than (1 - min_ratio) of their throughput.
    let qps_at = |readers: usize, with_writer: bool| {
        rows.iter()
            .find(|r| r.mode == "point" && r.readers == readers && r.with_writer == with_writer)
            .map(|r| r.qps)
            .expect("every leg ran")
    };
    let (quiet, busy) = (qps_at(4, false), qps_at(4, true));
    println!(
        "4-reader throughput: {busy:.0} qps with writer vs {quiet:.0} qps without \
         ({:.2}x, gate {min_ratio})",
        busy / quiet
    );
    assert!(
        busy >= min_ratio * quiet,
        "readers starved: {busy:.0} qps with a concurrent writer vs {quiet:.0} without \
         (ratio {:.2} < {min_ratio})",
        busy / quiet
    );
    // Every leg must have measured real traffic.
    assert!(
        rows.iter().all(|r| r.queries > 0),
        "a leg recorded zero queries"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"leg_ms\": {leg_ms},\n"));
    json.push_str(&format!("  \"host_workers\": {workers},\n"));
    json.push_str(&format!("  \"chain_nodes\": {chain_nodes},\n"));
    json.push_str(&format!("  \"initial_reach_tuples\": {base_size},\n"));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"readers\": {}, \"with_writer\": {}, \
             \"queries\": {}, \"qps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"generations\": {}}}{}\n",
            row.mode,
            row.readers,
            row.with_writer,
            row.queries,
            row.qps,
            row.p50_us,
            row.p99_us,
            row.generations,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    validate_schema(&json).expect("generated artifact must satisfy its own schema");
    std::fs::write(&out_path, &json).expect("failed to write the serve smoke artifact");
    println!("wrote {out_path}");
}
