//! Table 6 — The most time-consuming primitive operations (sort, merge, and
//! buffer allocation/initialization) compared between a GPU (modeled A100)
//! and a CPU (modeled EPYC Zen 3), over randomly generated 2-arity tuples.
//!
//! The paper runs 100 repetitions per size on real hardware; here each size
//! is executed once on the simulated device and the recorded work is
//! converted to modeled time under both profiles (and multiplied by the
//! repetition count), which preserves the GPU-vs-CPU ratios the paper
//! derives from memory bandwidth.

use gpulog_bench::{banner, scale_from_env, TextTable};
use gpulog_device::thrust::merge::merge_path_merge;
use gpulog_device::thrust::sort::lexicographic_sort_indices;
use gpulog_device::{CostModel, Device, DeviceProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const REPETITIONS: f64 = 100.0;

fn random_tuples(rows: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..rows * 2).map(|_| rng.gen_range(0..1_000_000)).collect()
}

fn main() {
    let scale = scale_from_env();
    banner(
        "Table 6: sort / merge / allocation — GPU (A100) vs CPU (Zen 3)",
        scale,
    );
    // The paper sweeps 1e6 .. 5e8 tuples; the simulated sweep uses the same
    // geometric shape scaled down so the largest size stays laptop-friendly.
    let sizes: Vec<usize> = [
        1_000_000usize,
        10_000_000,
        50_000_000,
        100_000_000,
        500_000_000,
    ]
    .iter()
    .map(|&n| ((n as f64 * scale / 100.0) as usize).max(10_000))
    .collect();

    let gpu_model = CostModel::new(DeviceProfile::nvidia_a100());
    let cpu_model = CostModel::new(DeviceProfile::amd_epyc_7543p());

    let mut table = TextTable::new([
        "# Tuples",
        "Sort A100 (s)",
        "Sort Zen3 (s)",
        "Merge A100 (s)",
        "Merge Zen3 (s)",
        "Alloc A100 (s)",
        "Alloc Zen3 (s)",
    ]);

    for &rows in &sizes {
        let device = Device::new(DeviceProfile::nvidia_a100());
        let data = random_tuples(rows, rows as u64);

        // Sort.
        let before = device.metrics().snapshot();
        let sorted = lexicographic_sort_indices(&device, &data, 2, &[0, 1]);
        let sort_work = device.metrics().snapshot().since(&before);

        // Merge two sorted halves.
        let half = sorted.len() / 2;
        let (a, b) = sorted.split_at(half);
        let mut a = a.to_vec();
        let mut b = b.to_vec();
        let key = |i: &u32| {
            let r = *i as usize * 2;
            (data[r], data[r + 1])
        };
        a.sort_by_key(key);
        b.sort_by_key(key);
        let before = device.metrics().snapshot();
        let merged = merge_path_merge(&device, &a, &b, |x, y| key(x).cmp(&key(y)));
        let merge_work = device.metrics().snapshot().since(&before);
        assert_eq!(merged.len(), sorted.len());

        // Buffer allocation + initialization.
        let before = device.metrics().snapshot();
        let buf = device.buffer_filled(rows * 2, 0u32).expect("allocation");
        let alloc_work = device.metrics().snapshot().since(&before);
        drop(buf);

        table.row([
            format!("{rows}"),
            format!(
                "{:.4}",
                gpu_model.estimate(&sort_work).total_sec() * REPETITIONS
            ),
            format!(
                "{:.4}",
                cpu_model.estimate(&sort_work).total_sec() * REPETITIONS
            ),
            format!(
                "{:.4}",
                gpu_model.estimate(&merge_work).total_sec() * REPETITIONS
            ),
            format!(
                "{:.4}",
                cpu_model.estimate(&merge_work).total_sec() * REPETITIONS
            ),
            format!(
                "{:.4}",
                gpu_model.estimate(&alloc_work).total_sec() * REPETITIONS
            ),
            format!(
                "{:.4}",
                cpu_model.estimate(&alloc_work).total_sec() * REPETITIONS
            ),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape (paper Table 6): the GPU column is roughly 10-20x");
    println!("faster than the CPU column for sort and merge at every size, with");
    println!("the gap tracking the memory-bandwidth ratio of the two devices.");
}
