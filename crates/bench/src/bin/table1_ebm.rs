//! Table 1 — Comparing runtime and memory usage of REACH with and without
//! eager buffer management.
//!
//! Columns match the paper: dataset, total iterations, tail iterations,
//! query time with EBM disabled ("Normal") and enabled ("Eager"), and peak
//! device memory for both configurations.

use gpulog::{EbmConfig, EngineConfig};
use gpulog_bench::{banner, gpulog_device, scale_from_env, TextTable};
use gpulog_datasets::PaperDataset;
use gpulog_queries::reach;

fn main() {
    let scale = scale_from_env();
    banner(
        "Table 1: REACH with vs. without eager buffer management",
        scale,
    );
    let mut table = TextTable::new([
        "Dataset",
        "Iter total",
        "Iter tail",
        "Time Normal (s)",
        "Time Eager (s)",
        "Mem Normal (MB)",
        "Mem Eager (MB)",
    ]);

    for dataset in PaperDataset::table1() {
        let graph = dataset.generate(scale);

        let normal_cfg = EngineConfig::new().with_ebm(EbmConfig::disabled());
        let normal_device = gpulog_device(scale);
        let normal = reach::run(&normal_device, &graph, normal_cfg).expect("normal run");

        let eager_cfg = EngineConfig::new().with_ebm(EbmConfig::with_growth_factor(8.0));
        let eager_device = gpulog_device(scale);
        let eager = reach::run(&eager_device, &graph, eager_cfg).expect("eager run");

        let tail = eager.stats.tail_iterations(eager.reach_size, 0.01);
        // The paper reports modeled-device-comparable query time; on the
        // simulated device the wall clock and the modeled time move
        // together, and the allocation-overhead component is what EBM
        // removes, so the modeled time is the faithful column here.
        let normal_time = normal.stats.modeled_seconds();
        let eager_time = eager.stats.modeled_seconds();
        table.row([
            dataset.paper_name().to_string(),
            format!("{}", eager.stats.iterations),
            if tail == 0 {
                "/".to_string()
            } else {
                format!("{tail}")
            },
            format!("{normal_time:.4}"),
            format!("{eager_time:.4}"),
            format!("{:.2}", normal.stats.peak_device_bytes as f64 / 1e6),
            format!("{:.2}", eager.stats.peak_device_bytes as f64 / 1e6),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape (paper Table 1): Eager is faster on every dataset,");
    println!("with the largest gains on long-tail road/mesh graphs, at the cost");
    println!("of a ~1.3-1.4x larger memory footprint.");
}
