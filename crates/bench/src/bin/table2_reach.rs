//! Table 2 — Reachability execution-time comparison: GPUlog vs Soufflé-like
//! vs GPUJoin-like vs cuDF-like (OOM rows included).

use gpulog::EngineConfig;
use gpulog_baselines::{cudf_like, gpujoin_like, souffle_like};
use gpulog_bench::{
    backend_from_args, banner, gpulog_device, scale_from_env, speedup, vram_budget_bytes, TextTable,
};
use gpulog_datasets::PaperDataset;
use gpulog_queries::reach;

fn main() {
    let scale = scale_from_env();
    let backend = backend_from_args();
    banner(
        "Table 2: REACH — GPUlog vs Souffle-like, GPUJoin-like, cuDF-like",
        scale,
    );
    println!("(GPUlog backend: {})", backend.label());
    let config = backend.configure(EngineConfig::default());
    let budget = vram_budget_bytes(scale);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut table = TextTable::new([
        "Dataset",
        "Edges",
        "Reach tuples",
        "Reach checksum",
        "GPUlog H100 (s, modeled)",
        "GPUlog (s, host wall)",
        "Souffle-like (s)",
        "GPUJoin-like (s)",
        "cuDF-like (s)",
        "GPUlog vs Souffle",
    ]);

    for dataset in PaperDataset::table2() {
        let graph = dataset.generate(scale);
        let device = gpulog_device(scale);
        let gpulog_result = reach::prepare(&device, &graph, config.clone())
            .and_then(|mut engine| engine.run().map(|stats| (engine, stats)));
        let (modeled_cell, wall_cell, modeled, reach_size, checksum_cell) = match &gpulog_result {
            Ok((engine, stats)) => (
                format!("{:.4}", stats.modeled_seconds()),
                format!("{:.3}", stats.wall_seconds),
                stats.modeled_seconds(),
                engine.relation_size("Reach").unwrap_or(0),
                // Fold the checksum over borrowed row slices — no per-row
                // `Vec<u32>` clones for a relation with millions of tuples.
                format!(
                    "{:08x}",
                    engine
                        .relation_tuples_iter("Reach")
                        .into_iter()
                        .flatten()
                        .fold(0u32, |acc, row| row
                            .iter()
                            .fold(acc, |a, &v| a.rotate_left(5) ^ v))
                ),
            ),
            Err(_) => (
                "OOM".to_string(),
                "OOM".to_string(),
                f64::NAN,
                0,
                "-".to_string(),
            ),
        };
        let souffle = souffle_like::reach(&graph, workers);
        let gpujoin = gpujoin_like::reach(&graph, budget);
        let cudf = cudf_like::reach(&graph, budget);

        table.row([
            dataset.paper_name().to_string(),
            format!("{}", graph.len()),
            format!("{reach_size}"),
            checksum_cell,
            modeled_cell,
            wall_cell,
            souffle.cell(),
            gpujoin.cell(),
            cudf.cell(),
            match souffle.seconds() {
                Some(s) if modeled.is_finite() => speedup(s, modeled),
                _ => "-".to_string(),
            },
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape (paper Table 2): GPUlog fastest everywhere; GPUJoin-like");
    println!("slower and OOM on the largest graphs; cuDF-like OOM on most datasets;");
    println!("all engines that finish agree on the Reach tuple counts.");
}
