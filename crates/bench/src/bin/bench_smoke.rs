//! CI bench smoke: runs the Table 2 REACH workload (Gnutella31), the
//! Table 3 SG workload (ego-Facebook), a merge-heavy long-chain REACH
//! (one iteration per node, tiny deltas — the incremental index-maintenance
//! hot path), and the two stratified workloads on hub graphs — a
//! CSPA-style negated-filter REACH (`!Blocked` anti-joins) and
//! shortest-path-via-`min` (grouped aggregate reduce) — in every backend — serial, sharded, pipelined (iteration
//! overlap), and the simulated multi-GPU topologies (1 / 2 / 4 NVLink-like
//! devices) — checks that all backends agree on tuple counts, and writes
//! per-backend medians **plus index-maintenance counters, the device phase
//! breakdown, the pipelined overlap counters, and the multi-GPU modeling
//! columns** (per-device modeled time, cross-device exchange bytes, modeled
//! BSP and pipelined critical paths, and speedup) to a JSON artifact so
//! every PR records its perf trajectory. The merge-heavy chain leg doubles
//! as a gate: the pipelined median wall time must beat the sharded median
//! at the same shard count. A goal-directed pair on one hub graph —
//! `reach-goal-full` (the whole closure) vs `reach-goal` (one source's
//! point query through the magic-sets rewrite) — gates the demand-driven
//! path: magic must materialize strictly fewer tuples *and* post a lower
//! median wall than the full closure on every backend.
//!
//! ```text
//! cargo run --release -p gpulog-bench --bin bench_smoke -- \
//!     [--out bench_smoke.json] [--trials 5] [--shards 4] [--workload reach-goal]
//! cargo run --release -p gpulog-bench --bin bench_smoke -- --check bench_smoke.json
//! ```
//!
//! `--workload <name>` runs a single workload locally without the full
//! sweep (naming either half of the goal pair runs both so its gate still
//! holds); cross-workload gates whose rows were filtered out are skipped
//! with a notice, and the artifact's schema self-check then only requires
//! the rows that actually ran. `--check` re-validates an existing artifact
//! against the full schema (used by CI so new fields cannot silently
//! regress).

use gpulog::{EngineConfig, GpulogEngine, TopologyReport};
use gpulog_bench::{banner, gpulog_device, scale_from_env, speedup, BackendSpec, TextTable};
use gpulog_datasets::generators::{hub_graph, road_network};
use gpulog_datasets::{EdgeList, PaperDataset};
use gpulog_queries::{goal, reach, sg, stratified};

struct SmokeRow {
    query: &'static str,
    dataset: String,
    backend: String,
    shards: usize,
    tuples: usize,
    iterations: usize,
    median_wall_s: f64,
    median_modeled_s: f64,
    hash_inserts: u64,
    hash_rebuilds: u64,
    sort_passes: u64,
    sort_ns: u64,
    merge_ns: u64,
    index_ns: u64,
    /// Window during which a background merge was outstanding (pipelined
    /// legs only; 0 elsewhere).
    overlap_ns: u64,
    /// Time spent blocked waiting on a deferred merge (pipelined legs only).
    stall_ns: u64,
    /// Multi-GPU modeling report (topology legs only).
    topology: Option<TopologyReport>,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Reads an integer flag, failing loudly on a malformed value — the
/// artifact must never silently record a configuration other than the one
/// the command line asked for.
fn usize_flag(args: &[String], flag: &str, default: usize) -> usize {
    match args.iter().position(|a| a == flag) {
        None => default,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("{flag} needs a positive integer, got {:?}", args.get(i + 1));
                std::process::exit(2);
            }
        },
    }
}

fn string_flag(args: &[String], flag: &str, default: &str) -> String {
    match args.iter().position(|a| a == flag) {
        None => default.to_string(),
        Some(i) => match args.get(i + 1) {
            Some(value) => value.clone(),
            None => {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            }
        },
    }
}

/// The per-result keys every artifact row must carry, and the additional
/// keys every `multigpu:*` row must carry. CI's schema-assert step (and
/// the self-check after writing) fails if any row drops one, so new
/// topology fields cannot silently regress.
const ROW_KEYS: [&str; 14] = [
    "\"query\"",
    "\"dataset\"",
    "\"backend\"",
    "\"shards\"",
    "\"tuples\"",
    "\"iterations\"",
    "\"median_wall_s\"",
    "\"median_modeled_s\"",
    "\"hash_inserts\"",
    "\"hash_rebuilds\"",
    "\"sort_passes\"",
    "\"phase_nanos\"",
    "\"overlap_nanos\"",
    "\"pipeline_stall_nanos\"",
];
const TOPOLOGY_KEYS: [&str; 7] = [
    "\"link\"",
    "\"devices\"",
    "\"modeled_compute_s\"",
    "\"total_exchange_bytes\"",
    "\"modeled_critical_path_s\"",
    "\"modeled_pipelined_critical_path_s\"",
    "\"modeled_speedup\"",
];

/// The workloads a full-sweep artifact must carry a row for. The
/// stratified legs (`reach-neg`, `sp-min`) and the goal-directed pair
/// (`reach-goal-full`, `reach-goal`) are listed so an artifact produced
/// without them fails the schema gate rather than silently shrinking
/// coverage. Filtered runs (`--workload`) validate against the workloads
/// that actually ran instead.
const REQUIRED_QUERIES: [&str; 7] = [
    "reach",
    "sg",
    "reach-chain",
    "reach-neg",
    "sp-min",
    "reach-goal-full",
    "reach-goal",
];

/// Validates the artifact's schema: the top-level fields, a row for every
/// workload in `required`, every row carrying every required key, and
/// every topology row carrying the multi-GPU modeling fields. The writer
/// emits one result object per line, which is what keeps this check
/// dependency-free.
fn validate_schema(json: &str, required: &[&str]) -> Result<(), String> {
    for key in [
        "\"scale\"",
        "\"trials\"",
        "\"host_workers\"",
        "\"dead_rule_elim\"",
        "\"results\"",
    ] {
        if !json.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    let rows: Vec<&str> = json.lines().filter(|l| l.contains("\"query\"")).collect();
    if rows.is_empty() {
        return Err("no result rows".to_string());
    }
    for query in required {
        let key = format!("\"query\": \"{query}\"");
        if !rows.iter().any(|row| row.contains(&key)) {
            return Err(format!("no result row for workload {query}"));
        }
    }
    for row in rows {
        for key in ROW_KEYS {
            if !row.contains(key) {
                return Err(format!("result row missing {key}: {row}"));
            }
        }
        if row.contains("\"backend\": \"multigpu:") {
            for key in TOPOLOGY_KEYS {
                if !row.contains(key) {
                    return Err(format!("multigpu row missing {key}: {row}"));
                }
            }
        }
    }
    Ok(())
}

fn topology_json(topology: &Option<TopologyReport>) -> String {
    match topology {
        None => "null".to_string(),
        Some(report) => {
            let devices: Vec<String> = report
                .devices
                .iter()
                .map(|lane| {
                    format!(
                        "{{\"device\": \"{}\", \"modeled_compute_s\": {:.9}, \
                         \"exchange_in_bytes\": {}, \"exchange_out_bytes\": {}, \
                         \"exchange_in_messages\": {}}}",
                        lane.device,
                        lane.modeled_compute_sec,
                        lane.exchange_in_bytes,
                        lane.exchange_out_bytes,
                        lane.exchange_in_messages,
                    )
                })
                .collect();
            format!(
                "{{\"link\": \"{}\", \"devices\": [{}], \"total_exchange_bytes\": {}, \
                 \"total_exchange_messages\": {}, \"modeled_critical_path_s\": {:.9}, \
                 \"modeled_pipelined_critical_path_s\": {:.9}, \
                 \"modeled_speedup\": {:.4}}}",
                report.link,
                devices.join(", "),
                report.total_exchange_bytes,
                report.total_exchange_messages,
                report.modeled_critical_path_sec,
                report.modeled_pipelined_critical_path_sec,
                report.modeled_speedup(),
            )
        }
    }
}

/// The crafted dead-rule workload: a REACH closure plus a `Scratch`
/// relation derived *from* the closure that no output, goal, or other rule
/// ever reads. The optimizer's dead-rule elimination must prune the
/// `Scratch` rule, so the optimized run materializes strictly fewer tuples
/// than the unoptimized run while deriving the identical `Reach` closure.
const DEAD_RULE_PROGRAM: &str = r"
.decl Edge(x: number, y: number)
.input Edge
.decl Reach(x: number, y: number)
.output Reach
.decl Scratch(x: number, y: number)
Reach(x, y) :- Edge(x, y).
Reach(x, y) :- Edge(x, z), Reach(z, y).
Scratch(y, x) :- Reach(x, y), Edge(y, x).
";

/// Tuples materialized and closure size of one `DEAD_RULE_PROGRAM` run
/// with optimization on or off: the sum of every non-input relation's
/// fixpoint size (dead `Scratch` tuples included when they exist).
fn dead_rule_run(graph: &EdgeList, scale: f64, optimize: bool) -> (usize, usize) {
    let device = gpulog_device(scale);
    let mut engine = GpulogEngine::builder(&device)
        .program(DEAD_RULE_PROGRAM)
        .optimize(optimize)
        .build()
        .expect("dead-rule workload must build");
    engine
        .add_facts_flat("Edge", &graph.to_flat())
        .expect("dead-rule workload facts must load");
    let stats = engine.run().expect("dead-rule workload must run");
    let materialized: usize = stats
        .relation_sizes
        .iter()
        .filter(|(name, _)| name.as_str() != "Edge")
        .map(|(_, &size)| size)
        .sum();
    (materialized, engine.relation_size("Reach").unwrap_or(0))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let path = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--check needs a path to an artifact");
            std::process::exit(2);
        });
        let json = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            eprintln!("cannot read {path}: {err}");
            std::process::exit(1);
        });
        match validate_schema(&json, &REQUIRED_QUERIES) {
            Ok(()) => {
                println!("{path}: schema ok");
                return;
            }
            Err(err) => {
                eprintln!("{path}: schema violation: {err}");
                std::process::exit(1);
            }
        }
    }
    let trials = usize_flag(&args, "--trials", 5);
    let shards = usize_flag(&args, "--shards", 4);
    let out_path = string_flag(&args, "--out", "bench_smoke.json");
    let workload_filter: Option<String> = args.iter().position(|a| a == "--workload").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--workload needs a workload name");
            std::process::exit(2);
        })
    });
    let scale = scale_from_env();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    banner("bench smoke — serial / sharded / multi-GPU medians", scale);
    println!("(trials {trials}, sharded leg {shards} shards, host workers {workers})");

    let backends = [
        BackendSpec::Serial,
        BackendSpec::Sharded(shards),
        BackendSpec::Pipelined(shards),
        BackendSpec::MultiGpu(1),
        BackendSpec::MultiGpu(2),
        BackendSpec::MultiGpu(4),
    ];
    // The chain length scales like the node counts of the named datasets,
    // so the merge-heavy leg keeps "many iterations, small deltas" at any
    // scale. The multiplier is sized so that at the default scale the
    // O(|full|) streaming merges dominate the leg's wall time: this leg
    // gates the pipelined-vs-sharded comparison below, and on a short
    // chain the merge saving drowns in scheduler noise.
    let chain_nodes = ((1000.0 * scale).round() as u32).max(64);
    // The stratified legs run on hub graphs: a handful of high-degree hubs
    // concentrate the closure, so blocking them (`!Blocked`) genuinely
    // reshapes the fixpoint, and the many hub-mediated alternate routes
    // give the `min` aggregate competing path lengths to reduce over.
    let neg_nodes = ((600.0 * scale).round() as u32).max(48);
    let sp_nodes = ((200.0 * scale).round() as u32).max(24);
    // The goal pair shares one hub graph: everything is mutually reachable
    // there, so the full closure is ~n² pairs while a single source's
    // point query holds ~n answers — the widest possible gap for the
    // magic-vs-full gates. The source is an arbitrary spoke.
    let goal_nodes = ((300.0 * scale).round() as u32).max(32);
    let goal_graph = hub_graph(goal_nodes, 4, 41);
    let goal_source = goal_nodes / 2;
    let mut workloads: Vec<(&'static str, EdgeList)> = vec![
        ("reach", PaperDataset::Gnutella31.generate(scale)),
        ("sg", PaperDataset::EgoFacebook.generate(scale)),
        // Merge-heavy: a pure bidirectional chain runs REACH for one
        // iteration per node with steadily shrinking deltas, which is the
        // workload the incremental hash maintenance (zero rebuilds with
        // EBM headroom) exists for.
        ("reach-chain", road_network(chain_nodes, 0, 23)),
        // Stratified: CSPA-style negated-filter closure (anti-join against
        // a completed stratum) and shortest-path-via-`min` (grouped reduce
        // over the finished PathLen relation).
        ("reach-neg", hub_graph(neg_nodes, 4, 17)),
        ("sp-min", hub_graph(sp_nodes, 3, 29)),
        // Goal-directed pair: the full closure baseline and the
        // magic-rewritten point query `?- Reach(goal_source, y).` on the
        // same graph.
        ("reach-goal-full", goal_graph.clone()),
        ("reach-goal", goal_graph),
    ];
    if let Some(name) = &workload_filter {
        if !workloads.iter().any(|(q, _)| q == name) {
            let known: Vec<&str> = workloads.iter().map(|(q, _)| *q).collect();
            eprintln!(
                "--workload {name}: unknown workload (known: {})",
                known.join(", ")
            );
            std::process::exit(2);
        }
        // Either half of the goal pair pulls in both: its gates compare
        // the two rows on the same graph.
        let keep: Vec<&str> = if name == "reach-goal" || name == "reach-goal-full" {
            vec!["reach-goal-full", "reach-goal"]
        } else {
            vec![name.as_str()]
        };
        workloads.retain(|(q, _)| keep.contains(q));
        println!("workload filter: running only {}", keep.join(", "));
    }

    let mut rows: Vec<SmokeRow> = Vec::new();
    for (query, graph) in &workloads {
        let query = *query;
        let mut tuple_counts: Vec<usize> = Vec::new();
        for spec in &backends {
            let config = spec.configure(EngineConfig::default());
            let mut walls = Vec::with_capacity(trials);
            let mut modeled = Vec::with_capacity(trials);
            let mut tuples = 0usize;
            let mut iterations = 0usize;
            let mut counters = (0u64, 0u64, 0u64);
            let mut phase_ns = (0u64, 0u64, 0u64);
            let mut overlap = (0u64, 0u64);
            let mut topology: Option<TopologyReport> = None;
            for _ in 0..trials {
                let device = gpulog_device(scale);
                let (size, stats) = match query {
                    "sg" => {
                        let r = sg::run(&device, graph, config.clone()).expect("smoke run failed");
                        (r.sg_size, r.stats)
                    }
                    "reach-neg" => {
                        let r = stratified::run_negated_reach(&device, graph, 3, config.clone())
                            .expect("smoke run failed");
                        (r.reach_size, r.stats)
                    }
                    "sp-min" => {
                        let r = stratified::run_shortest_path(&device, graph, 4, config.clone())
                            .expect("smoke run failed");
                        (r.sp_size, r.stats)
                    }
                    // The goal row records *tuples materialized* (answers +
                    // magic facts + anything kept fully evaluated), the
                    // number its gate compares against the closure size the
                    // reach-goal-full row records in the same column.
                    "reach-goal" => {
                        let r = goal::run_goal(&device, graph, goal_source, config.clone())
                            .expect("smoke run failed");
                        (r.tuples_materialized, r.stats)
                    }
                    _ => {
                        let r =
                            reach::run(&device, graph, config.clone()).expect("smoke run failed");
                        (r.reach_size, r.stats)
                    }
                };
                tuples = size;
                iterations = stats.iterations;
                walls.push(stats.wall_seconds);
                modeled.push(stats.modeled_seconds());
                // Work counters (and the topology modeling, which is
                // derived from deterministic counters) are deterministic
                // per configuration; the phase nanos wobble with the wall
                // clock, so the artifact records the last trial of each.
                overlap = (stats.overlap_nanos, stats.pipeline_stall_nanos);
                topology = stats.topology;
                let snap = device.metrics().snapshot();
                counters = (snap.hash_inserts, snap.hash_rebuilds, snap.sort_passes);
                let phases = device.metrics().phase_times();
                let ns = |name: &str| phases.get(name).map_or(0, |d| d.as_nanos() as u64);
                phase_ns = (ns("sort"), ns("merge"), ns("index"));
            }
            tuple_counts.push(tuples);
            rows.push(SmokeRow {
                query,
                dataset: graph.name.clone(),
                backend: spec.label(),
                shards: spec.shards(),
                tuples,
                iterations,
                median_wall_s: median(walls),
                median_modeled_s: median(modeled),
                hash_inserts: counters.0,
                hash_rebuilds: counters.1,
                sort_passes: counters.2,
                sort_ns: phase_ns.0,
                merge_ns: phase_ns.1,
                index_ns: phase_ns.2,
                overlap_ns: overlap.0,
                stall_ns: overlap.1,
                topology,
            });
        }
        assert!(
            tuple_counts.windows(2).all(|w| w[0] == w[1]),
            "{query}: backends disagree on tuple counts: {tuple_counts:?}"
        );
    }

    // The multi-GPU model must actually show multi-device leverage on the
    // memory-bound REACH workload: the 4-device NVLink-like preset's
    // aggregate-over-critical-path speedup is derived from deterministic
    // counters, so a regression here is a modeling bug, not noise.
    if rows.iter().any(|r| r.query == "reach") {
        let reach_4dev = rows
            .iter()
            .find(|r| r.query == "reach" && r.backend == "multigpu:4")
            .and_then(|r| r.topology.as_ref())
            .expect("the multigpu:4 REACH leg reports a topology");
        assert!(
            reach_4dev.modeled_speedup() > 1.0,
            "modeled 4-device NVLink speedup on REACH must exceed 1.0, got {:.2}",
            reach_4dev.modeled_speedup()
        );
        // Hiding each device's merge share behind the next step's compute
        // must shorten the modeled schedule: the pipelined critical path is
        // priced through the same per-device cost models, so on a
        // multi-round fixpoint it has to land strictly below the
        // bulk-synchronous one.
        assert!(
            reach_4dev.modeled_pipelined_critical_path_sec < reach_4dev.modeled_critical_path_sec,
            "modeled pipelined critical path ({:.6}s) must beat the BSP critical path ({:.6}s)",
            reach_4dev.modeled_pipelined_critical_path_sec,
            reach_4dev.modeled_critical_path_sec
        );
    } else {
        println!("multi-GPU REACH gate skipped (reach filtered out)");
    }

    // The measured gate: on the merge-heavy chain, deferring and batching
    // full merges (fewer O(|full|) streaming passes) must beat the
    // barrier-per-iteration sharded backend at the same shard count.
    if rows.iter().any(|r| r.query == "reach-chain") {
        let chain_wall = |backend: &str| {
            rows.iter()
                .find(|r| r.query == "reach-chain" && r.backend == backend)
                .map(|r| r.median_wall_s)
                .expect("the chain leg runs every backend")
        };
        let pipelined_label = format!("pipelined:{shards}");
        let sharded_label = format!("sharded:{shards}");
        let (pipelined_wall, sharded_wall) =
            (chain_wall(&pipelined_label), chain_wall(&sharded_label));
        println!(
            "chain-REACH wall medians: {pipelined_label} {pipelined_wall:.4}s vs \
             {sharded_label} {sharded_wall:.4}s ({:.2}x)",
            sharded_wall / pipelined_wall
        );
        assert!(
            pipelined_wall < sharded_wall,
            "pipelined median wall ({pipelined_wall:.4}s) must beat sharded ({sharded_wall:.4}s) \
             on the merge-heavy chain"
        );
        let chain_pipelined = rows
            .iter()
            .find(|r| r.query == "reach-chain" && r.backend == pipelined_label)
            .expect("the chain leg runs the pipelined backend");
        assert!(
            chain_pipelined.overlap_ns > 0,
            "the pipelined chain leg must report a non-zero overlap window"
        );
    } else {
        println!("chain pipelined-vs-sharded gate skipped (reach-chain filtered out)");
    }

    // The goal-directed gate: on every backend, the magic-rewritten point
    // query must materialize strictly fewer tuples than the full closure on
    // the same hub graph *and* post a lower median wall. On a hub graph the
    // gap is structural (~n answers vs ~n² closure pairs), so a failure
    // here means the rewrite stopped being demand-driven, not noise.
    if rows.iter().any(|r| r.query == "reach-goal") {
        for spec in &backends {
            let label = spec.label();
            let pick = |query: &str| {
                rows.iter()
                    .find(|r| r.query == query && r.backend == label)
                    .expect("the goal pair runs every backend")
            };
            let (full, magic) = (pick("reach-goal-full"), pick("reach-goal"));
            println!(
                "goal-REACH [{label}]: magic {} tuples / {:.4}s vs full {} tuples / {:.4}s",
                magic.tuples, magic.median_wall_s, full.tuples, full.median_wall_s
            );
            assert!(
                magic.tuples < full.tuples,
                "[{label}] magic point query must materialize fewer tuples ({}) than the \
                 full closure ({})",
                magic.tuples,
                full.tuples
            );
            assert!(
                magic.median_wall_s < full.median_wall_s,
                "[{label}] magic median wall ({:.4}s) must beat the full closure ({:.4}s)",
                magic.median_wall_s,
                full.median_wall_s
            );
        }
    } else {
        println!("goal-directed gate skipped (reach-goal filtered out)");
    }

    // The optimizer gate: dead-rule elimination must strictly reduce the
    // tuples materialized on the crafted unreachable-rule workload while
    // leaving the output closure byte-identical. The gap is structural
    // (the dead `Scratch` rule derives one tuple per bidirectional closure
    // edge), so a failure means the rewrite pipeline stopped pruning, not
    // noise. This leg always runs — it is an engine-frontend gate, not a
    // backend workload, so `--workload` does not filter it.
    let dead_rule_nodes = ((150.0 * scale).round() as u32).max(24);
    let dead_rule_graph = hub_graph(dead_rule_nodes, 3, 59);
    let (unopt_tuples, unopt_reach) = dead_rule_run(&dead_rule_graph, scale, false);
    let (opt_tuples, opt_reach) = dead_rule_run(&dead_rule_graph, scale, true);
    println!(
        "dead-rule-elim: optimized {opt_tuples} tuples materialized vs \
         unoptimized {unopt_tuples} (closure {opt_reach} both ways)"
    );
    assert_eq!(
        opt_reach, unopt_reach,
        "dead-rule elimination must not change the output closure"
    );
    assert!(
        opt_tuples < unopt_tuples,
        "dead-rule elimination must strictly reduce tuples materialized \
         ({opt_tuples} vs {unopt_tuples})"
    );

    let mut table = TextTable::new([
        "Query",
        "Dataset",
        "Backend",
        "Tuples",
        "Median wall (s)",
        "Median modeled (s)",
        "Wall vs serial",
    ]);
    let serial_wall = |query: &str| {
        rows.iter()
            .find(|r| r.query == query && r.backend == "serial")
            .map(|r| r.median_wall_s)
            .unwrap_or(f64::NAN)
    };
    for row in &rows {
        table.row([
            row.query.to_string(),
            row.dataset.clone(),
            row.backend.clone(),
            format!("{}", row.tuples),
            format!("{:.4}", row.median_wall_s),
            format!("{:.4}", row.median_modeled_s),
            speedup(serial_wall(row.query), row.median_wall_s),
        ]);
    }
    println!("{}", table.render());

    // Index-maintenance counters and the device phase breakdown: the
    // numbers that pin delta-proportional merges (rebuilds stay amortised —
    // far below the iteration count — while inserts track Σ|delta|).
    let mut phases = TextTable::new([
        "Query",
        "Backend",
        "Iters",
        "Hash inserts",
        "Hash rebuilds",
        "Sort passes",
        "Sort (ms)",
        "Merge (ms)",
        "Index (ms)",
        "Overlap (ms)",
        "Stall (ms)",
    ]);
    for row in &rows {
        phases.row([
            row.query.to_string(),
            row.backend.clone(),
            format!("{}", row.iterations),
            format!("{}", row.hash_inserts),
            format!("{}", row.hash_rebuilds),
            format!("{}", row.sort_passes),
            format!("{:.3}", row.sort_ns as f64 / 1e6),
            format!("{:.3}", row.merge_ns as f64 / 1e6),
            format!("{:.3}", row.index_ns as f64 / 1e6),
            format!("{:.3}", row.overlap_ns as f64 / 1e6),
            format!("{:.3}", row.stall_ns as f64 / 1e6),
        ]);
    }
    println!("phase breakdown (device-level, last trial)");
    println!("{}", phases.render());

    // The multi-GPU modeling columns: per-iteration critical path (max over
    // devices of compute + incoming transfer, summed over pipelines),
    // cross-device exchange traffic, and the aggregate-over-critical-path
    // modeled speedup.
    let mut topo_table = TextTable::new([
        "Query",
        "Topology",
        "Link",
        "Modeled CP (s)",
        "Model speedup",
        "Exchange (KiB)",
        "Exchange msgs",
        "Per-device modeled (s)",
    ]);
    for row in &rows {
        let Some(report) = &row.topology else {
            continue;
        };
        let per_device: Vec<String> = report
            .devices
            .iter()
            .map(|lane| format!("{:.6}", lane.modeled_compute_sec))
            .collect();
        topo_table.row([
            row.query.to_string(),
            row.backend.clone(),
            report.link.clone(),
            format!("{:.6}", report.modeled_critical_path_sec),
            format!("{:.2}x", report.modeled_speedup()),
            format!("{:.1}", report.total_exchange_bytes as f64 / 1024.0),
            format!("{}", report.total_exchange_messages),
            per_device.join(" "),
        ]);
    }
    println!("multi-GPU simulation (modeled, last trial)");
    println!("{}", topo_table.render());

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"trials\": {trials},\n"));
    json.push_str(&format!("  \"host_workers\": {workers},\n"));
    json.push_str(&format!(
        "  \"dead_rule_elim\": {{\"dataset\": \"{}\", \
         \"tuples_materialized_unoptimized\": {unopt_tuples}, \
         \"tuples_materialized_optimized\": {opt_tuples}, \
         \"output_tuples\": {opt_reach}}},\n",
        dead_rule_graph.name
    ));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"dataset\": \"{}\", \"backend\": \"{}\", \
             \"shards\": {}, \"tuples\": {}, \"iterations\": {}, \
             \"median_wall_s\": {:.6}, \"median_modeled_s\": {:.6}, \
             \"hash_inserts\": {}, \"hash_rebuilds\": {}, \"sort_passes\": {}, \
             \"phase_nanos\": {{\"sort\": {}, \"merge\": {}, \"index\": {}}}, \
             \"overlap_nanos\": {}, \"pipeline_stall_nanos\": {}, \
             \"topology\": {}}}{}\n",
            row.query,
            row.dataset,
            row.backend,
            row.shards,
            row.tuples,
            row.iterations,
            row.median_wall_s,
            row.median_modeled_s,
            row.hash_inserts,
            row.hash_rebuilds,
            row.sort_passes,
            row.sort_ns,
            row.merge_ns,
            row.index_ns,
            row.overlap_ns,
            row.stall_ns,
            topology_json(&row.topology),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let included: Vec<&str> = workloads.iter().map(|(q, _)| *q).collect();
    validate_schema(&json, &included).expect("generated artifact must satisfy its own schema");
    std::fs::write(&out_path, &json).expect("failed to write the bench smoke artifact");
    println!("wrote {out_path}");
}
