//! CI bench smoke: runs the Table 2 REACH workload (Gnutella31), the
//! Table 3 SG workload (ego-Facebook), and a merge-heavy long-chain REACH
//! (one iteration per node, tiny deltas — the incremental index-maintenance
//! hot path) in every backend, checks the backends agree on tuple counts,
//! and writes per-backend medians **plus index-maintenance counters and the
//! device phase breakdown** to a JSON artifact so every PR records its perf
//! trajectory.
//!
//! ```text
//! cargo run --release -p gpulog-bench --bin bench_smoke -- \
//!     [--out bench_smoke.json] [--trials 5] [--shards 4]
//! ```

use gpulog::EngineConfig;
use gpulog_bench::{banner, gpulog_device, scale_from_env, speedup, TextTable};
use gpulog_datasets::generators::road_network;
use gpulog_datasets::{EdgeList, PaperDataset};
use gpulog_queries::{reach, sg};

struct SmokeRow {
    query: &'static str,
    dataset: String,
    backend: String,
    shards: usize,
    tuples: usize,
    iterations: usize,
    median_wall_s: f64,
    median_modeled_s: f64,
    hash_inserts: u64,
    hash_rebuilds: u64,
    sort_passes: u64,
    sort_ns: u64,
    merge_ns: u64,
    index_ns: u64,
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Reads an integer flag, failing loudly on a malformed value — the
/// artifact must never silently record a configuration other than the one
/// the command line asked for.
fn usize_flag(args: &[String], flag: &str, default: usize) -> usize {
    match args.iter().position(|a| a == flag) {
        None => default,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) if n >= 1 => n,
            _ => {
                eprintln!("{flag} needs a positive integer, got {:?}", args.get(i + 1));
                std::process::exit(2);
            }
        },
    }
}

fn string_flag(args: &[String], flag: &str, default: &str) -> String {
    match args.iter().position(|a| a == flag) {
        None => default.to_string(),
        Some(i) => match args.get(i + 1) {
            Some(value) => value.clone(),
            None => {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trials = usize_flag(&args, "--trials", 5);
    let shards = usize_flag(&args, "--shards", 4);
    let out_path = string_flag(&args, "--out", "bench_smoke.json");
    let scale = scale_from_env();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    banner("bench smoke — serial vs sharded medians", scale);
    println!("(trials {trials}, sharded leg {shards} shards, host workers {workers})");

    let backends = [
        ("serial".to_string(), 1usize),
        (format!("sharded:{shards}"), shards),
    ];
    // The chain length scales like the node counts of the named datasets,
    // so the merge-heavy leg keeps "many iterations, small deltas" at any
    // scale.
    let chain_nodes = ((400.0 * scale).round() as u32).max(32);
    let workloads: Vec<(&'static str, EdgeList)> = vec![
        ("reach", PaperDataset::Gnutella31.generate(scale)),
        ("sg", PaperDataset::EgoFacebook.generate(scale)),
        // Merge-heavy: a pure bidirectional chain runs REACH for one
        // iteration per node with steadily shrinking deltas, which is the
        // workload the incremental hash maintenance (zero rebuilds with
        // EBM headroom) exists for.
        ("reach-chain", road_network(chain_nodes, 0, 23)),
    ];

    let mut rows: Vec<SmokeRow> = Vec::new();
    for (query, graph) in &workloads {
        let query = *query;
        let mut tuple_counts: Vec<usize> = Vec::new();
        for (label, shard_count) in &backends {
            let config = EngineConfig::default().with_shard_count(*shard_count);
            let mut walls = Vec::with_capacity(trials);
            let mut modeled = Vec::with_capacity(trials);
            let mut tuples = 0usize;
            let mut iterations = 0usize;
            let mut counters = (0u64, 0u64, 0u64);
            let mut phase_ns = (0u64, 0u64, 0u64);
            for _ in 0..trials {
                let device = gpulog_device(scale);
                let (size, stats) = match query {
                    "sg" => {
                        let r = sg::run(&device, graph, config).expect("smoke run failed");
                        (r.sg_size, r.stats)
                    }
                    _ => {
                        let r = reach::run(&device, graph, config).expect("smoke run failed");
                        (r.reach_size, r.stats)
                    }
                };
                tuples = size;
                iterations = stats.iterations;
                walls.push(stats.wall_seconds);
                modeled.push(stats.modeled_seconds());
                // Work counters are deterministic per configuration; the
                // phase nanos wobble with the wall clock, so the artifact
                // records the last trial of each.
                let snap = device.metrics().snapshot();
                counters = (snap.hash_inserts, snap.hash_rebuilds, snap.sort_passes);
                let phases = device.metrics().phase_times();
                let ns = |name: &str| phases.get(name).map_or(0, |d| d.as_nanos() as u64);
                phase_ns = (ns("sort"), ns("merge"), ns("index"));
            }
            tuple_counts.push(tuples);
            rows.push(SmokeRow {
                query,
                dataset: graph.name.clone(),
                backend: label.clone(),
                shards: *shard_count,
                tuples,
                iterations,
                median_wall_s: median(walls),
                median_modeled_s: median(modeled),
                hash_inserts: counters.0,
                hash_rebuilds: counters.1,
                sort_passes: counters.2,
                sort_ns: phase_ns.0,
                merge_ns: phase_ns.1,
                index_ns: phase_ns.2,
            });
        }
        assert!(
            tuple_counts.windows(2).all(|w| w[0] == w[1]),
            "{query}: backends disagree on tuple counts: {tuple_counts:?}"
        );
    }

    let mut table = TextTable::new([
        "Query",
        "Dataset",
        "Backend",
        "Tuples",
        "Median wall (s)",
        "Median modeled (s)",
        "Wall vs serial",
    ]);
    let serial_wall = |query: &str| {
        rows.iter()
            .find(|r| r.query == query && r.shards == 1)
            .map(|r| r.median_wall_s)
            .unwrap_or(f64::NAN)
    };
    for row in &rows {
        table.row([
            row.query.to_string(),
            row.dataset.clone(),
            row.backend.clone(),
            format!("{}", row.tuples),
            format!("{:.4}", row.median_wall_s),
            format!("{:.4}", row.median_modeled_s),
            speedup(serial_wall(row.query), row.median_wall_s),
        ]);
    }
    println!("{}", table.render());

    // Index-maintenance counters and the device phase breakdown: the
    // numbers that pin delta-proportional merges (rebuilds stay amortised —
    // far below the iteration count — while inserts track Σ|delta|).
    let mut phases = TextTable::new([
        "Query",
        "Backend",
        "Iters",
        "Hash inserts",
        "Hash rebuilds",
        "Sort passes",
        "Sort (ms)",
        "Merge (ms)",
        "Index (ms)",
    ]);
    for row in &rows {
        phases.row([
            row.query.to_string(),
            row.backend.clone(),
            format!("{}", row.iterations),
            format!("{}", row.hash_inserts),
            format!("{}", row.hash_rebuilds),
            format!("{}", row.sort_passes),
            format!("{:.3}", row.sort_ns as f64 / 1e6),
            format!("{:.3}", row.merge_ns as f64 / 1e6),
            format!("{:.3}", row.index_ns as f64 / 1e6),
        ]);
    }
    println!("phase breakdown (device-level, last trial)");
    println!("{}", phases.render());

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": {scale},\n"));
    json.push_str(&format!("  \"trials\": {trials},\n"));
    json.push_str(&format!("  \"host_workers\": {workers},\n"));
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"dataset\": \"{}\", \"backend\": \"{}\", \
             \"shards\": {}, \"tuples\": {}, \"iterations\": {}, \
             \"median_wall_s\": {:.6}, \"median_modeled_s\": {:.6}, \
             \"hash_inserts\": {}, \"hash_rebuilds\": {}, \"sort_passes\": {}, \
             \"phase_nanos\": {{\"sort\": {}, \"merge\": {}, \"index\": {}}}}}{}\n",
            row.query,
            row.dataset,
            row.backend,
            row.shards,
            row.tuples,
            row.iterations,
            row.median_wall_s,
            row.median_modeled_s,
            row.hash_inserts,
            row.hash_rebuilds,
            row.sort_passes,
            row.sort_ns,
            row.merge_ns,
            row.index_ns,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("failed to write the bench smoke artifact");
    println!("wrote {out_path}");
}
