//! `gpulog-lint` — the Datalog program linter as a command-line tool.
//!
//! Runs the core linter ([`gpulog::lint_program`]) over Soufflé-style
//! `.dl` files and/or every program embedded in this workspace, printing
//! span-carrying `GLnnn` findings.
//!
//! ```text
//! gpulog-lint program.dl            # lint a source file
//! gpulog-lint --embedded            # lint every embedded workspace program
//! gpulog-lint --deny-warnings ...   # findings fail the run (exit 1)
//! ```
//!
//! Exit codes: `0` — everything linted clean (or findings were printed
//! without `--deny-warnings`); `1` — findings fired under
//! `--deny-warnings`; `2` — usage, I/O, parse, or validation error (the
//! program never reached the lint passes).

use gpulog::{lint_program, parse_program, stratify_program};

/// Every Datalog program embedded in the workspace: benchmark query
/// sources, the ddisasm workload, and the example programs. The CI lint
/// job sweeps these with `--embedded --deny-warnings` as a zero-warnings
/// gate.
const EMBEDDED: &[(&str, &str)] = &[
    ("queries::REACH_PROGRAM", gpulog_queries::REACH_PROGRAM),
    ("queries::SG_PROGRAM", gpulog_queries::SG_PROGRAM),
    ("queries::CSPA_PROGRAM", gpulog_queries::CSPA_PROGRAM),
    (
        "queries::GOAL_REACH_PROGRAM",
        gpulog_queries::GOAL_REACH_PROGRAM,
    ),
    (
        "queries::NEGATED_REACH_PROGRAM",
        gpulog_queries::stratified::NEGATED_REACH_PROGRAM,
    ),
    (
        "queries::SHORTEST_PATH_PROGRAM",
        gpulog_queries::stratified::SHORTEST_PATH_PROGRAM,
    ),
    (
        "queries::DDISASM_PROGRAM",
        gpulog_queries::ddisasm::DDISASM_PROGRAM,
    ),
    (
        "examples::QUICKSTART_PROGRAM",
        gpulog_examples::QUICKSTART_PROGRAM,
    ),
];

/// Lints one named program source. Returns the number of findings, or an
/// error string when the source never reached the lint passes.
fn lint_source(name: &str, source: &str) -> Result<usize, String> {
    let program = parse_program(source).map_err(|err| format!("{name}: parse failed: {err}"))?;
    stratify_program(&program).map_err(|err| format!("{name}: invalid program: {err}"))?;
    let diagnostics = lint_program(&program);
    for d in &diagnostics {
        println!("{name}: {d}");
    }
    Ok(diagnostics.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: gpulog-lint [--embedded] [--deny-warnings] [FILE.dl ...]\n\
             \n\
             Lints Soufflé-style Datalog programs with the gpulog analysis\n\
             passes (lint codes GL001..GL007).\n\
             \n\
             --embedded        lint every program embedded in the workspace\n\
             --deny-warnings   exit 1 when any finding fires"
        );
        return;
    }
    let deny = args.iter().any(|a| a == "--deny-warnings");
    let embedded = args.iter().any(|a| a == "--embedded");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if !embedded && files.is_empty() {
        eprintln!("gpulog-lint: nothing to lint (pass .dl files or --embedded)");
        std::process::exit(2);
    }

    let mut findings = 0usize;
    let mut programs = 0usize;
    if embedded {
        for (name, source) in EMBEDDED {
            match lint_source(name, source) {
                Ok(count) => findings += count,
                Err(err) => {
                    eprintln!("{err}");
                    std::process::exit(2);
                }
            }
            programs += 1;
        }
    }
    for path in files {
        let source = std::fs::read_to_string(path).unwrap_or_else(|err| {
            eprintln!("gpulog-lint: cannot read {path}: {err}");
            std::process::exit(2);
        });
        match lint_source(path, &source) {
            Ok(count) => findings += count,
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(2);
            }
        }
        programs += 1;
    }

    let noun = if findings == 1 { "finding" } else { "findings" };
    println!("gpulog-lint: {programs} program(s), {findings} {noun}");
    if deny && findings > 0 {
        std::process::exit(1);
    }
}
