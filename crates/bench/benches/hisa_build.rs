//! Micro-benchmark: HISA construction (sort + dedup + hash index) vs tuple
//! count and key width — the data-structure cost behind the "Indexing"
//! phases of Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_hisa::{Hisa, IndexSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_tuples(rows: usize, arity: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..rows * arity)
        .map(|_| rng.gen_range(0..50_000))
        .collect()
}

fn bench_hisa_build(c: &mut Criterion) {
    let device = Device::new(DeviceProfile::nvidia_h100());
    let mut group = c.benchmark_group("hisa_build");
    for rows in [1_000usize, 10_000, 50_000] {
        let data = random_tuples(rows, 2, rows as u64);
        group.bench_with_input(BenchmarkId::new("arity2_key1", rows), &rows, |b, _| {
            b.iter(|| Hisa::build(&device, IndexSpec::new(2, vec![0]), &data).unwrap())
        });
    }
    let data3 = random_tuples(20_000, 3, 3);
    group.bench_function("arity3_key2", |b| {
        b.iter(|| Hisa::build(&device, IndexSpec::new(3, vec![0, 1]), &data3).unwrap())
    });
    group.finish();
}

fn bench_hisa_merge(c: &mut Criterion) {
    let device = Device::new(DeviceProfile::nvidia_h100());
    let full_data = random_tuples(50_000, 2, 1);
    let delta_data: Vec<u32> = random_tuples(5_000, 2, 2)
        .iter()
        .map(|v| v + 100_000)
        .collect();
    c.bench_function("hisa_merge_full_50k_delta_5k", |b| {
        b.iter(|| {
            let mut full = Hisa::build(&device, IndexSpec::new(2, vec![0]), &full_data).unwrap();
            let delta = Hisa::build(&device, IndexSpec::new(2, vec![0]), &delta_data).unwrap();
            full.merge_from(&delta).unwrap();
            full.len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_hisa_build, bench_hisa_merge
}
criterion_main!(benches);
