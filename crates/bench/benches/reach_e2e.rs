//! End-to-end REACH (Table 2's workload) on representative topology classes,
//! GPUlog vs the Soufflé-like and cuDF-like strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use gpulog::EngineConfig;
use gpulog_baselines::{cudf_like, souffle_like};
use gpulog_datasets::PaperDataset;
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_queries::reach;
use std::time::Duration;

fn bench_reach(c: &mut Criterion) {
    let scale = 0.15;
    for dataset in [PaperDataset::Gnutella31, PaperDataset::FeBody] {
        let graph = dataset.generate(scale);
        let name = dataset.paper_name();
        c.bench_function(&format!("reach_gpulog_{name}"), |b| {
            b.iter(|| {
                let device = Device::new(DeviceProfile::nvidia_h100());
                reach::run(&device, &graph, EngineConfig::default())
                    .unwrap()
                    .reach_size
            })
        });
        c.bench_function(&format!("reach_souffle_like_{name}"), |b| {
            b.iter(|| souffle_like::reach(&graph, 8).tuples)
        });
        c.bench_function(&format!("reach_cudf_like_{name}"), |b| {
            b.iter(|| cudf_like::reach(&graph, usize::MAX).tuples)
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_reach
}
criterion_main!(benches);
