//! End-to-end Same Generation (Table 3's workload), GPUlog vs the
//! Soufflé-like strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use gpulog::EngineConfig;
use gpulog_baselines::souffle_like;
use gpulog_datasets::PaperDataset;
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_queries::sg;
use std::time::Duration;

fn bench_sg(c: &mut Criterion) {
    let graph = PaperDataset::EgoFacebook.generate(0.15);
    c.bench_function("sg_gpulog_ego-Facebook", |b| {
        b.iter(|| {
            let device = Device::new(DeviceProfile::nvidia_h100());
            sg::run(&device, &graph, EngineConfig::default())
                .unwrap()
                .sg_size
        })
    });
    c.bench_function("sg_souffle_like_ego-Facebook", |b| {
        b.iter(|| souffle_like::sg(&graph, 8).tuples)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_sg
}
criterion_main!(benches);
