//! End-to-end CSPA (Table 4's workload) on httpd-shaped synthetic input,
//! GPUlog vs the Soufflé-like strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use gpulog::EngineConfig;
use gpulog_baselines::souffle_like;
use gpulog_datasets::cspa::httpd_like;
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_queries::cspa;
use std::time::Duration;

fn bench_cspa(c: &mut Criterion) {
    let input = httpd_like(1.0 / 2000.0);
    c.bench_function("cspa_gpulog_httpd", |b| {
        b.iter(|| {
            let device = Device::new(DeviceProfile::nvidia_h100());
            cspa::run(&device, &input, EngineConfig::default())
                .unwrap()
                .sizes
                .value_alias
        })
    });
    c.bench_function("cspa_souffle_like_httpd", |b| {
        b.iter(|| souffle_like::cspa(&input, 8).1.value_alias)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_cspa
}
criterion_main!(benches);
