//! Micro-benchmark: the HISA-backed binary hash-join kernel against a
//! GPUJoin-style probe of a tuple hash table (the comparison behind the
//! paper's claimed 5x join advantage).

use criterion::{criterion_group, criterion_main, Criterion};
use gpulog::planner::EmitSource;
use gpulog::ra::hash_join;
use gpulog_baselines::gpujoin_like;
use gpulog_datasets::generators::power_law_graph;
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_hisa::{Hisa, IndexSpec};
use std::time::Duration;

fn bench_join(c: &mut Criterion) {
    let device = Device::new(DeviceProfile::nvidia_h100());
    let graph = power_law_graph(4_000, 4, 7);
    let flat = graph.to_flat();
    let inner = Hisa::build(&device, IndexSpec::new(2, vec![0]), &flat).unwrap();
    let emit = [
        EmitSource::Outer(0),
        EmitSource::Outer(1),
        EmitSource::Inner(1),
    ];
    c.bench_function("hisa_hash_join_powerlaw", |b| {
        b.iter(|| hash_join(&device, &flat, 2, &[1], &inner, &[], &[], &emit).len())
    });
}

fn bench_gpujoin_strategy_end_to_end(c: &mut Criterion) {
    let graph = power_law_graph(1_500, 3, 9);
    c.bench_function("gpujoin_like_reach_powerlaw", |b| {
        b.iter(|| gpujoin_like::reach(&graph, usize::MAX).tuples)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_join, bench_gpujoin_strategy_end_to_end
}
criterion_main!(benches);
