//! Ablation: eager buffer management on vs off, and growth-factor sweep
//! (the design choice behind Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpulog::{EbmConfig, EngineConfig};
use gpulog_datasets::PaperDataset;
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_queries::reach;
use std::time::Duration;

fn bench_ebm(c: &mut Criterion) {
    let graph = PaperDataset::SfCedge.generate(0.2);
    let mut group = c.benchmark_group("ebm_reach_SF.cedge");
    for (label, ebm) in [
        ("off", EbmConfig::disabled()),
        ("k2", EbmConfig::with_growth_factor(2.0)),
        ("k8", EbmConfig::with_growth_factor(8.0)),
        ("k32", EbmConfig::with_growth_factor(32.0)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &ebm, |b, ebm| {
            b.iter(|| {
                let device = Device::new(DeviceProfile::nvidia_h100());
                let cfg = EngineConfig::new().with_ebm(*ebm);
                reach::run(&device, &graph, cfg).unwrap().reach_size
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_ebm
}
criterion_main!(benches);
