//! Ablation: temporarily-materialized vs fused nested-loop n-way joins on
//! the SG query (the design choice of paper Section 5.2 / Figure 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpulog::{EngineConfig, NwayStrategy};
use gpulog_datasets::generators::power_law_graph;
use gpulog_device::{profile::DeviceProfile, Device};
use gpulog_queries::sg;
use std::time::Duration;

fn bench_nway(c: &mut Criterion) {
    // A skewed graph maximizes the per-thread imbalance the materialized
    // strategy is designed to remove.
    let graph = power_law_graph(600, 4, 13);
    let mut group = c.benchmark_group("nway_sg_powerlaw");
    for (label, strategy) in [
        ("materialized", NwayStrategy::TemporarilyMaterialized),
        ("fused", NwayStrategy::FusedNestedLoop),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &strategy, |b, s| {
            b.iter(|| {
                let device = Device::new(DeviceProfile::nvidia_h100());
                let cfg = EngineConfig::new().with_nway(*s);
                sg::run(&device, &graph, cfg).unwrap().sg_size
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));
    targets = bench_nway
}
criterion_main!(benches);
