//! Micro-benchmark: the Thrust-style sort and merge primitives (Table 6's
//! operations), at several input sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpulog_device::thrust::merge::merge_path_merge;
use gpulog_device::thrust::sort::lexicographic_sort_indices;
use gpulog_device::{profile::DeviceProfile, Device};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_sort(c: &mut Criterion) {
    let device = Device::new(DeviceProfile::nvidia_a100());
    let mut group = c.benchmark_group("lexicographic_sort");
    for rows in [10_000usize, 100_000] {
        let mut rng = SmallRng::seed_from_u64(rows as u64);
        let data: Vec<u32> = (0..rows * 2).map(|_| rng.gen()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| lexicographic_sort_indices(&device, &data, 2, &[0, 1]).len())
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let device = Device::new(DeviceProfile::nvidia_a100());
    let mut group = c.benchmark_group("merge_path");
    for rows in [10_000usize, 100_000] {
        let a: Vec<u32> = (0..rows as u32).map(|i| i * 2).collect();
        let b_side: Vec<u32> = (0..rows as u32).map(|i| i * 2 + 1).collect();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |bch, _| {
            bch.iter(|| merge_path_merge(&device, &a, &b_side, |x, y| x.cmp(y)).len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_sort, bench_merge
}
criterion_main!(benches);
