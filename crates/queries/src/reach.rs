//! The REACH (transitive closure) query — the paper's Section 1 example and
//! the workload of Tables 1 and 2.

use gpulog::{EngineConfig, EngineResult, GpulogEngine, RunStats};
use gpulog_datasets::EdgeList;
use gpulog_device::Device;

/// Soufflé-style source of the REACH program.
pub const REACH_PROGRAM: &str = r"
.decl Edge(x: number, y: number)
.input Edge
.decl Reach(x: number, y: number)
.output Reach
Reach(x, y) :- Edge(x, y).
Reach(x, y) :- Edge(x, z), Reach(z, y).
";

/// Result of one REACH run.
#[derive(Debug, Clone)]
pub struct ReachResult {
    /// Engine statistics for the run.
    pub stats: RunStats,
    /// Number of tuples in the derived `Reach` relation.
    pub reach_size: usize,
}

/// Builds a GPUlog engine loaded with `graph`'s edges, ready to run REACH.
///
/// # Errors
///
/// Returns engine or device errors.
pub fn prepare(
    device: &Device,
    graph: &EdgeList,
    config: EngineConfig,
) -> EngineResult<GpulogEngine> {
    let mut engine = GpulogEngine::from_source(device, REACH_PROGRAM, config)?;
    engine.add_facts_flat("Edge", &graph.to_flat())?;
    Ok(engine)
}

/// Runs REACH on `graph` with the given configuration.
///
/// # Errors
///
/// Returns engine or device errors (including out-of-memory).
pub fn run(device: &Device, graph: &EdgeList, config: EngineConfig) -> EngineResult<ReachResult> {
    let mut engine = prepare(device, graph, config)?;
    let stats = engine.run()?;
    Ok(ReachResult {
        reach_size: engine.relation_size("Reach").unwrap_or(0),
        stats,
    })
}

/// Reference transitive closure computed on the host with a BFS per node;
/// used by tests and cross-engine agreement checks.
pub fn reference_closure(graph: &EdgeList) -> Vec<(u32, u32)> {
    use std::collections::{HashSet, VecDeque};
    let bound = graph.id_bound() as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); bound];
    for &(a, b) in &graph.edges {
        adj[a as usize].push(b);
    }
    let mut closure = Vec::new();
    for start in 0..bound as u32 {
        if adj[start as usize].is_empty() {
            continue;
        }
        let mut seen: HashSet<u32> = HashSet::new();
        let mut queue: VecDeque<u32> = adj[start as usize].iter().copied().collect();
        while let Some(v) = queue.pop_front() {
            if seen.insert(v) {
                closure.push((start, v));
                for &next in &adj[v as usize] {
                    if !seen.contains(&next) {
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    closure.sort_unstable();
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_datasets::generators::{binary_tree, random_graph, road_network};
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn reach_matches_reference_on_random_graphs() {
        let d = device();
        for seed in 0..3u64 {
            let g = random_graph(60, 150, seed);
            let result = run(&d, &g, EngineConfig::default()).unwrap();
            let expected = reference_closure(&g);
            assert_eq!(result.reach_size, expected.len(), "seed {seed}");
        }
    }

    #[test]
    fn reach_on_a_tree_counts_ancestor_descendant_pairs() {
        let d = device();
        let g = binary_tree(5); // 31 nodes
        let result = run(&d, &g, EngineConfig::default()).unwrap();
        assert_eq!(result.reach_size, reference_closure(&g).len());
        assert!(result.stats.iterations >= 4, "tree depth drives iterations");
    }

    #[test]
    fn road_networks_take_many_iterations() {
        let d = device();
        let g = road_network(120, 10, 3);
        let result = run(&d, &g, EngineConfig::default()).unwrap();
        assert!(
            result.stats.iterations > 10,
            "expected a long fixpoint, got {}",
            result.stats.iterations
        );
    }
}
