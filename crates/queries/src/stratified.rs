//! Stratified workloads: negation and head aggregates.
//!
//! Two programs exercise the stratified-evaluation path end to end:
//!
//! - [`run_negated_reach`] — CSPA-style negated-filter transitive
//!   closure. `Blocked` nodes (every `stride`-th vertex, the kind of
//!   "unsupported operation" filter DDisasm and CSPA apply) are excluded
//!   from the closure with `!Blocked(y)`, which lowers to an anti-join
//!   against the completed lower stratum.
//! - [`run_shortest_path`] — hop-count shortest paths via a `min` head
//!   aggregate. Path lengths are encoded through a bounded `Succ`
//!   relation (the engine's domain is plain `u32`, so arithmetic is
//!   spelled as an extensional successor table), and `SP(x, y, min(d))`
//!   reduces the finished `PathLen` relation group-by-(x, y).
//!
//! Both carry host-side reference implementations for cross-checking.

use gpulog::{EngineConfig, EngineResult, GpulogEngine, RunStats};
use gpulog_datasets::EdgeList;
use gpulog_device::Device;

/// Soufflé-style source of the negated-filter REACH program.
pub const NEGATED_REACH_PROGRAM: &str = r"
.decl Edge(x: number, y: number)
.input Edge
.decl Blocked(x: number)
.input Blocked
.decl Reach(x: number, y: number)
.output Reach
Reach(x, y) :- Edge(x, y), !Blocked(y).
Reach(x, z) :- Reach(x, y), Edge(y, z), !Blocked(z).
";

/// Soufflé-style source of the shortest-path-via-`min` program.
pub const SHORTEST_PATH_PROGRAM: &str = r"
.decl Edge(x: number, y: number)
.input Edge
.decl Succ(d: number, d1: number)
.input Succ
.decl PathLen(x: number, y: number, d: number)
.decl SP(x: number, y: number, d: number)
.output SP
PathLen(x, y, 1) :- Edge(x, y).
PathLen(x, z, d1) :- PathLen(x, y, d), Edge(y, z), Succ(d, d1).
SP(x, y, min(d)) :- PathLen(x, y, d).
";

/// Result of one negated-filter REACH run.
#[derive(Debug, Clone)]
pub struct NegatedReachResult {
    /// Engine statistics for the run.
    pub stats: RunStats,
    /// Number of tuples in the derived `Reach` relation.
    pub reach_size: usize,
}

/// Result of one shortest-path run.
#[derive(Debug, Clone)]
pub struct ShortestPathResult {
    /// Engine statistics for the run.
    pub stats: RunStats,
    /// Number of `(x, y, min_hops)` tuples in the derived `SP` relation.
    pub sp_size: usize,
}

/// The `Blocked` fact set for `graph`: every `stride`-th vertex id below
/// the graph's id bound. `stride` must be at least 2 so the closure keeps
/// something to derive.
pub fn blocked_nodes(graph: &EdgeList, stride: u32) -> Vec<u32> {
    assert!(stride >= 2, "stride must leave unblocked nodes");
    (0..graph.id_bound()).step_by(stride as usize).collect()
}

/// Builds an engine loaded with `graph` and its `Blocked` filter, ready to
/// run negated-filter REACH.
///
/// # Errors
///
/// Returns engine or device errors.
pub fn prepare_negated_reach(
    device: &Device,
    graph: &EdgeList,
    stride: u32,
    config: EngineConfig,
) -> EngineResult<GpulogEngine> {
    let mut engine = GpulogEngine::from_source(device, NEGATED_REACH_PROGRAM, config)?;
    engine.add_facts_flat("Edge", &graph.to_flat())?;
    engine.add_facts_flat("Blocked", &blocked_nodes(graph, stride))?;
    Ok(engine)
}

/// Runs negated-filter REACH on `graph`, blocking every `stride`-th node.
///
/// # Errors
///
/// Returns engine or device errors (including out-of-memory).
pub fn run_negated_reach(
    device: &Device,
    graph: &EdgeList,
    stride: u32,
    config: EngineConfig,
) -> EngineResult<NegatedReachResult> {
    let mut engine = prepare_negated_reach(device, graph, stride, config)?;
    let stats = engine.run()?;
    Ok(NegatedReachResult {
        reach_size: engine.relation_size("Reach").unwrap_or(0),
        stats,
    })
}

/// Runs shortest-path-via-`min` on `graph` with hop counts bounded by
/// `max_hops` (the extent of the `Succ` table).
///
/// # Errors
///
/// Returns engine or device errors (including out-of-memory).
pub fn run_shortest_path(
    device: &Device,
    graph: &EdgeList,
    max_hops: u32,
    config: EngineConfig,
) -> EngineResult<ShortestPathResult> {
    let mut engine = GpulogEngine::from_source(device, SHORTEST_PATH_PROGRAM, config)?;
    engine.add_facts_flat("Edge", &graph.to_flat())?;
    let succ: Vec<u32> = (1..max_hops).flat_map(|d| [d, d + 1]).collect();
    engine.add_facts_flat("Succ", &succ)?;
    let stats = engine.run()?;
    Ok(ShortestPathResult {
        sp_size: engine.relation_size("SP").unwrap_or(0),
        stats,
    })
}

/// Host reference for the negated-filter closure: BFS that never enters a
/// blocked node.
pub fn reference_negated_closure(graph: &EdgeList, stride: u32) -> Vec<(u32, u32)> {
    use std::collections::{HashSet, VecDeque};
    let blocked: HashSet<u32> = blocked_nodes(graph, stride).into_iter().collect();
    let bound = graph.id_bound() as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); bound];
    for &(a, b) in &graph.edges {
        adj[a as usize].push(b);
    }
    let mut closure = Vec::new();
    for start in 0..bound as u32 {
        if adj[start as usize].is_empty() {
            continue;
        }
        let mut seen: HashSet<u32> = HashSet::new();
        let mut queue: VecDeque<u32> = adj[start as usize]
            .iter()
            .copied()
            .filter(|v| !blocked.contains(v))
            .collect();
        while let Some(v) = queue.pop_front() {
            if seen.insert(v) {
                closure.push((start, v));
                for &next in &adj[v as usize] {
                    if !blocked.contains(&next) && !seen.contains(&next) {
                        queue.push_back(next);
                    }
                }
            }
        }
    }
    closure.sort_unstable();
    closure
}

/// Host reference for bounded shortest paths: BFS hop counts from every
/// source, truncated at `max_hops`.
pub fn reference_shortest_paths(graph: &EdgeList, max_hops: u32) -> Vec<(u32, u32, u32)> {
    use std::collections::{HashMap, VecDeque};
    let bound = graph.id_bound() as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); bound];
    for &(a, b) in &graph.edges {
        adj[a as usize].push(b);
    }
    let mut paths = Vec::new();
    for start in 0..bound as u32 {
        if adj[start as usize].is_empty() {
            continue;
        }
        let mut dist: HashMap<u32, u32> = HashMap::new();
        let mut queue: VecDeque<(u32, u32)> = VecDeque::new();
        queue.push_back((start, 0));
        while let Some((v, d)) = queue.pop_front() {
            if d == max_hops {
                continue;
            }
            for &next in &adj[v as usize] {
                if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(next) {
                    slot.insert(d + 1);
                    queue.push_back((next, d + 1));
                }
            }
        }
        for (&node, &d) in &dist {
            paths.push((start, node, d));
        }
    }
    paths.sort_unstable();
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_datasets::generators::{hub_graph, random_graph};
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn negated_reach_matches_the_host_reference() {
        let d = device();
        for seed in 0..3u64 {
            let g = random_graph(40, 120, seed);
            let result = run_negated_reach(&d, &g, 3, EngineConfig::default()).unwrap();
            let expected = reference_negated_closure(&g, 3);
            assert_eq!(result.reach_size, expected.len(), "seed {seed}");
        }
    }

    #[test]
    fn blocking_nodes_shrinks_the_closure() {
        let d = device();
        let g = hub_graph(80, 3, 7);
        let unfiltered = gpulog_queries_reference_len(&g);
        let filtered = run_negated_reach(&d, &g, 2, EngineConfig::default())
            .unwrap()
            .reach_size;
        assert!(
            filtered < unfiltered,
            "blocking half the nodes must shrink the closure ({filtered} vs {unfiltered})"
        );
    }

    fn gpulog_queries_reference_len(g: &EdgeList) -> usize {
        crate::reach::reference_closure(g).len()
    }

    #[test]
    fn shortest_paths_match_the_host_reference() {
        let d = device();
        let g = random_graph(24, 60, 11);
        let result = run_shortest_path(&d, &g, 5, EngineConfig::default()).unwrap();
        let expected = reference_shortest_paths(&g, 5);
        assert_eq!(result.sp_size, expected.len());
        let mut engine = GpulogEngine::from_source(
            &Device::with_workers(DeviceProfile::nvidia_h100(), 4),
            SHORTEST_PATH_PROGRAM,
            EngineConfig::default(),
        )
        .unwrap();
        engine.add_facts_flat("Edge", &g.to_flat()).unwrap();
        let succ: Vec<u32> = (1..5u32).flat_map(|d| [d, d + 1]).collect();
        engine.add_facts_flat("Succ", &succ).unwrap();
        engine.run().unwrap();
        let got: Vec<(u32, u32, u32)> = engine
            .relation_tuples("SP")
            .unwrap()
            .into_iter()
            .map(|t| (t[0], t[1], t[2]))
            .collect();
        assert_eq!(got, expected, "SP tuples must equal BFS hop counts");
    }

    #[test]
    fn min_keeps_one_distance_per_pair() {
        // Diamond: 0→1→3 and 0→2→3 plus the chord 0→3. SP(0, 3) must be 1.
        let d = device();
        let g = EdgeList::new("diamond", vec![(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        let result = run_shortest_path(&d, &g, 4, EngineConfig::default()).unwrap();
        let mut engine =
            GpulogEngine::from_source(&d, SHORTEST_PATH_PROGRAM, EngineConfig::default()).unwrap();
        engine.add_facts_flat("Edge", &g.to_flat()).unwrap();
        engine
            .add_facts_flat("Succ", &[1u32, 2, 2, 3, 3, 4])
            .unwrap();
        engine.run().unwrap();
        assert!(engine.contains("SP", &[0, 3, 1]), "chord wins for (0, 3)");
        assert!(!engine.contains("SP", &[0, 3, 2]), "min keeps one tuple");
        assert_eq!(result.sp_size, 5); // (0,1,1) (0,2,1) (0,3,1) (1,3,1) (2,3,1)
    }
}
