//! Goal-directed REACH: a point query ("what does *this* node reach?")
//! answered through the magic-sets rewrite instead of the full closure.
//!
//! The program is the *left-recursive* formulation of transitive closure.
//! Under a bound-free goal its magic rewrite degenerates to the ideal
//! case: the only demand rule is the identity (which the rewrite skips),
//! so the magic set is exactly the goal source and the engine materializes
//! one closure row block — `O(|reach(source)|)` tuples instead of the full
//! `O(n²)` closure. The right-recursive formulation in
//! [`crate::reach::REACH_PROGRAM`] stays the full-closure baseline.

use gpulog::{EngineConfig, EngineResult, GpulogEngine, QueryResult, RunStats};
use gpulog_datasets::EdgeList;
use gpulog_device::Device;

/// Soufflé-style source of the goal-directed REACH program (left-recursive,
/// no `?-` goal attached — the source node arrives per call).
pub const GOAL_REACH_PROGRAM: &str = r"
.decl Edge(x: number, y: number)
.input Edge
.decl Reach(x: number, y: number)
.output Reach
Reach(x, y) :- Edge(x, y).
Reach(x, z) :- Reach(x, y), Edge(y, z).
";

/// Result of one goal-directed REACH run.
#[derive(Debug, Clone)]
pub struct GoalReachResult {
    /// Engine statistics for the rewritten program's fixpoint run.
    pub stats: RunStats,
    /// Number of goal answers (nodes reachable from the source).
    pub answer_count: usize,
    /// Tuples materialized by the magic-rewritten run (answers + magic
    /// facts + anything kept fully evaluated) — the number to compare
    /// against the full closure's size.
    pub tuples_materialized: usize,
}

/// Builds an engine loaded with `graph`'s edges, ready for point queries.
///
/// # Errors
///
/// Returns engine or device errors.
pub fn prepare(
    device: &Device,
    graph: &EdgeList,
    config: EngineConfig,
) -> EngineResult<GpulogEngine> {
    let mut engine = GpulogEngine::from_source(device, GOAL_REACH_PROGRAM, config)?;
    engine.add_facts_flat("Edge", &graph.to_flat())?;
    Ok(engine)
}

/// Answers `?- Reach(source, y).` on `graph` through the magic-sets
/// rewrite, materializing only the demanded cone.
///
/// # Errors
///
/// Returns engine or device errors (including out-of-memory).
pub fn run_goal(
    device: &Device,
    graph: &EdgeList,
    source: u32,
    config: EngineConfig,
) -> EngineResult<GoalReachResult> {
    let engine = prepare(device, graph, config)?;
    let result = query(&engine, source)?;
    Ok(GoalReachResult {
        answer_count: result.answers.len(),
        tuples_materialized: result.tuples_materialized,
        stats: result.stats,
    })
}

/// Runs the point query `?- Reach(source, y).` on a prepared engine.
///
/// # Errors
///
/// Returns engine or device errors.
pub fn query(engine: &GpulogEngine, source: u32) -> EngineResult<QueryResult> {
    engine.run_query_with("Reach", &[Some(source), None])
}

/// Reference answer set computed on the host: a single BFS from `source`,
/// returned as canonically sorted `(source, reached)` rows — exactly the
/// byte layout [`QueryResult::answers`] uses.
pub fn reference_reachable_from(graph: &EdgeList, source: u32) -> Vec<(u32, u32)> {
    use std::collections::{HashSet, VecDeque};
    let bound = graph.id_bound() as usize;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); bound.max(source as usize + 1)];
    for &(a, b) in &graph.edges {
        adj[a as usize].push(b);
    }
    let mut seen: HashSet<u32> = HashSet::new();
    let mut queue: VecDeque<u32> = adj
        .get(source as usize)
        .map(|next| next.iter().copied().collect())
        .unwrap_or_default();
    let mut answers = Vec::new();
    while let Some(v) = queue.pop_front() {
        if seen.insert(v) {
            answers.push((source, v));
            if let Some(next) = adj.get(v as usize) {
                for &n in next {
                    if !seen.contains(&n) {
                        queue.push_back(n);
                    }
                }
            }
        }
    }
    answers.sort_unstable();
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach;
    use gpulog_datasets::generators::{hub_graph, random_graph};
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    fn flat(rows: &[(u32, u32)]) -> Vec<u32> {
        rows.iter().flat_map(|&(a, b)| [a, b]).collect()
    }

    #[test]
    fn goal_answers_match_the_host_bfs() {
        let d = device();
        for seed in 0..3u64 {
            let g = random_graph(50, 120, seed);
            for source in [0u32, 7, 23] {
                let result = run_goal(&d, &g, source, EngineConfig::default()).unwrap();
                let expected = reference_reachable_from(&g, source);
                assert_eq!(
                    result.answer_count,
                    expected.len(),
                    "seed {seed} src {source}"
                );
            }
        }
    }

    #[test]
    fn goal_answers_are_byte_identical_to_the_reference_rows() {
        let d = device();
        let g = hub_graph(80, 4, 11);
        let engine = prepare(&d, &g, EngineConfig::default()).unwrap();
        for source in [0u32, 5, 40] {
            let result = query(&engine, source).unwrap();
            let expected = flat(&reference_reachable_from(&g, source));
            assert_eq!(result.answers.as_flat(), &expected[..], "source {source}");
        }
    }

    #[test]
    fn goal_run_materializes_a_fraction_of_the_closure() {
        let d = device();
        let g = hub_graph(120, 4, 17);
        let closure = reach::run(&d, &g, EngineConfig::default())
            .unwrap()
            .reach_size;
        let result = run_goal(&d, &g, 60, EngineConfig::default()).unwrap();
        // On a hub graph everything is mutually reachable: one source's
        // answers are ~n rows while the closure holds ~n² pairs.
        assert!(result.answer_count > 0);
        assert!(
            result.tuples_materialized < closure / 4,
            "magic materialized {} tuples against a {closure}-tuple closure",
            result.tuples_materialized
        );
    }

    #[test]
    fn unreachable_sources_answer_empty() {
        let d = device();
        let g = EdgeList::new("two-islands", vec![(0, 1), (2, 3)]);
        let result = run_goal(&d, &g, 1, EngineConfig::default()).unwrap();
        assert_eq!(result.answer_count, 0);
        assert!(reference_reachable_from(&g, 1).is_empty());
    }
}
