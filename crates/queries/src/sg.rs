//! The Same Generation (SG) query — the paper's Section 2 running example
//! and the n-way-join workload of Table 3.

use gpulog::{EngineConfig, EngineResult, GpulogEngine, RunStats};
use gpulog_datasets::EdgeList;
use gpulog_device::Device;

/// Soufflé-style source of the SG program (paper Section 2).
pub const SG_PROGRAM: &str = r"
.decl Edge(x: number, y: number)
.input Edge
.decl SG(x: number, y: number)
.output SG
SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
";

/// Result of one SG run.
#[derive(Debug, Clone)]
pub struct SgResult {
    /// Engine statistics for the run.
    pub stats: RunStats,
    /// Number of tuples in the derived `SG` relation.
    pub sg_size: usize,
}

/// Builds a GPUlog engine loaded with `graph`'s edges, ready to run SG.
///
/// # Errors
///
/// Returns engine or device errors.
pub fn prepare(
    device: &Device,
    graph: &EdgeList,
    config: EngineConfig,
) -> EngineResult<GpulogEngine> {
    let mut engine = GpulogEngine::from_source(device, SG_PROGRAM, config)?;
    engine.add_facts_flat("Edge", &graph.to_flat())?;
    Ok(engine)
}

/// Runs SG on `graph` with the given configuration.
///
/// # Errors
///
/// Returns engine or device errors (including out-of-memory).
pub fn run(device: &Device, graph: &EdgeList, config: EngineConfig) -> EngineResult<SgResult> {
    let mut engine = prepare(device, graph, config)?;
    let stats = engine.run()?;
    Ok(SgResult {
        sg_size: engine.relation_size("SG").unwrap_or(0),
        stats,
    })
}

/// Reference SG computed on the host by naive iteration to fixpoint.
pub fn reference_sg(graph: &EdgeList) -> Vec<(u32, u32)> {
    use std::collections::HashSet;
    let edges: Vec<(u32, u32)> = graph.edges.clone();
    let mut sg: HashSet<(u32, u32)> = HashSet::new();
    // Base rule.
    for &(p, x) in &edges {
        for &(q, y) in &edges {
            if p == q && x != y {
                sg.insert((x, y));
            }
        }
    }
    // Naive fixpoint of the recursive rule.
    loop {
        let mut added = false;
        let snapshot: Vec<(u32, u32)> = sg.iter().copied().collect();
        for &(a, b) in &snapshot {
            for &(a2, x) in &edges {
                if a2 != a {
                    continue;
                }
                for &(b2, y) in &edges {
                    if b2 == b && x != y && sg.insert((x, y)) {
                        added = true;
                    }
                }
            }
        }
        if !added {
            break;
        }
    }
    let mut out: Vec<(u32, u32)> = sg.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_datasets::generators::{binary_tree, layered_dag, random_graph};
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn sg_matches_reference_on_small_random_graphs() {
        let d = device();
        for seed in 0..3u64 {
            let g = random_graph(24, 40, seed);
            let result = run(&d, &g, EngineConfig::default()).unwrap();
            let expected = reference_sg(&g);
            assert_eq!(result.sg_size, expected.len(), "seed {seed}");
        }
    }

    #[test]
    fn siblings_in_a_binary_tree_are_same_generation() {
        let d = device();
        let g = binary_tree(4);
        let mut engine = prepare(&d, &g, EngineConfig::default()).unwrap();
        engine.run().unwrap();
        // Nodes 1 and 2 are children of the root.
        assert!(engine.contains("SG", &[1, 2]));
        assert!(engine.contains("SG", &[2, 1]));
        // A node is never in the same generation as its parent in a tree.
        assert!(!engine.contains("SG", &[0, 1]));
        // All leaves of a balanced tree are in the same generation.
        assert!(engine.contains("SG", &[7, 14]));
    }

    #[test]
    fn layered_dag_generations_are_layers() {
        let d = device();
        let g = layered_dag(4, 4, 2, 5);
        let result = run(&d, &g, EngineConfig::default()).unwrap();
        let expected = reference_sg(&g);
        assert_eq!(result.sg_size, expected.len());
    }
}
