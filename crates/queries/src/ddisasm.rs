//! A DDisasm-style multi-column-join query (paper Section 3, requirement R3).
//!
//! The paper motivates multi-column join keys with a rule from the Datalog
//! disassembler DDisasm that joins `def_used.for_address` with
//! `arch.memory_access` on two columns (`EA`, `Reg`). This module provides a
//! faithful (simplified) version of that rule so the multi-column-key path
//! of HISA is exercised by a realistic program, not just unit tests.

use gpulog::{EngineConfig, EngineResult, GpulogEngine, RunStats};
use gpulog_device::Device;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The `LOAD` operation code used by the memory-access relation.
pub const LOAD: u32 = 1;
/// The sentinel meaning "no base register".
pub const NONE_REG: u32 = 0;

/// Soufflé-style source of the DDisasm-inspired rule.
pub const DDISASM_PROGRAM: &str = r"
.decl def_used_for_address(ea: number, reg: number, kind: number)
.input def_used_for_address
.decl memory_access(op: number, ea: number, reg: number, base: number)
.input memory_access
.decl value_reg_unsupported(ea: number, reg: number)
.output value_reg_unsupported
value_reg_unsupported(ea, reg) :-
    def_used_for_address(ea, reg, _),
    memory_access(1, ea, reg, base),
    base != 0.
";

/// A synthetic instance of the two input relations.
#[derive(Debug, Clone, Default)]
pub struct DdisasmInput {
    /// `def_used_for_address(ea, reg, kind)` tuples.
    pub def_used: Vec<[u32; 3]>,
    /// `memory_access(op, ea, reg, base)` tuples.
    pub memory_access: Vec<[u32; 4]>,
}

/// Generates a synthetic binary with `instructions` instruction addresses.
pub fn generate(instructions: u32, seed: u64) -> DdisasmInput {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut input = DdisasmInput::default();
    for ea in 0..instructions {
        let reg = rng.gen_range(1..16);
        input.def_used.push([ea, reg, rng.gen_range(0..4)]);
        if rng.gen_bool(0.6) {
            let op = if rng.gen_bool(0.7) { LOAD } else { 2 };
            let base = if rng.gen_bool(0.5) {
                rng.gen_range(1..16)
            } else {
                NONE_REG
            };
            // Half the accesses use the same register as the def (joinable).
            let access_reg = if rng.gen_bool(0.5) {
                reg
            } else {
                rng.gen_range(1..16)
            };
            input.memory_access.push([op, ea, access_reg, base]);
        }
    }
    input
}

/// Runs the rule and returns the engine statistics plus the number of
/// `value_reg_unsupported` tuples derived.
///
/// # Errors
///
/// Returns engine or device errors.
pub fn run(
    device: &Device,
    input: &DdisasmInput,
    config: EngineConfig,
) -> EngineResult<(RunStats, usize)> {
    let mut engine = GpulogEngine::from_source(device, DDISASM_PROGRAM, config)?;
    let def_flat: Vec<u32> = input.def_used.iter().flatten().copied().collect();
    let mem_flat: Vec<u32> = input.memory_access.iter().flatten().copied().collect();
    engine.add_facts_flat("def_used_for_address", &def_flat)?;
    engine.add_facts_flat("memory_access", &mem_flat)?;
    let stats = engine.run()?;
    let size = engine.relation_size("value_reg_unsupported").unwrap_or(0);
    Ok((stats, size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;

    #[test]
    fn multi_column_join_matches_hand_computation() {
        let d = Device::with_workers(DeviceProfile::nvidia_h100(), 4);
        let input = generate(500, 11);
        let (_stats, derived) = run(&d, &input, EngineConfig::default()).unwrap();
        // Reference: join on (ea, reg), op must be LOAD, base must not be NONE.
        let mut expected = std::collections::HashSet::new();
        for d1 in &input.def_used {
            for m in &input.memory_access {
                if m[0] == LOAD && m[1] == d1[0] && m[2] == d1[1] && m[3] != NONE_REG {
                    expected.insert((d1[0], d1[1]));
                }
            }
        }
        assert_eq!(derived, expected.len());
        assert!(derived > 0, "the synthetic binary should trigger the rule");
    }
}
