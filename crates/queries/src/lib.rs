//! # `gpulog-queries`: the paper's benchmark queries
//!
//! Ready-to-run Datalog programs and helpers for the three workloads the
//! paper evaluates — transitive closure ([`reach`]), same generation
//! ([`sg`]), and context-sensitive points-to analysis ([`cspa`]) — plus the
//! DDisasm-style multi-column-join rule the paper uses to motivate
//! requirement R3 ([`ddisasm`]), the stratified workloads
//! (negated-filter REACH, shortest-path-via-`min`) in [`stratified`], and
//! the goal-directed point-query path (magic-sets REACH with a host
//! BFS-from-source reference) in [`goal`].
//!
//! ```
//! use gpulog::EngineConfig;
//! use gpulog_datasets::generators::binary_tree;
//! use gpulog_device::{Device, profile::DeviceProfile};
//! use gpulog_queries::reach;
//!
//! # fn main() -> Result<(), gpulog::EngineError> {
//! let device = Device::new(DeviceProfile::default());
//! let result = reach::run(&device, &binary_tree(4), EngineConfig::default())?;
//! assert!(result.reach_size > 0);
//! # Ok(())
//! # }
//! ```

pub mod cspa;
pub mod ddisasm;
pub mod goal;
pub mod reach;
pub mod sg;
pub mod stratified;

pub use cspa::{CspaResult, CspaSizes, CSPA_PROGRAM};
pub use goal::{GoalReachResult, GOAL_REACH_PROGRAM};
pub use reach::{ReachResult, REACH_PROGRAM};
pub use sg::{SgResult, SG_PROGRAM};
pub use stratified::{
    NegatedReachResult, ShortestPathResult, NEGATED_REACH_PROGRAM, SHORTEST_PATH_PROGRAM,
};

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog::EngineConfig;
    use gpulog_datasets::generators::binary_tree;
    use gpulog_device::{profile::DeviceProfile, Device};

    #[test]
    fn all_three_headline_queries_run_on_one_device() {
        let device = Device::with_workers(DeviceProfile::nvidia_h100(), 4);
        let tree = binary_tree(4);
        let r = reach::run(&device, &tree, EngineConfig::default()).unwrap();
        let s = sg::run(&device, &tree, EngineConfig::default()).unwrap();
        let input = gpulog_datasets::cspa::httpd_like(1.0 / 4000.0);
        let c = cspa::run(&device, &input, EngineConfig::default()).unwrap();
        assert!(r.reach_size > 0);
        assert!(s.sg_size > 0);
        assert!(c.sizes.value_flow > 0);
    }
}
