//! Context-Sensitive Points-to Analysis (CSPA) — the program-analysis
//! workload of Table 4 and Figure 6.
//!
//! The rules are the Graspan dataflow/alias grammar used by the paper (and
//! by RecStep, whose inputs the paper reuses): `ValueFlow` propagates
//! assignments transitively, `MemoryAlias` relates locations reached through
//! matching dereferences, and `ValueAlias` closes value flow over memory
//! aliasing. Context sensitivity in Graspan is achieved by method cloning in
//! the *input* extraction, so the rule set itself is context-insensitive —
//! which is exactly how the paper evaluates it.

use gpulog::{EngineConfig, EngineResult, GpulogEngine, RunStats};
use gpulog_datasets::CspaInput;
use gpulog_device::Device;

/// Soufflé-style source of the Graspan CSPA program.
pub const CSPA_PROGRAM: &str = r"
.decl Assign(dst: number, src: number)
.input Assign
.decl Dereference(ptr: number, val: number)
.input Dereference
.decl ValueFlow(x: number, y: number)
.output ValueFlow
.decl MemoryAlias(x: number, y: number)
.output MemoryAlias
.decl ValueAlias(x: number, y: number)
.output ValueAlias

// Value flow along assignments (reflexive on assignment endpoints).
ValueFlow(y, x) :- Assign(y, x).
ValueFlow(x, x) :- Assign(x, _).
ValueFlow(x, x) :- Assign(_, x).

// Transitive propagation, through memory aliases and directly.
ValueFlow(x, y) :- Assign(x, z), MemoryAlias(z, y).
ValueFlow(x, y) :- ValueFlow(x, z), ValueFlow(z, y).

// Aliasing.
MemoryAlias(x, w) :- Dereference(y, x), ValueAlias(y, z), Dereference(z, w).
MemoryAlias(x, x) :- Assign(_, x).
MemoryAlias(x, x) :- Assign(x, _).
ValueAlias(x, y) :- ValueFlow(z, x), ValueFlow(z, y).
ValueAlias(x, y) :- ValueFlow(z, x), MemoryAlias(z, w), ValueFlow(w, y).
";

/// Sizes of the three derived relations, as reported in Table 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CspaSizes {
    /// `ValueFlow` tuples.
    pub value_flow: usize,
    /// `ValueAlias` tuples.
    pub value_alias: usize,
    /// `MemoryAlias` tuples.
    pub memory_alias: usize,
}

/// Result of one CSPA run.
#[derive(Debug, Clone)]
pub struct CspaResult {
    /// Engine statistics.
    pub stats: RunStats,
    /// Output relation sizes.
    pub sizes: CspaSizes,
}

/// Builds an engine loaded with a CSPA input.
///
/// # Errors
///
/// Returns engine or device errors.
pub fn prepare(
    device: &Device,
    input: &CspaInput,
    config: EngineConfig,
) -> EngineResult<GpulogEngine> {
    let mut engine = GpulogEngine::from_source(device, CSPA_PROGRAM, config)?;
    engine.add_facts_flat("Assign", &input.assign_flat())?;
    engine.add_facts_flat("Dereference", &input.dereference_flat())?;
    Ok(engine)
}

/// Runs CSPA on `input` with the given configuration.
///
/// # Errors
///
/// Returns engine or device errors (including out-of-memory).
pub fn run(device: &Device, input: &CspaInput, config: EngineConfig) -> EngineResult<CspaResult> {
    let mut engine = prepare(device, input, config)?;
    let stats = engine.run()?;
    Ok(CspaResult {
        sizes: CspaSizes {
            value_flow: engine.relation_size("ValueFlow").unwrap_or(0),
            value_alias: engine.relation_size("ValueAlias").unwrap_or(0),
            memory_alias: engine.relation_size("MemoryAlias").unwrap_or(0),
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_datasets::cspa::{generate, CspaShape};
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    fn tiny_input() -> CspaInput {
        CspaInput {
            name: "tiny".into(),
            // b := a; c := b; and *p loads a, *q loads c with p, q aliased
            // through value flow (p := q).
            assign: vec![(1, 0), (2, 1), (4, 5)],
            dereference: vec![(4, 0), (5, 2)],
        }
    }

    #[test]
    fn value_flow_is_transitive_over_assignments() {
        let d = device();
        let mut engine = prepare(&d, &tiny_input(), EngineConfig::default()).unwrap();
        engine.run().unwrap();
        // c := b := a, so a's value flows to c: ValueFlow(2, 0) via
        // ValueFlow(2,1), ValueFlow(1,0) and transitivity.
        assert!(engine.contains("ValueFlow", &[1, 0]));
        assert!(engine.contains("ValueFlow", &[2, 1]));
        assert!(engine.contains("ValueFlow", &[2, 0]));
        // Reflexive endpoints exist.
        assert!(engine.contains("ValueFlow", &[0, 0]));
        assert!(engine.contains("MemoryAlias", &[1, 1]));
    }

    #[test]
    fn dereferences_through_aliased_pointers_alias_their_values() {
        let d = device();
        let mut engine = prepare(&d, &tiny_input(), EngineConfig::default()).unwrap();
        engine.run().unwrap();
        // p (=4) and q (=5): Assign(4, 5) gives ValueFlow(4,5) so
        // ValueAlias(4,5) via common source 5... then Dereference(4,0) and
        // Dereference(5,2) force MemoryAlias(0, 2).
        assert!(engine.contains("ValueAlias", &[4, 5]) || engine.contains("ValueAlias", &[5, 4]));
        assert!(engine.contains("MemoryAlias", &[0, 2]) || engine.contains("MemoryAlias", &[2, 0]));
    }

    #[test]
    fn cspa_runs_on_synthetic_inputs_and_produces_nontrivial_outputs() {
        let d = device();
        let input = generate(
            "unit",
            CspaShape {
                variables: 300,
                assign_edges: 260,
                dereference_edges: 700,
                chain_length: 8,
                deref_targets: 12,
                seed: 3,
            },
        );
        let result = run(&d, &input, EngineConfig::default()).unwrap();
        assert!(result.sizes.value_flow >= input.assign_len());
        assert!(result.sizes.value_alias > 0);
        assert!(result.sizes.memory_alias > 0);
        assert!(result.stats.iterations > 1);
    }
}
