//! # gpulog-serve: the concurrent serving layer
//!
//! The engine computes fixpoints; this crate serves them. It implements the
//! asymmetric reader/writer pattern the north star calls for: any number of
//! cheap reader threads answer point lookups, key-range scans, and
//! membership probes against an immutable [`FixpointSnapshot`], while one
//! writer thread owns the [`GpulogEngine`], grows the extensional database,
//! and materializes the next fixpoint.
//!
//! The synchronization is deliberately minimal. Readers share a
//! [`ServeHandle`] — a clonable handle over an `RwLock<FixpointSnapshot>`
//! whose critical section is a single `Arc` clone (two reference-count
//! bumps); every query then runs lock-free against the reader's own
//! snapshot. The writer re-runs the engine *outside* any lock — readers
//! keep serving the previous generation the whole time — and swaps the new
//! snapshot in with one short write-lock ([`ServeWriter::refresh`]). A
//! reader therefore always observes exactly one complete fixpoint, never a
//! torn mix of two; which one depends only on whether it cloned before or
//! after the swap.

use gpulog::{EngineResult, FixpointSnapshot, GpulogEngine, RunStats};
use gpulog_hisa::TupleBatch;
use std::sync::{Arc, RwLock};

/// A clonable, thread-safe handle serving queries from the latest published
/// fixpoint snapshot. Obtained from [`ServeWriter::handle`]; clone one per
/// reader thread.
///
/// Every query clones the current snapshot under a read lock (an `Arc`
/// bump) and answers from that immutable view, so a concurrent
/// [`ServeWriter::refresh`] never blocks readers for longer than the swap
/// itself and never tears a result.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    latest: Arc<RwLock<FixpointSnapshot>>,
}

impl ServeHandle {
    /// The latest published snapshot. Hold it to answer several queries
    /// from one consistent fixpoint; re-fetch to observe a newer one.
    pub fn latest(&self) -> FixpointSnapshot {
        self.latest
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Generation of the latest published snapshot.
    pub fn generation(&self) -> u64 {
        self.latest().generation()
    }

    /// Membership probe against the latest snapshot.
    pub fn contains(&self, relation: &str, tuple: &[u32]) -> bool {
        self.latest().contains(relation, tuple)
    }

    /// Point (or prefix) lookup against the latest snapshot: every tuple
    /// whose leading columns equal `prefix`, in canonical order. `None`
    /// for unknown relations.
    pub fn point_lookup(&self, relation: &str, prefix: &[u32]) -> Option<Vec<Vec<u32>>> {
        self.latest().lookup(relation, prefix)
    }

    /// Key-range scan against the latest snapshot: every tuple in
    /// `lo..hi` (lexicographic, `lo` inclusive, `hi` exclusive). `None`
    /// for unknown relations.
    pub fn range_scan(&self, relation: &str, lo: &[u32], hi: &[u32]) -> Option<Vec<Vec<u32>>> {
        self.latest().scan_range(relation, lo, hi)
    }

    /// Number of tuples in a relation of the latest snapshot.
    pub fn relation_size(&self, relation: &str) -> Option<usize> {
        self.latest().relation_size(relation)
    }

    /// Goal-shaped lookup against the latest snapshot: every tuple whose
    /// columns match `bindings` (`Some(c)` binds a column to `c`, `None`
    /// leaves it free), in canonical order. Unlike
    /// [`ServeHandle::point_lookup`] the bound columns need not be a
    /// prefix — `[None, Some(t)]` answers "who reaches `t`?". A leading
    /// run of bound columns is still served through the snapshot's sorted
    /// index; fully unbound trailing columns cost a filter scan. `None`
    /// for unknown relations.
    pub fn goal_lookup(&self, relation: &str, bindings: &[Option<u32>]) -> Option<Vec<Vec<u32>>> {
        let snapshot = self.latest();
        if snapshot.arity(relation)? != bindings.len() {
            return Some(Vec::new());
        }
        let prefix: Vec<u32> = bindings.iter().map_while(|b| *b).collect();
        let candidates = snapshot.lookup(relation, &prefix)?;
        Some(
            candidates
                .into_iter()
                .filter(|row| {
                    bindings
                        .iter()
                        .zip(row.iter())
                        .all(|(b, v)| b.is_none_or(|c| c == *v))
                })
                .collect(),
        )
    }
}

/// The writer side of the serving layer: owns the engine, stages facts, and
/// publishes each completed fixpoint to every [`ServeHandle`].
#[derive(Debug)]
pub struct ServeWriter {
    engine: GpulogEngine,
    latest: Arc<RwLock<FixpointSnapshot>>,
}

impl ServeWriter {
    /// Wraps an engine for serving. Runs it to a first fixpoint if it has
    /// not run yet, then publishes the initial snapshot.
    ///
    /// # Errors
    ///
    /// Returns engine errors from the initial run.
    pub fn new(mut engine: GpulogEngine) -> EngineResult<Self> {
        if !engine.has_run() {
            engine.run()?;
        }
        let snapshot = engine.snapshot()?;
        Ok(ServeWriter {
            engine,
            latest: Arc::new(RwLock::new(snapshot)),
        })
    }

    /// A reader handle bound to this writer's published snapshot. Clone it
    /// freely across threads.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            latest: Arc::clone(&self.latest),
        }
    }

    /// The wrapped engine (for inspection; mutating queries go through
    /// [`ServeWriter::insert_facts_batch`] and [`ServeWriter::refresh`]).
    pub fn engine(&self) -> &GpulogEngine {
        &self.engine
    }

    /// Stages extensional facts for the next fixpoint. Staged facts are
    /// invisible to readers until [`ServeWriter::refresh`] publishes the
    /// re-run's snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog::EngineError::BadFacts`] for unknown relations or
    /// arity mismatches.
    pub fn insert_facts_batch(&mut self, relation: &str, batch: &TupleBatch) -> EngineResult<()> {
        self.engine.insert_facts_batch(relation, batch)
    }

    /// Answers a goal-directed point query through the engine's magic-sets
    /// rewrite ([`GpulogEngine::run_query_with`]): `Some(c)` binds a
    /// column, `None` leaves it free. The rewritten program evaluates in a
    /// private sub-engine over the writer's current extensional database —
    /// including facts staged but not yet [`ServeWriter::refresh`]ed — so
    /// this never blocks readers, mutates the engine, or publishes a
    /// snapshot. Use it when the demanded cone is far smaller than the
    /// closure a refresh would materialize.
    ///
    /// # Errors
    ///
    /// Returns goal errors ([`gpulog::EngineError::UnknownQueryRelation`],
    /// [`gpulog::EngineError::QueryArityMismatch`]) and engine errors from
    /// the rewritten run.
    pub fn goal_query(
        &self,
        relation: &str,
        bindings: &[Option<u32>],
    ) -> EngineResult<gpulog::QueryResult> {
        self.engine.run_query_with(relation, bindings)
    }

    /// Materializes the next fixpoint from the staged facts and publishes
    /// it. The engine runs outside any lock — readers keep serving the
    /// previous snapshot throughout — and the publish itself is one short
    /// write-locked swap.
    ///
    /// # Errors
    ///
    /// Returns engine errors from the run; the previously published
    /// snapshot stays in place if the run fails.
    pub fn refresh(&mut self) -> EngineResult<RunStats> {
        let stats = self.engine.run()?;
        let snapshot = self.engine.snapshot()?;
        *self
            .latest
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = snapshot;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog::EngineConfig;
    use gpulog_device::profile::DeviceProfile;
    use gpulog_device::Device;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    const REACH: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl Reach(x: number, y: number)
        .output Reach
        Reach(x, y) :- Edge(x, y).
        Reach(x, y) :- Edge(x, z), Reach(z, y).
    ";

    fn chain_engine(nodes: u32) -> GpulogEngine {
        let d = Device::with_workers(DeviceProfile::nvidia_h100(), 4);
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        let edges: Vec<[u32; 2]> = (0..nodes - 1).map(|i| [i, i + 1]).collect();
        e.add_facts("Edge", edges).unwrap();
        e
    }

    #[test]
    fn writer_runs_the_first_fixpoint_and_serves_it() {
        let writer = ServeWriter::new(chain_engine(4)).unwrap();
        let handle = writer.handle();
        assert_eq!(handle.generation(), 1);
        assert_eq!(handle.relation_size("Reach"), Some(6));
        assert!(handle.contains("Reach", &[0, 3]));
        assert!(!handle.contains("Reach", &[3, 0]));
        assert_eq!(
            handle.point_lookup("Reach", &[0]).unwrap(),
            vec![vec![0, 1], vec![0, 2], vec![0, 3]]
        );
        assert_eq!(
            handle.range_scan("Reach", &[1], &[2, 4]).unwrap(),
            vec![vec![1, 2], vec![1, 3], vec![2, 3]]
        );
        assert!(handle.point_lookup("Nope", &[0]).is_none());
    }

    #[test]
    fn refresh_publishes_the_next_generation_atomically() {
        let mut writer = ServeWriter::new(chain_engine(3)).unwrap();
        let handle = writer.handle();
        let before = handle.latest();
        assert_eq!(before.relation_size("Reach"), Some(3));
        writer
            .insert_facts_batch("Edge", &TupleBatch::from_rows(2, [[2u32, 3]]))
            .unwrap();
        // Staged but unpublished: readers still see generation 1.
        assert_eq!(handle.generation(), 1);
        writer.refresh().unwrap();
        assert_eq!(handle.generation(), 2);
        assert_eq!(handle.relation_size("Reach"), Some(6));
        // A snapshot taken before the swap holds its own fixpoint.
        assert_eq!(before.relation_size("Reach"), Some(3));
    }

    /// N reader threads hammer point lookups while the writer publishes a
    /// series of fixpoints; every observation must be a complete fixpoint
    /// of *some* generation (size matches that generation exactly).
    #[test]
    fn concurrent_readers_always_observe_a_complete_fixpoint() {
        let readers = 4;
        // Chain sizes per generation: 4, then grow by one edge each round.
        let mut writer = ServeWriter::new(chain_engine(4)).unwrap();
        // Reach size of a chain with n nodes is n*(n-1)/2.
        let expected_size = |gen: u64| {
            let nodes = 3 + gen; // generation 1 ↔ 4 nodes
            (nodes * (nodes - 1) / 2) as usize
        };
        let stop = Arc::new(AtomicBool::new(false));
        let handle = writer.handle();
        let threads: Vec<_> = (0..readers)
            .map(|_| {
                let handle = handle.clone();
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut observed = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = handle.latest();
                        let gen = snap.generation();
                        assert_eq!(
                            snap.relation_size("Reach"),
                            Some(expected_size(gen)),
                            "torn snapshot at generation {gen}"
                        );
                        // The chain head reaches everything in this
                        // generation's chain (last node 2 + gen) and
                        // nothing further.
                        let frontier = (2 + gen) as u32;
                        assert!(snap.contains("Reach", &[0, frontier]));
                        assert!(!snap.contains("Reach", &[0, frontier + 1]));
                        observed += 1;
                    }
                    observed
                })
            })
            .collect();
        for round in 0..4u32 {
            let next = 4 + round;
            writer
                .insert_facts_batch("Edge", &TupleBatch::from_rows(2, [[next - 1, next]]))
                .unwrap();
            writer.refresh().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for t in threads {
            assert!(t.join().unwrap() > 0, "reader made no observations");
        }
        assert_eq!(handle.generation(), 5);
    }

    #[test]
    fn goal_lookup_serves_non_prefix_bindings_from_the_snapshot() {
        let writer = ServeWriter::new(chain_engine(5)).unwrap();
        let handle = writer.handle();
        // Prefix-shaped goal: same answer as point_lookup.
        assert_eq!(
            handle.goal_lookup("Reach", &[Some(0), None]).unwrap(),
            handle.point_lookup("Reach", &[0]).unwrap()
        );
        // Non-prefix goal: "who reaches node 3?".
        assert_eq!(
            handle.goal_lookup("Reach", &[None, Some(3)]).unwrap(),
            vec![vec![0, 3], vec![1, 3], vec![2, 3]]
        );
        // Fully bound and fully free goals behave as probe and scan.
        assert_eq!(
            handle.goal_lookup("Reach", &[Some(1), Some(2)]).unwrap(),
            vec![vec![1, 2]]
        );
        assert_eq!(
            handle.goal_lookup("Reach", &[None, None]).unwrap().len(),
            10
        );
        // Unknown relations and arity mismatches stay well-behaved.
        assert!(handle.goal_lookup("Nope", &[Some(0)]).is_none());
        assert!(handle.goal_lookup("Reach", &[Some(0)]).unwrap().is_empty());
    }

    #[test]
    fn goal_query_runs_magic_sets_without_publishing() {
        let mut writer = ServeWriter::new(chain_engine(5)).unwrap();
        let handle = writer.handle();
        let result = writer.goal_query("Reach", &[Some(1), None]).unwrap();
        assert_eq!(result.answers.as_flat(), &[1, 2, 1, 3, 1, 4]);
        // The goal run agrees with the published snapshot's own view.
        let from_snapshot: Vec<u32> = handle
            .goal_lookup("Reach", &[Some(1), None])
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(result.answers.as_flat(), &from_snapshot[..]);
        // Staged-but-unpublished facts are visible to goal queries but not
        // to readers until refresh.
        writer
            .insert_facts_batch("Edge", &TupleBatch::from_rows(2, [[4u32, 5]]))
            .unwrap();
        let staged = writer.goal_query("Reach", &[Some(1), None]).unwrap();
        assert_eq!(staged.answers.as_flat(), &[1, 2, 1, 3, 1, 4, 1, 5]);
        assert_eq!(handle.generation(), 1);
        assert!(!handle.contains("Reach", &[1, 5]));
        writer.refresh().unwrap();
        assert!(handle.contains("Reach", &[1, 5]));
    }
}
