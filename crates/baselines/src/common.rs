//! Shared result types for the comparator engines.

use std::time::Duration;

/// Outcome of running a baseline engine on one workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineOutcome {
    /// Engine name for reporting (e.g. `"Souffle-like (CPU)"`).
    pub engine: String,
    /// Wall-clock time of the run, if it completed.
    pub elapsed: Option<Duration>,
    /// Number of derived tuples, if the run completed.
    pub tuples: Option<usize>,
    /// Peak memory use in bytes observed by the engine's own accounting.
    pub peak_bytes: usize,
    /// Whether the run aborted with an out-of-memory condition — the `OOM`
    /// rows of the paper's Tables 2 and 3.
    pub out_of_memory: bool,
}

impl BaselineOutcome {
    /// A completed run.
    pub fn completed(engine: &str, elapsed: Duration, tuples: usize, peak_bytes: usize) -> Self {
        BaselineOutcome {
            engine: engine.to_string(),
            elapsed: Some(elapsed),
            tuples: Some(tuples),
            peak_bytes,
            out_of_memory: false,
        }
    }

    /// An out-of-memory abort.
    pub fn oom(engine: &str, peak_bytes: usize) -> Self {
        BaselineOutcome {
            engine: engine.to_string(),
            elapsed: None,
            tuples: None,
            peak_bytes,
            out_of_memory: true,
        }
    }

    /// Seconds, or `None` when the run did not complete.
    pub fn seconds(&self) -> Option<f64> {
        self.elapsed.map(|d| d.as_secs_f64())
    }

    /// Cell text for the result tables: seconds to two decimals, or `OOM`.
    pub fn cell(&self) -> String {
        match self.seconds() {
            Some(s) => format!("{s:.3}"),
            None => "OOM".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_outcome_reports_seconds_and_cell() {
        let o = BaselineOutcome::completed("x", Duration::from_millis(1500), 10, 64);
        assert_eq!(o.seconds(), Some(1.5));
        assert_eq!(o.cell(), "1.500");
        assert!(!o.out_of_memory);
    }

    #[test]
    fn oom_outcome_renders_oom_cell() {
        let o = BaselineOutcome::oom("x", 1024);
        assert_eq!(o.cell(), "OOM");
        assert_eq!(o.seconds(), None);
        assert!(o.out_of_memory);
    }
}
