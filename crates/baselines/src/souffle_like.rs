//! A Soufflé-style CPU comparator engine.
//!
//! Soufflé evaluates semi-naïvely over B-tree-indexed relations, fanning
//! rule evaluation out over OpenMP threads but serializing tuple
//! deduplication/insertion into the shared indices — the paper measures
//! 77.8% of REACH time in that serialized phase at 32 threads. This module
//! reproduces that strategy: ordered (B-tree) indices, parallel join
//! workers over partitions of the delta, and a single-threaded merge of the
//! per-worker outputs into the indices.
//!
//! It is a *strategy* reproduction, not a reimplementation of Soufflé's
//! compiler; the three benchmark queries are provided as directly callable
//! functions, the way the paper's harness invokes pre-compiled Soufflé
//! binaries.

use crate::common::BaselineOutcome;
use gpulog_datasets::{CspaInput, EdgeList};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// A binary relation with a B-tree index per bound column.
#[derive(Debug, Default, Clone)]
struct BinaryRelation {
    /// All tuples (the "full" set).
    all: BTreeSet<(u32, u32)>,
    /// Index: first column -> second columns.
    by_first: BTreeMap<u32, Vec<u32>>,
    /// Index: second column -> first columns.
    by_second: BTreeMap<u32, Vec<u32>>,
}

impl BinaryRelation {
    fn insert(&mut self, t: (u32, u32)) -> bool {
        if self.all.insert(t) {
            self.by_first.entry(t.0).or_default().push(t.1);
            self.by_second.entry(t.1).or_default().push(t.0);
            true
        } else {
            false
        }
    }

    fn len(&self) -> usize {
        self.all.len()
    }

    fn seconds_for_first(&self, first: u32) -> &[u32] {
        self.by_first.get(&first).map(Vec::as_slice).unwrap_or(&[])
    }

    fn firsts_for_second(&self, second: u32) -> &[u32] {
        self.by_second
            .get(&second)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Rough memory estimate: tuples stored once in the set and once per
    /// index, at 8 bytes per tuple plus B-tree/Vec overhead.
    fn approx_bytes(&self) -> usize {
        self.len() * (8 + 16 + 16) + self.by_first.len() * 48 + self.by_second.len() * 48
    }
}

/// Runs one semi-naïve round: `workers` threads each process a slice of the
/// delta and return their derived tuples; the caller merges serially.
fn parallel_derive<F>(delta: &[(u32, u32)], workers: usize, derive: F) -> Vec<(u32, u32)>
where
    F: Fn(&(u32, u32), &mut Vec<(u32, u32)>) + Sync,
{
    if delta.is_empty() {
        return Vec::new();
    }
    let workers = workers.max(1).min(delta.len());
    let chunk = delta.len().div_ceil(workers);
    let mut outputs: Vec<Vec<(u32, u32)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in delta.chunks(chunk) {
            let derive = &derive;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                for t in part {
                    derive(t, &mut local);
                }
                local
            }));
        }
        for h in handles {
            outputs.push(h.join().expect("baseline worker panicked"));
        }
    });
    outputs.concat()
}

/// REACH (transitive closure) with the Soufflé strategy.
pub fn reach(graph: &EdgeList, workers: usize) -> BaselineOutcome {
    let start = Instant::now();
    let mut edges = BinaryRelation::default();
    for &e in &graph.edges {
        edges.insert(e);
    }
    let mut reach = BinaryRelation::default();
    let mut delta: Vec<(u32, u32)> = Vec::new();
    for &e in &graph.edges {
        if reach.insert(e) {
            delta.push(e);
        }
    }
    let mut peak = edges.approx_bytes() + reach.approx_bytes();
    while !delta.is_empty() {
        // Reach(x, y) :- Edge(x, z), Reach(z, y): join delta Reach on its
        // first column against Edge's second column.
        let derived = parallel_derive(&delta, workers, |&(z, y), out| {
            for &x in edges.firsts_for_second(z) {
                out.push((x, y));
            }
        });
        // Serialized deduplication/insertion (the Soufflé bottleneck).
        let mut next = Vec::new();
        for t in derived {
            if reach.insert(t) {
                next.push(t);
            }
        }
        peak = peak.max(edges.approx_bytes() + reach.approx_bytes() + next.len() * 8);
        delta = next;
    }
    BaselineOutcome::completed("Souffle-like (CPU)", start.elapsed(), reach.len(), peak)
}

/// SG (same generation) with the Soufflé strategy.
pub fn sg(graph: &EdgeList, workers: usize) -> BaselineOutcome {
    let start = Instant::now();
    let mut edges = BinaryRelation::default();
    for &e in &graph.edges {
        edges.insert(e);
    }
    let mut sg = BinaryRelation::default();
    let mut delta: Vec<(u32, u32)> = Vec::new();
    // SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
    for (&p, xs) in &edges.by_first {
        let _ = p;
        for &x in xs {
            for &y in xs {
                if x != y && sg.insert((x, y)) {
                    delta.push((x, y));
                }
            }
        }
    }
    let mut peak = edges.approx_bytes() + sg.approx_bytes();
    while !delta.is_empty() {
        // SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
        let derived = parallel_derive(&delta, workers, |&(a, b), out| {
            for &x in edges.seconds_for_first(a) {
                for &y in edges.seconds_for_first(b) {
                    if x != y {
                        out.push((x, y));
                    }
                }
            }
        });
        let mut next = Vec::new();
        for t in derived {
            if sg.insert(t) {
                next.push(t);
            }
        }
        peak = peak.max(edges.approx_bytes() + sg.approx_bytes() + next.len() * 8);
        delta = next;
    }
    BaselineOutcome::completed("Souffle-like (CPU)", start.elapsed(), sg.len(), peak)
}

/// Sizes of the CSPA output relations computed by the baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CspaBaselineSizes {
    /// `ValueFlow` tuples.
    pub value_flow: usize,
    /// `ValueAlias` tuples.
    pub value_alias: usize,
    /// `MemoryAlias` tuples.
    pub memory_alias: usize,
}

/// CSPA (Graspan grammar) with the Soufflé strategy. Returns the outcome and
/// the individual output-relation sizes so agreement with GPUlog can be
/// checked relation by relation.
pub fn cspa(input: &CspaInput, workers: usize) -> (BaselineOutcome, CspaBaselineSizes) {
    let start = Instant::now();
    let mut assign = BinaryRelation::default();
    for &e in &input.assign {
        assign.insert(e);
    }
    let mut deref = BinaryRelation::default();
    for &e in &input.dereference {
        deref.insert(e);
    }

    let mut value_flow = BinaryRelation::default();
    let mut memory_alias = BinaryRelation::default();
    let mut value_alias = BinaryRelation::default();

    // Non-recursive seeding.
    let mut vf_delta = Vec::new();
    let mut ma_delta = Vec::new();
    let mut va_delta: Vec<(u32, u32)> = Vec::new();
    for &(y, x) in &assign.all {
        for t in [(y, x), (x, x), (y, y)] {
            if value_flow.insert(t) {
                vf_delta.push(t);
            }
        }
        for t in [(x, x), (y, y)] {
            if memory_alias.insert(t) {
                ma_delta.push(t);
            }
        }
    }

    let mut peak = 0usize;
    loop {
        let mut new_tuples: Vec<(u8, (u32, u32))> = Vec::new();

        // ValueFlow(x, y) :- Assign(x, z), MemoryAlias(z, y).
        new_tuples.extend(
            parallel_derive(&ma_delta, workers, |&(z, y), out| {
                for &x in assign.firsts_for_second(z) {
                    out.push((x, y));
                }
            })
            .into_iter()
            .map(|t| (0u8, t)),
        );
        // ValueFlow(x, y) :- ValueFlow(x, z), ValueFlow(z, y).  (delta on either side)
        new_tuples.extend(
            parallel_derive(&vf_delta, workers, |&(x, z), out| {
                for &y in value_flow.seconds_for_first(z) {
                    out.push((x, y));
                }
            })
            .into_iter()
            .map(|t| (0u8, t)),
        );
        new_tuples.extend(
            parallel_derive(&vf_delta, workers, |&(z, y), out| {
                for &x in value_flow.firsts_for_second(z) {
                    out.push((x, y));
                }
            })
            .into_iter()
            .map(|t| (0u8, t)),
        );
        // MemoryAlias(x, w) :- Dereference(y, x), ValueAlias(y, z), Dereference(z, w).
        new_tuples.extend(
            parallel_derive(&va_delta, workers, |&(y, z), out| {
                for &x in deref.seconds_for_first(y) {
                    for &w in deref.seconds_for_first(z) {
                        out.push((x, w));
                    }
                }
            })
            .into_iter()
            .map(|t| (1u8, t)),
        );
        // ValueAlias(x, y) :- ValueFlow(z, x), ValueFlow(z, y).
        new_tuples.extend(
            parallel_derive(&vf_delta, workers, |&(z, x), out| {
                for &y in value_flow.seconds_for_first(z) {
                    out.push((x, y));
                    out.push((y, x));
                }
            })
            .into_iter()
            .map(|t| (2u8, t)),
        );
        // ValueAlias(x, y) :- ValueFlow(z, x), MemoryAlias(z, w), ValueFlow(w, y).
        new_tuples.extend(
            parallel_derive(&ma_delta, workers, |&(z, w), out| {
                for &x in value_flow.seconds_for_first(z) {
                    for &y in value_flow.seconds_for_first(w) {
                        out.push((x, y));
                    }
                }
            })
            .into_iter()
            .map(|t| (2u8, t)),
        );
        new_tuples.extend(
            parallel_derive(&vf_delta, workers, |&(z, x), out| {
                for &w in memory_alias.seconds_for_first(z) {
                    for &y in value_flow.seconds_for_first(w) {
                        out.push((x, y));
                    }
                }
            })
            .into_iter()
            .map(|t| (2u8, t)),
        );
        new_tuples.extend(
            parallel_derive(&vf_delta, workers, |&(w, y), out| {
                for &z in memory_alias.firsts_for_second(w) {
                    for &x in value_flow.seconds_for_first(z) {
                        out.push((x, y));
                    }
                }
            })
            .into_iter()
            .map(|t| (2u8, t)),
        );

        // Serialized deduplication / insertion.
        vf_delta.clear();
        ma_delta.clear();
        va_delta.clear();
        for (rel, t) in new_tuples {
            match rel {
                0 => {
                    if value_flow.insert(t) {
                        vf_delta.push(t);
                    }
                }
                1 => {
                    if memory_alias.insert(t) {
                        ma_delta.push(t);
                    }
                }
                _ => {
                    if value_alias.insert(t) {
                        va_delta.push(t);
                    }
                }
            }
        }
        peak = peak.max(
            assign.approx_bytes()
                + deref.approx_bytes()
                + value_flow.approx_bytes()
                + memory_alias.approx_bytes()
                + value_alias.approx_bytes(),
        );
        if vf_delta.is_empty() && ma_delta.is_empty() && va_delta.is_empty() {
            break;
        }
    }

    let sizes = CspaBaselineSizes {
        value_flow: value_flow.len(),
        value_alias: value_alias.len(),
        memory_alias: memory_alias.len(),
    };
    (
        BaselineOutcome::completed(
            "Souffle-like (CPU)",
            start.elapsed(),
            sizes.value_flow + sizes.value_alias + sizes.memory_alias,
            peak,
        ),
        sizes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_datasets::generators::{binary_tree, random_graph};

    #[test]
    fn reach_on_a_chain_counts_pairs() {
        let g = EdgeList::new("chain", vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let out = reach(&g, 2);
        assert_eq!(out.tuples, Some(10));
        assert!(!out.out_of_memory);
    }

    #[test]
    fn reach_is_worker_count_invariant() {
        let g = random_graph(80, 300, 4);
        assert_eq!(reach(&g, 1).tuples, reach(&g, 8).tuples);
    }

    #[test]
    fn sg_finds_siblings_in_a_tree() {
        let g = binary_tree(4);
        let out = sg(&g, 4);
        // All nodes at the same depth are in the same generation; depth 1 has
        // 2 nodes, depth 2 has 4, depth 3 has 8: 2 + 12 + 56 ordered pairs.
        assert_eq!(out.tuples, Some(2 + 12 + 56));
    }

    #[test]
    fn cspa_produces_consistent_sizes() {
        let input = gpulog_datasets::cspa::httpd_like(1.0 / 4000.0);
        let (outcome, sizes) = cspa(&input, 2);
        assert!(!outcome.out_of_memory);
        assert!(sizes.value_flow >= input.assign_len());
        assert!(sizes.value_alias > 0);
        assert_eq!(
            outcome.tuples,
            Some(sizes.value_flow + sizes.value_alias + sizes.memory_alias)
        );
    }
}
