//! A GPUJoin-style comparator (Shovon et al., USENIX ATC'23).
//!
//! GPUJoin stores relations directly inside open-addressing hash tables
//! (whole tuples as key/value pairs), probes them with linear probing, and
//! fuses delta population with the merge: the non-deduplicated delta is
//! concatenated onto the full relation, which is then re-deduplicated by a
//! full scan every iteration. The paper attributes GPUJoin's higher memory
//! footprint (two OOMs in Table 2) to the low load factor such tables need
//! and its slowdown to the repeated full-relation deduplication. Both
//! behaviours are reproduced here, with an explicit memory budget standing
//! in for the GPU's VRAM capacity.

use crate::common::BaselineOutcome;
use gpulog_datasets::EdgeList;
use std::time::Instant;

const ENGINE: &str = "GPUJoin-like";
/// The load factor GPUJoin-style tuple tables are built at.
pub const GPUJOIN_LOAD_FACTOR: f64 = 0.5;

/// An open-addressing table storing whole `(u32, u32)` tuples, keyed (and
/// range-probed) on the first column.
#[derive(Debug)]
struct TupleHashTable {
    slots: Vec<Option<(u32, u32)>>,
    len: usize,
}

impl TupleHashTable {
    fn with_capacity_for(tuples: usize) -> Self {
        let capacity =
            ((tuples.max(4) as f64 / GPUJOIN_LOAD_FACTOR).ceil() as usize).next_power_of_two();
        TupleHashTable {
            slots: vec![None; capacity],
            len: 0,
        }
    }

    fn bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Option<(u32, u32)>>()
    }

    fn hash(key: u32, mask: usize) -> usize {
        (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize & mask
    }

    fn insert(&mut self, tuple: (u32, u32)) {
        let mask = self.slots.len() - 1;
        let mut slot = Self::hash(tuple.0, mask);
        loop {
            match self.slots[slot] {
                None => {
                    self.slots[slot] = Some(tuple);
                    self.len += 1;
                    return;
                }
                Some(existing) if existing == tuple => return,
                Some(_) => slot = (slot + 1) & mask,
            }
        }
    }

    /// All tuples whose first column equals `key` (linear probing from the
    /// key's home slot, as GPUJoin does).
    fn probe(&self, key: u32, out: &mut Vec<(u32, u32)>) {
        let mask = self.slots.len() - 1;
        let mut slot = Self::hash(key, mask);
        loop {
            match self.slots[slot] {
                None => return,
                Some(t) => {
                    if t.0 == key {
                        out.push(t);
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
    }
}

/// REACH with the GPUJoin strategy, under a VRAM-style memory budget.
///
/// Returns an `OOM` outcome (matching the paper's Table 2 rows) when the
/// combined size of the tuple hash tables and the fused merge buffer
/// exceeds `memory_limit_bytes`.
pub fn reach(graph: &EdgeList, memory_limit_bytes: usize) -> BaselineOutcome {
    let start = Instant::now();
    // Edge relation lives in a tuple hash table keyed on the *second* column
    // (the join Edge(x, z) ⋈ Reach(z, y) probes edges by destination).
    let mut edges_by_dst = TupleHashTable::with_capacity_for(graph.len());
    for &(a, b) in &graph.edges {
        edges_by_dst.insert((b, a)); // keyed on destination
    }
    // The full Reach relation is kept as a flat (sorted, deduplicated) array,
    // as GPUJoin's reachability specialization does; a shadow hash set of
    // the pre-merge contents is what the fused merge/dedup scans against.
    let mut full: Vec<(u32, u32)> = graph.edges.clone();
    full.sort_unstable();
    full.dedup();
    let mut seen: std::collections::HashSet<(u32, u32)> = full.iter().copied().collect();
    let mut delta: Vec<(u32, u32)> = full.clone();
    let mut peak = edges_by_dst.bytes() + full.len() * 8;
    if peak > memory_limit_bytes {
        return BaselineOutcome::oom(ENGINE, peak);
    }

    while !delta.is_empty() {
        // Join: for each delta Reach(z, y), probe edges keyed on z.
        let mut derived: Vec<(u32, u32)> = Vec::new();
        let mut probe_buf = Vec::new();
        for &(z, y) in &delta {
            probe_buf.clear();
            edges_by_dst.probe(z, &mut probe_buf);
            for &(_, x) in &probe_buf {
                derived.push((x, y));
            }
        }
        // Fused merge + dedup: concatenate the raw (non-deduplicated) result
        // onto full, then re-sort and re-deduplicate the whole relation —
        // a full-relation rescan every iteration, which is exactly the cost
        // the paper's separate delta-population phase avoids.
        let merge_buffer_bytes = (full.len() + derived.len()) * 8 * 2;
        peak = peak.max(edges_by_dst.bytes() + merge_buffer_bytes);
        if peak > memory_limit_bytes {
            return BaselineOutcome::oom(ENGINE, peak);
        }
        full.extend_from_slice(&derived);
        full.sort_unstable();
        full.dedup();
        // Next delta: derived tuples that were not present before this merge.
        delta = derived.into_iter().filter(|t| seen.insert(*t)).collect();
        delta.sort_unstable();
        delta.dedup();
        peak = peak.max(edges_by_dst.bytes() + full.len() * 8 + delta.len() * 8 + seen.len() * 24);
        if peak > memory_limit_bytes {
            return BaselineOutcome::oom(ENGINE, peak);
        }
    }
    BaselineOutcome::completed(ENGINE, start.elapsed(), full.len(), peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_datasets::generators::{binary_tree, random_graph};

    #[test]
    fn reach_on_a_chain_matches_expected_count() {
        let g = EdgeList::new("chain", vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        let out = reach(&g, usize::MAX);
        assert_eq!(out.tuples, Some(10));
    }

    #[test]
    fn reach_agrees_with_souffle_like_baseline() {
        for seed in 0..3 {
            let g = random_graph(60, 200, seed);
            let a = reach(&g, usize::MAX);
            let b = crate::souffle_like::reach(&g, 4);
            assert_eq!(a.tuples, b.tuples, "seed {seed}");
        }
    }

    #[test]
    fn tree_reachability_counts_ancestor_descendant_pairs() {
        let g = binary_tree(5);
        let out = reach(&g, usize::MAX);
        let expected = crate::souffle_like::reach(&g, 2);
        assert_eq!(out.tuples, expected.tuples);
    }

    #[test]
    fn small_memory_budget_reports_oom() {
        let g = random_graph(200, 2000, 1);
        let out = reach(&g, 10_000);
        assert!(out.out_of_memory);
        assert_eq!(out.cell(), "OOM");
    }

    #[test]
    fn tuple_hash_table_probe_finds_all_matches() {
        let mut t = TupleHashTable::with_capacity_for(8);
        t.insert((5, 1));
        t.insert((5, 2));
        t.insert((6, 3));
        t.insert((5, 1)); // duplicate
        let mut out = Vec::new();
        t.probe(5, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(5, 1), (5, 2)]);
        assert_eq!(t.len, 3);
    }
}
