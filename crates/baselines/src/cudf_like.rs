//! A cuDF-style dataframe comparator.
//!
//! The paper's cuDF baseline (from Shovon et al., "Accelerating Datalog
//! applications with cuDF") expresses each iteration as dataframe
//! operations: an inner hash join of the whole delta against the whole edge
//! table, a `concat` with the accumulated result, and a `drop_duplicates`
//! over the *entire* concatenated relation. Every one of those operations
//! materializes fresh buffers while the old ones are still alive, which is
//! why cuDF runs out of memory on most of the paper's datasets (Tables 2
//! and 3). The memory model here charges those simultaneous materializations
//! against a configurable budget to reproduce that behaviour.

use crate::common::BaselineOutcome;
use gpulog_datasets::EdgeList;
use std::collections::HashMap;
use std::time::Instant;

const ENGINE: &str = "cuDF-like";

/// A two-column dataframe.
#[derive(Debug, Clone, Default)]
struct DataFrame {
    a: Vec<u32>,
    b: Vec<u32>,
}

impl DataFrame {
    fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut df = DataFrame::default();
        for (x, y) in pairs {
            df.a.push(x);
            df.b.push(y);
        }
        df
    }

    fn len(&self) -> usize {
        self.a.len()
    }

    fn bytes(&self) -> usize {
        (self.a.capacity() + self.b.capacity()) * 4
    }

    /// `concat` producing a fresh dataframe (both inputs stay alive).
    fn concat(&self, other: &DataFrame) -> DataFrame {
        let mut out = self.clone();
        out.a.extend_from_slice(&other.a);
        out.b.extend_from_slice(&other.b);
        out
    }

    /// `drop_duplicates` producing a fresh, sorted dataframe.
    fn drop_duplicates(&self) -> DataFrame {
        let mut pairs: Vec<(u32, u32)> =
            self.a.iter().copied().zip(self.b.iter().copied()).collect();
        pairs.sort_unstable();
        pairs.dedup();
        DataFrame::from_pairs(pairs)
    }

    /// Inner hash join `self.b == other.a`, emitting `(other.b, self... )`
    /// configured by the caller through `emit`.
    fn join_on_b_eq_a(
        &self,
        other: &DataFrame,
        emit: impl Fn(usize, usize) -> (u32, u32),
    ) -> DataFrame {
        let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, &key) in other.a.iter().enumerate() {
            index.entry(key).or_default().push(i);
        }
        let mut out = DataFrame::default();
        for i in 0..self.len() {
            if let Some(matches) = index.get(&self.b[i]) {
                for &j in matches {
                    let (x, y) = emit(i, j);
                    out.a.push(x);
                    out.b.push(y);
                }
            }
        }
        out
    }
}

/// Tracks the sum of live dataframe bytes against a budget.
struct MemoryBudget {
    limit: usize,
    peak: usize,
}

impl MemoryBudget {
    fn new(limit: usize) -> Self {
        MemoryBudget { limit, peak: 0 }
    }

    fn charge(&mut self, live_bytes: usize) -> Result<(), ()> {
        self.peak = self.peak.max(live_bytes);
        if live_bytes > self.limit {
            Err(())
        } else {
            Ok(())
        }
    }
}

/// REACH with the cuDF strategy under a VRAM-style memory budget.
pub fn reach(graph: &EdgeList, memory_limit_bytes: usize) -> BaselineOutcome {
    let start = Instant::now();
    let mut budget = MemoryBudget::new(memory_limit_bytes);
    // Edge table with reversed columns so that joins key on destination.
    let edges_rev = DataFrame::from_pairs(graph.edges.iter().map(|&(a, b)| (b, a)));
    let mut full = DataFrame::from_pairs(graph.edges.iter().copied()).drop_duplicates();
    let mut delta = full.clone();
    if budget
        .charge(edges_rev.bytes() + full.bytes() + delta.bytes())
        .is_err()
    {
        return BaselineOutcome::oom(ENGINE, budget.peak);
    }

    while delta.len() > 0 {
        // join: delta Reach(z, y) with Edge(x, z): key delta.a == edges_rev.a.
        // Reorder delta so the join key sits in column b.
        let delta_keyed = DataFrame {
            a: delta.b.clone(),
            b: delta.a.clone(),
        };
        let joined = delta_keyed.join_on_b_eq_a(&edges_rev, |i, j| {
            // result Reach(x, y): x from edge source, y from delta's second col
            (edges_rev.b[j], delta_keyed.a[i])
        });
        // concat + drop_duplicates over the whole relation, all buffers live.
        let concatenated = full.concat(&joined);
        let deduped = concatenated.drop_duplicates();
        let live = edges_rev.bytes()
            + full.bytes()
            + delta.bytes()
            + delta_keyed.bytes()
            + joined.bytes()
            + concatenated.bytes()
            + deduped.bytes();
        if budget.charge(live).is_err() {
            return BaselineOutcome::oom(ENGINE, budget.peak);
        }
        // New delta: rows of `deduped` beyond the old full (set difference via
        // another join-like anti-semijoin, materialized as a hash set here).
        let old: std::collections::HashSet<(u32, u32)> =
            full.a.iter().copied().zip(full.b.iter().copied()).collect();
        delta = DataFrame::from_pairs(
            deduped
                .a
                .iter()
                .copied()
                .zip(deduped.b.iter().copied())
                .filter(|t| !old.contains(t)),
        );
        full = deduped;
    }
    BaselineOutcome::completed(ENGINE, start.elapsed(), full.len(), budget.peak)
}

/// SG with the cuDF strategy (two joins per iteration) under a memory budget.
pub fn sg(graph: &EdgeList, memory_limit_bytes: usize) -> BaselineOutcome {
    let start = Instant::now();
    let mut budget = MemoryBudget::new(memory_limit_bytes);
    let edges = DataFrame::from_pairs(graph.edges.iter().copied());
    // Base rule: SG(x, y) :- Edge(p, x), Edge(p, y), x != y  — a self-join on p.
    let mut by_p: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(p, x) in &graph.edges {
        by_p.entry(p).or_default().push(x);
    }
    let mut base = Vec::new();
    for xs in by_p.values() {
        for &x in xs {
            for &y in xs {
                if x != y {
                    base.push((x, y));
                }
            }
        }
    }
    let mut full = DataFrame::from_pairs(base).drop_duplicates();
    let mut delta = full.clone();
    if budget
        .charge(edges.bytes() + full.bytes() + delta.bytes())
        .is_err()
    {
        return BaselineOutcome::oom(ENGINE, budget.peak);
    }

    while delta.len() > 0 {
        // Tmp(b, x) :- Edge(a, x), SG(a, b): join delta SG on a.
        let sg_keyed = DataFrame {
            a: delta.b.clone(), // b
            b: delta.a.clone(), // a (join key)
        };
        let tmp = sg_keyed.join_on_b_eq_a(&edges, |i, j| (sg_keyed.a[i], edges.b[j])); // (b, x)
                                                                                       // SG(x, y) :- Edge(b, y), Tmp(b, x): join tmp on b.
        let tmp_keyed = DataFrame {
            a: tmp.b.clone(), // x
            b: tmp.a.clone(), // b (join key)
        };
        let derived = tmp_keyed.join_on_b_eq_a(&edges, |i, j| (tmp_keyed.a[i], edges.b[j])); // (x, y)
        let filtered = DataFrame::from_pairs(
            derived
                .a
                .iter()
                .copied()
                .zip(derived.b.iter().copied())
                .filter(|(x, y)| x != y),
        );
        let concatenated = full.concat(&filtered);
        let deduped = concatenated.drop_duplicates();
        let live = edges.bytes()
            + full.bytes()
            + delta.bytes()
            + sg_keyed.bytes()
            + tmp.bytes()
            + tmp_keyed.bytes()
            + derived.bytes()
            + filtered.bytes()
            + concatenated.bytes()
            + deduped.bytes();
        if budget.charge(live).is_err() {
            return BaselineOutcome::oom(ENGINE, budget.peak);
        }
        let old: std::collections::HashSet<(u32, u32)> =
            full.a.iter().copied().zip(full.b.iter().copied()).collect();
        delta = DataFrame::from_pairs(
            deduped
                .a
                .iter()
                .copied()
                .zip(deduped.b.iter().copied())
                .filter(|t| !old.contains(t)),
        );
        full = deduped;
    }
    BaselineOutcome::completed(ENGINE, start.elapsed(), full.len(), budget.peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_datasets::generators::{binary_tree, random_graph};

    #[test]
    fn reach_matches_souffle_like_counts() {
        for seed in 0..3 {
            let g = random_graph(50, 150, seed);
            let a = reach(&g, usize::MAX);
            let b = crate::souffle_like::reach(&g, 2);
            assert_eq!(a.tuples, b.tuples, "seed {seed}");
        }
    }

    #[test]
    fn sg_matches_souffle_like_counts() {
        let g = binary_tree(4);
        let a = sg(&g, usize::MAX);
        let b = crate::souffle_like::sg(&g, 2);
        assert_eq!(a.tuples, b.tuples);
    }

    #[test]
    fn tight_budget_oooms_on_either_query() {
        let g = random_graph(150, 1200, 2);
        assert!(reach(&g, 20_000).out_of_memory);
        assert!(sg(&g, 20_000).out_of_memory);
    }

    #[test]
    fn cudf_uses_more_transient_memory_than_gpujoin_like() {
        let g = random_graph(80, 400, 5);
        let cudf = reach(&g, usize::MAX);
        let gpujoin = crate::gpujoin_like::reach(&g, usize::MAX);
        assert!(
            cudf.peak_bytes > gpujoin.peak_bytes / 2,
            "cuDF-style concat/dedup should be at least comparable in footprint"
        );
    }
}
