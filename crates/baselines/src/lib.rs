//! # `gpulog-baselines`: the comparator engines of the GPUlog evaluation
//!
//! The paper compares GPUlog against Soufflé (a CPU Datalog engine),
//! GPUJoin (hash-table-of-tuples GPU joins), and cuDF (dataframe
//! operations). The original systems cannot run in this environment
//! (Soufflé needs its C++ toolchain, GPUJoin and cuDF need CUDA), so this
//! crate re-implements each system's *evaluation strategy* — the property
//! the paper's comparisons isolate — on the same host:
//!
//! * [`souffle_like`] — B-tree-indexed semi-naïve evaluation with parallel
//!   join workers and serialized deduplication/insertion.
//! * [`gpujoin_like`] — tuples stored directly in low-load-factor
//!   open-addressing tables, fused merge + full-relation re-deduplication.
//! * [`cudf_like`] — per-iteration dataframe join / concat /
//!   drop-duplicates with all intermediate buffers live simultaneously.
//!
//! Each baseline reports wall-clock time, derived-tuple counts, its own
//! memory estimate, and an explicit out-of-memory outcome when run under a
//! VRAM-style budget — everything the harness needs to regenerate Tables
//! 2–4.

pub mod common;
pub mod cudf_like;
pub mod gpujoin_like;
pub mod souffle_like;

pub use common::BaselineOutcome;

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_datasets::generators::random_graph;

    #[test]
    fn all_reach_baselines_agree_on_tuple_counts() {
        let g = random_graph(70, 250, 9);
        let a = souffle_like::reach(&g, 4);
        let b = gpujoin_like::reach(&g, usize::MAX);
        let c = cudf_like::reach(&g, usize::MAX);
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.tuples, c.tuples);
    }

    #[test]
    fn outcome_cells_render() {
        let g = random_graph(20, 50, 1);
        let out = souffle_like::reach(&g, 1);
        assert!(out.cell().parse::<f64>().is_ok());
    }
}
