//! Compiles validated Datalog rules into executable relational-algebra plans.
//!
//! Every rule becomes a left-deep pipeline: a *scan* of its first body atom,
//! followed by one *join step* per remaining atom, followed by a projection
//! onto the head. Each join step is materialized into a temporary buffer —
//! the paper's "temporarily-materialized n-way join" (Section 5.2). For
//! rules inside a recursive stratum the planner emits one *delta version*
//! per occurrence of a same-stratum relation, realising semi-naïve
//! evaluation; the occurrence marked delta is moved to the front of the
//! pipeline so the (small) delta drives the outer loop.

use crate::analysis::{stratify_program, StratifiedProgram};
use crate::ast::{AggregateOp, Atom, CmpOp, Program, Rule, Term};
use crate::error::{EngineError, EngineResult};
use crate::ra::nway::NwayStrategy;
use crate::ra::op::{RaOp, RaPipeline};
use std::collections::HashMap;

/// Relation identifier: an index into [`CompiledProgram::relation_names`].
pub type RelId = usize;

/// Which version of a relation a plan step reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionSel {
    /// The accumulated `full` relation.
    Full,
    /// The previous iteration's `delta` relation.
    Delta,
}

/// A value source when projecting from an intermediate tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnSource {
    /// Column of the intermediate tuple.
    Col(usize),
    /// A literal constant.
    Const(u32),
}

/// A value source when emitting a joined tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitSource {
    /// Column of the outer (intermediate) tuple.
    Outer(usize),
    /// Column (in original declaration order) of the inner relation's tuple.
    Inner(usize),
}

/// A comparison filter applied to an intermediate tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterStep {
    /// Left operand.
    pub left: ColumnSource,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: ColumnSource,
}

/// The initial scan of a rule's first body atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanStep {
    /// Relation being scanned.
    pub relation: RelId,
    /// Full or delta version.
    pub version: VersionSel,
    /// `(column, constant)` equality filters from constant arguments.
    pub const_filters: Vec<(usize, u32)>,
    /// `(column, column)` equality filters from repeated variables.
    pub eq_filters: Vec<(usize, usize)>,
    /// Columns kept in the intermediate tuple (one per distinct variable,
    /// in order of first appearance).
    pub keep_cols: Vec<usize>,
}

/// One hash-join step against an indexed relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinStep {
    /// Inner relation.
    pub relation: RelId,
    /// Full or delta version of the inner relation.
    pub version: VersionSel,
    /// Key columns of the outer (intermediate) tuple, matched positionally
    /// with `inner_key_cols`.
    pub outer_key_cols: Vec<usize>,
    /// Key columns of the inner relation, in original declaration order.
    pub inner_key_cols: Vec<usize>,
    /// Constant filters on inner columns.
    pub inner_const_filters: Vec<(usize, u32)>,
    /// Equality filters between inner columns (repeated variables).
    pub inner_eq_filters: Vec<(usize, usize)>,
    /// How to build the next intermediate tuple.
    pub emit: Vec<EmitSource>,
}

/// One anti-join step, lowering a negated body literal: rows of the
/// intermediate survive only when the probe tuple is *absent* from the
/// negated relation's completed full version.
///
/// Range restriction guarantees every negated-atom variable is bound by a
/// positive literal, so the probe is fully ground per row and membership
/// is a point lookup against the HISA index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AntiJoinStep {
    /// The negated relation; always read at [`VersionSel::Full`], after
    /// its (strictly lower) stratum completed.
    pub relation: RelId,
    /// How to build each column of the probe tuple, one entry per column
    /// of the negated relation: an intermediate column or a constant.
    pub probe: Vec<ColumnSource>,
}

/// The post-stratum grouped reduce of an aggregate rule's head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceStep {
    /// The reduction to apply.
    pub op: AggregateOp,
    /// Head column holding the aggregated value; all other head columns
    /// form the group key.
    pub agg_column: usize,
}

/// The executable plan of one rule version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulePlan {
    /// Index of the source rule in the original program.
    pub rule_index: usize,
    /// Head relation.
    pub head: RelId,
    /// Initial scan.
    pub scan: ScanStep,
    /// Join pipeline (possibly empty for single-atom rules).
    pub joins: Vec<JoinStep>,
    /// Anti-joins from negated literals, applied after every positive join
    /// (all variables bound) and before the head projection.
    pub anti_joins: Vec<AntiJoinStep>,
    /// Filters to apply after the scan (`filters[0]`) and after join `k`
    /// (`filters[k + 1]`).
    pub filters: Vec<Vec<FilterStep>>,
    /// Projection building head tuples from the final intermediate.
    pub head_proj: Vec<ColumnSource>,
    /// Grouped reduce applied to the head-shaped batch, for aggregate
    /// rules (always non-recursive: stratification places their bodies in
    /// strictly lower strata).
    pub reduce: Option<ReduceStep>,
    /// `true` when a constant-vs-constant constraint is statically false and
    /// the rule can never fire.
    pub trivially_empty: bool,
    /// Human-readable source form (for diagnostics and plan dumps).
    pub text: String,
}

/// A stratum with its rules compiled into plans.
#[derive(Debug, Clone)]
pub struct CompiledStratum {
    /// Relations defined in this stratum.
    pub relations: Vec<RelId>,
    /// Plans evaluated once, before any fixpoint iteration.
    pub non_recursive: Vec<RulePlan>,
    /// Delta-version plans evaluated inside the fixpoint loop.
    pub recursive: Vec<RulePlan>,
    /// Whether the stratum needs a fixpoint loop at all.
    pub is_recursive: bool,
}

/// A fully compiled program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Relation names, indexed by [`RelId`].
    pub relation_names: Vec<String>,
    /// Relation arities, indexed by [`RelId`].
    pub arities: Vec<usize>,
    /// Which relations are inputs.
    pub inputs: Vec<bool>,
    /// Which relations are outputs.
    pub outputs: Vec<bool>,
    /// Ground facts stated directly in the program text.
    pub facts: Vec<(RelId, Vec<u32>)>,
    /// Strata in evaluation order.
    pub strata: Vec<CompiledStratum>,
}

impl CompiledProgram {
    /// Looks up a relation id by name.
    pub fn relation_id(&self, name: &str) -> Option<RelId> {
        self.relation_names.iter().position(|n| n == name)
    }

    /// Total number of rule plans (all versions) across all strata.
    pub fn plan_count(&self) -> usize {
        self.strata
            .iter()
            .map(|s| s.non_recursive.len() + s.recursive.len())
            .sum()
    }
}

/// One stratum's rule plans lowered to operator pipelines.
#[derive(Debug, Clone)]
pub struct LoweredStratum {
    /// Pipelines evaluated once, before any fixpoint iteration.
    pub non_recursive: Vec<RaPipeline>,
    /// Delta-version pipelines evaluated inside the fixpoint loop.
    pub recursive: Vec<RaPipeline>,
}

/// Lowers one rule plan into an executable [`RaPipeline`] under the given
/// n-way strategy.
///
/// The temporarily-materialized strategy becomes `Scan → HashJoin* →
/// AntiJoin* → Project [→ Reduce]`; the fused strategy becomes `Scan →
/// FusedJoin [→ Reduce]` (the fused kernel produces head tuples
/// directly). Rules with negated literals always take the materialized
/// lowering — the anti-join probes pre-projection intermediate columns,
/// which the fused kernel never materializes. A trivially-empty plan
/// lowers to an empty pipeline, which every backend must treat as
/// deriving nothing.
pub fn lower_rule_plan(plan: &RulePlan, strategy: NwayStrategy) -> RaPipeline {
    let strategy = if plan.anti_joins.is_empty() {
        strategy
    } else {
        NwayStrategy::TemporarilyMaterialized
    };
    let mut ops = Vec::new();
    if !plan.trivially_empty {
        // A scan that binds no variables (an all-constant atom, e.g.
        // `R(1) :- E(2, 3).`) would produce a zero-column intermediate and
        // lose the matched-row count on the way to the head projection.
        // Keep one dummy column instead: its values are never referenced
        // (no variable means no downstream Col/Outer source can exist),
        // but the multiplicity survives. Joins inherit the dummy through
        // `emit` for the same reason.
        let mut scan = plan.scan.clone();
        if scan.keep_cols.is_empty() {
            scan.keep_cols.push(0);
        }
        ops.push(RaOp::Scan {
            step: scan,
            filters: plan.filters[0].clone(),
        });
        match strategy {
            NwayStrategy::TemporarilyMaterialized => {
                for (k, join) in plan.joins.iter().enumerate() {
                    let mut join = join.clone();
                    if join.emit.is_empty() {
                        // Empty emit implies no variable is bound yet, so
                        // the outer intermediate is exactly the dummy
                        // column introduced above.
                        join.emit.push(EmitSource::Outer(0));
                    }
                    ops.push(RaOp::HashJoin {
                        step: join,
                        filters: plan.filters[k + 1].clone(),
                    });
                }
                for step in &plan.anti_joins {
                    ops.push(RaOp::AntiJoin { step: step.clone() });
                }
                ops.push(RaOp::Project {
                    columns: plan.head_proj.clone(),
                });
            }
            NwayStrategy::FusedNestedLoop => {
                ops.push(RaOp::FusedJoin {
                    levels: plan
                        .joins
                        .iter()
                        .enumerate()
                        .map(|(k, join)| (join.clone(), plan.filters[k + 1].clone()))
                        .collect(),
                    head_proj: plan.head_proj.clone(),
                });
            }
        }
        if let Some(reduce) = plan.reduce {
            // The reduce consumes the head-shaped batch, so it composes
            // with both n-way strategies.
            ops.push(RaOp::Reduce {
                op: reduce.op,
                agg_column: reduce.agg_column,
            });
        }
    }
    RaPipeline {
        head: plan.head,
        ops,
        text: plan.text.clone(),
    }
}

/// Lowers every rule plan of a compiled program, preserving the stratum
/// structure and evaluation order.
pub fn lower_program(compiled: &CompiledProgram, strategy: NwayStrategy) -> Vec<LoweredStratum> {
    compiled
        .strata
        .iter()
        .map(|stratum| LoweredStratum {
            non_recursive: stratum
                .non_recursive
                .iter()
                .map(|p| lower_rule_plan(p, strategy))
                .collect(),
            recursive: stratum
                .recursive
                .iter()
                .map(|p| lower_rule_plan(p, strategy))
                .collect(),
        })
        .collect()
}

/// Compiles a program: validates, stratifies, and plans every rule.
///
/// # Errors
///
/// Returns [`EngineError::Validation`] for structurally invalid programs
/// (see [`crate::analysis::stratify`]) and for constructs the engine does
/// not support.
pub fn compile(program: &Program) -> EngineResult<CompiledProgram> {
    let stratified = stratify_program(program)?;
    let id_of: HashMap<&str, RelId> = stratified
        .relation_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    let mut facts = Vec::new();
    let mut strata = Vec::new();
    for stratum in &stratified.strata {
        let stratum_rels: Vec<RelId> = stratum.relations.clone();
        let mut non_recursive = Vec::new();
        let mut recursive = Vec::new();
        for &rule_index in &stratum.rule_indices {
            let rule = &program.rules[rule_index];
            if rule.body.is_empty() {
                // Ground fact.
                let tuple: Vec<u32> = rule
                    .head
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => Ok(*c),
                        Term::Var(v) => Err(EngineError::Validation {
                            message: format!("fact {} has unbound variable {v}", rule.head),
                        }),
                    })
                    .collect::<EngineResult<_>>()?;
                facts.push((id_of[rule.head.relation.as_str()], tuple));
                continue;
            }
            // Delta versions are generated per *positive* same-stratum
            // occurrence; stratification already guarantees negated and
            // aggregated bodies live in strictly lower strata.
            let recursive_occurrences: Vec<usize> = rule
                .positive_atoms()
                .enumerate()
                .filter(|(_, atom)| stratum_rels.contains(&id_of[atom.relation.as_str()]))
                .map(|(i, _)| i)
                .collect();
            if recursive_occurrences.is_empty() {
                non_recursive.push(plan_rule(rule, rule_index, None, &id_of, &stratified)?);
            } else {
                for &occ in &recursive_occurrences {
                    recursive.push(plan_rule(rule, rule_index, Some(occ), &id_of, &stratified)?);
                }
            }
        }
        strata.push(CompiledStratum {
            relations: stratum_rels,
            non_recursive,
            recursive,
            is_recursive: stratum.recursive,
        });
    }

    Ok(CompiledProgram {
        relation_names: stratified.relation_names,
        arities: stratified.arities,
        inputs: stratified.inputs,
        outputs: stratified.outputs,
        facts,
        strata,
    })
}

/// Plans one rule version. `delta_occurrence` names the index (into the
/// rule's *positive* body atoms) that reads the delta relation (or `None`
/// for the all-full version).
fn plan_rule(
    rule: &Rule,
    rule_index: usize,
    delta_occurrence: Option<usize>,
    id_of: &HashMap<&str, RelId>,
    stratified: &StratifiedProgram,
) -> EngineResult<RulePlan> {
    // Positive literals drive the scan/join pipeline; negated literals
    // become anti-joins once every variable is bound.
    let positives: Vec<&Atom> = rule.positive_atoms().collect();
    if positives.is_empty() {
        return Err(EngineError::Validation {
            message: format!("rule `{rule}` has no positive body literal to ground it"),
        });
    }
    // Decide atom evaluation order: the delta atom (if any) first, then a
    // greedy order preferring atoms that share a variable with what is
    // already bound.
    let n_atoms = positives.len();
    let mut order: Vec<usize> = Vec::with_capacity(n_atoms);
    let mut remaining: Vec<usize> = (0..n_atoms).collect();
    if let Some(d) = delta_occurrence {
        order.push(d);
        remaining.retain(|&i| i != d);
    } else {
        order.push(remaining.remove(0));
    }
    let mut bound_vars: Vec<String> = Vec::new();
    let collect_vars = |atom: &Atom, bound: &mut Vec<String>| {
        for v in atom.variables() {
            if !bound.iter().any(|b| b == v) {
                bound.push(v.to_string());
            }
        }
    };
    collect_vars(positives[order[0]], &mut bound_vars);
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .position(|&i| {
                positives[i]
                    .variables()
                    .any(|v| bound_vars.iter().any(|b| b == v))
            })
            .unwrap_or(0);
        let atom_idx = remaining.remove(pick);
        collect_vars(positives[atom_idx], &mut bound_vars);
        order.push(atom_idx);
    }

    // Walk the pipeline, tracking which variable each intermediate column holds.
    let mut columns: Vec<String> = Vec::new();
    let first_atom = positives[order[0]];
    let scan = plan_scan(
        first_atom,
        version_for(order[0], delta_occurrence),
        id_of,
        &mut columns,
    );

    let mut joins = Vec::new();
    let mut filters: Vec<Vec<FilterStep>> = vec![Vec::new()];
    let mut applied = vec![false; rule.constraints.len()];
    let mut trivially_empty = false;
    collect_applicable_filters(
        rule,
        &columns,
        &mut applied,
        &mut filters[0],
        &mut trivially_empty,
    );

    for &atom_idx in &order[1..] {
        let atom = positives[atom_idx];
        let join = plan_join(
            atom,
            version_for(atom_idx, delta_occurrence),
            id_of,
            &mut columns,
        );
        joins.push(join);
        let mut step_filters = Vec::new();
        collect_applicable_filters(
            rule,
            &columns,
            &mut applied,
            &mut step_filters,
            &mut trivially_empty,
        );
        filters.push(step_filters);
    }

    // Anti-joins: each negated literal probes the intermediate against the
    // negated relation's full version. Validation guarantees every
    // variable is bound by now.
    let anti_joins: Vec<AntiJoinStep> = rule
        .negative_atoms()
        .map(|atom| AntiJoinStep {
            relation: id_of[atom.relation.as_str()],
            probe: atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(c) => ColumnSource::Const(*c),
                    Term::Var(v) => {
                        let col = columns
                            .iter()
                            .position(|c| c == v)
                            .expect("negated-atom variable bound (checked by validation)");
                        ColumnSource::Col(col)
                    }
                })
                .collect(),
        })
        .collect();

    // Head projection.
    let head_proj: Vec<ColumnSource> = rule
        .head
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => ColumnSource::Const(*c),
            Term::Var(v) => {
                let col = columns
                    .iter()
                    .position(|c| c == v)
                    .expect("head variable bound (checked by validation)");
                ColumnSource::Col(col)
            }
        })
        .collect();

    let reduce = rule.aggregate.as_ref().map(|agg| ReduceStep {
        op: agg.op,
        agg_column: agg.column,
    });

    let _ = stratified;
    Ok(RulePlan {
        rule_index,
        head: id_of[rule.head.relation.as_str()],
        scan,
        joins,
        anti_joins,
        filters,
        head_proj,
        reduce,
        trivially_empty,
        text: format!(
            "{rule}{}",
            match delta_occurrence {
                Some(d) => format!("   [delta at body atom {d}]"),
                None => String::new(),
            }
        ),
    })
}

fn version_for(atom_idx: usize, delta_occurrence: Option<usize>) -> VersionSel {
    if delta_occurrence == Some(atom_idx) {
        VersionSel::Delta
    } else {
        VersionSel::Full
    }
}

fn plan_scan(
    atom: &Atom,
    version: VersionSel,
    id_of: &HashMap<&str, RelId>,
    columns: &mut Vec<String>,
) -> ScanStep {
    let mut const_filters = Vec::new();
    let mut eq_filters = Vec::new();
    let mut keep_cols = Vec::new();
    let mut first_occurrence: HashMap<&str, usize> = HashMap::new();
    for (col, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(c) => const_filters.push((col, *c)),
            Term::Var(v) => match first_occurrence.get(v.as_str()) {
                Some(&first) => eq_filters.push((first, col)),
                None => {
                    first_occurrence.insert(v, col);
                    keep_cols.push(col);
                    columns.push(v.clone());
                }
            },
        }
    }
    ScanStep {
        relation: id_of[atom.relation.as_str()],
        version,
        const_filters,
        eq_filters,
        keep_cols,
    }
}

fn plan_join(
    atom: &Atom,
    version: VersionSel,
    id_of: &HashMap<&str, RelId>,
    columns: &mut Vec<String>,
) -> JoinStep {
    let mut outer_key_cols = Vec::new();
    let mut inner_key_cols = Vec::new();
    let mut inner_const_filters = Vec::new();
    let mut inner_eq_filters = Vec::new();
    let mut new_vars: Vec<(String, usize)> = Vec::new();
    let mut first_occurrence: HashMap<&str, usize> = HashMap::new();
    for (col, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(c) => inner_const_filters.push((col, *c)),
            Term::Var(v) => {
                if let Some(&first) = first_occurrence.get(v.as_str()) {
                    // Repeated variable within the atom.
                    inner_eq_filters.push((first, col));
                    continue;
                }
                first_occurrence.insert(v, col);
                if let Some(outer_col) = columns.iter().position(|c| c == v) {
                    outer_key_cols.push(outer_col);
                    inner_key_cols.push(col);
                } else {
                    new_vars.push((v.clone(), col));
                }
            }
        }
    }
    let mut emit: Vec<EmitSource> = (0..columns.len()).map(EmitSource::Outer).collect();
    for (v, col) in new_vars {
        emit.push(EmitSource::Inner(col));
        columns.push(v);
    }
    JoinStep {
        relation: id_of[atom.relation.as_str()],
        version,
        outer_key_cols,
        inner_key_cols,
        inner_const_filters,
        inner_eq_filters,
        emit,
    }
}

fn collect_applicable_filters(
    rule: &Rule,
    columns: &[String],
    applied: &mut [bool],
    out: &mut Vec<FilterStep>,
    trivially_empty: &mut bool,
) {
    for (i, c) in rule.constraints.iter().enumerate() {
        if applied[i] {
            continue;
        }
        let resolve = |t: &Term| -> Option<ColumnSource> {
            match t {
                Term::Const(v) => Some(ColumnSource::Const(*v)),
                Term::Var(v) => columns.iter().position(|c| c == v).map(ColumnSource::Col),
            }
        };
        if let (Some(left), Some(right)) = (resolve(&c.left), resolve(&c.right)) {
            applied[i] = true;
            if let (ColumnSource::Const(l), ColumnSource::Const(r)) = (left, right) {
                if !c.op.eval(l, r) {
                    *trivially_empty = true;
                }
                continue;
            }
            out.push(FilterStep {
                left,
                op: c.op,
                right,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile_src(src: &str) -> CompiledProgram {
        compile(&parse_program(src).unwrap()).unwrap()
    }

    const REACH: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl Reach(x: number, y: number)
        .output Reach
        Reach(x, y) :- Edge(x, y).
        Reach(x, y) :- Edge(x, z), Reach(z, y).
    ";

    #[test]
    fn reach_plans_have_one_delta_version_for_the_recursive_rule() {
        let c = compile_src(REACH);
        let reach_stratum = c
            .strata
            .iter()
            .find(|s| s.relations.contains(&c.relation_id("Reach").unwrap()))
            .unwrap();
        assert!(reach_stratum.is_recursive);
        assert_eq!(reach_stratum.non_recursive.len(), 1);
        assert_eq!(reach_stratum.recursive.len(), 1);
        let rec = &reach_stratum.recursive[0];
        // The delta atom (Reach) must drive the scan.
        assert_eq!(rec.scan.relation, c.relation_id("Reach").unwrap());
        assert_eq!(rec.scan.version, VersionSel::Delta);
        assert_eq!(rec.joins.len(), 1);
        assert_eq!(rec.joins[0].relation, c.relation_id("Edge").unwrap());
        // Join on z: Reach(z, y) delta scanned (keeps z at col 0, y at col 1),
        // joined with Edge(x, z) on Edge's column 1.
        assert_eq!(rec.joins[0].outer_key_cols, vec![0]);
        assert_eq!(rec.joins[0].inner_key_cols, vec![1]);
    }

    #[test]
    fn sg_rule_two_produces_three_delta_versions_total_one_per_occurrence() {
        let c = compile_src(
            r"
            .decl Edge(x: number, y: number)
            .decl SG(x: number, y: number)
            .input Edge
            .output SG
            SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
            SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
        ",
        );
        let sg = c.relation_id("SG").unwrap();
        let stratum = c.strata.iter().find(|s| s.relations.contains(&sg)).unwrap();
        // Rule 1 has no SG occurrence: non-recursive. Rule 2 has exactly one
        // SG occurrence: one delta version.
        assert_eq!(stratum.non_recursive.len(), 1);
        assert_eq!(stratum.recursive.len(), 1);
        let rec = &stratum.recursive[0];
        assert_eq!(rec.scan.version, VersionSel::Delta);
        assert_eq!(rec.scan.relation, sg);
        assert_eq!(
            rec.joins.len(),
            2,
            "temp-materialized into two binary joins"
        );
        // The x != y constraint is applied only once all variables are bound,
        // i.e. after the second join.
        assert!(rec.filters[0].is_empty());
        assert!(rec.filters[1].is_empty());
        assert_eq!(rec.filters[2].len(), 1);
    }

    #[test]
    fn self_join_in_sg_rule_one_joins_edge_with_edge_on_parent() {
        let c = compile_src(
            r"
            .decl Edge(x: number, y: number)
            .decl SG(x: number, y: number)
            .input Edge
            .output SG
            SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
        ",
        );
        let stratum = c
            .strata
            .iter()
            .find(|s| s.relations.contains(&c.relation_id("SG").unwrap()))
            .unwrap();
        let plan = &stratum.non_recursive[0];
        assert_eq!(plan.joins.len(), 1);
        assert_eq!(plan.joins[0].outer_key_cols, vec![0]); // p
        assert_eq!(plan.joins[0].inner_key_cols, vec![0]); // p
        assert_eq!(plan.filters[1].len(), 1); // x != y after the join
        assert_eq!(plan.head_proj.len(), 2);
    }

    #[test]
    fn constants_become_filters_and_head_constants_project() {
        let c = compile_src(
            r"
            .decl E(x: number, y: number)
            .decl R(x: number, y: number)
            .input E
            .output R
            R(x, 7) :- E(x, 3), E(x, x).
        ",
        );
        let stratum = c
            .strata
            .iter()
            .find(|s| s.relations.contains(&c.relation_id("R").unwrap()))
            .unwrap();
        let plan = &stratum.non_recursive[0];
        assert_eq!(plan.scan.const_filters, vec![(1, 3)]);
        // Second atom E(x, x): x is bound, so column 0 joins and column 1 must
        // equal it; the planner expresses that as a key on col 0 plus an
        // eq-filter between the two inner columns... or as a repeated-variable
        // filter, depending on binding order.
        assert_eq!(plan.joins[0].inner_key_cols, vec![0]);
        assert_eq!(plan.joins[0].inner_eq_filters, vec![(0, 1)]);
        assert_eq!(plan.head_proj[1], ColumnSource::Const(7));
    }

    #[test]
    fn ground_facts_are_collected_not_planned() {
        let c = compile_src(
            r"
            .decl E(x: number, y: number)
            .decl R(x: number)
            .output R
            E(1, 2).
            E(2, 3).
            R(x) :- E(x, 3).
        ",
        );
        assert_eq!(c.facts.len(), 2);
        assert_eq!(c.facts[0].1, vec![1, 2]);
        assert_eq!(c.plan_count(), 1);
    }

    #[test]
    fn statically_false_constraint_marks_plan_trivially_empty() {
        let c = compile_src(
            r"
            .decl E(x: number)
            .decl R(x: number)
            .input E
            .output R
            R(x) :- E(x), 1 > 2.
        ",
        );
        let stratum = c
            .strata
            .iter()
            .find(|s| s.relations.contains(&c.relation_id("R").unwrap()))
            .unwrap();
        assert!(stratum.non_recursive[0].trivially_empty);
    }

    #[test]
    fn cross_product_rule_gets_empty_join_key() {
        let c = compile_src(
            r"
            .decl A(x: number)
            .decl B(y: number)
            .decl R(x: number, y: number)
            .input A
            .input B
            .output R
            R(x, y) :- A(x), B(y).
        ",
        );
        let stratum = c
            .strata
            .iter()
            .find(|s| s.relations.contains(&c.relation_id("R").unwrap()))
            .unwrap();
        let plan = &stratum.non_recursive[0];
        assert!(plan.joins[0].outer_key_cols.is_empty());
        assert!(plan.joins[0].inner_key_cols.is_empty());
    }

    #[test]
    fn lowering_produces_scan_join_project_for_materialized() {
        let c = compile_src(REACH);
        let stratum = c.strata.iter().find(|s| s.is_recursive).unwrap();
        let plan = &stratum.recursive[0];
        let pipeline = lower_rule_plan(plan, NwayStrategy::TemporarilyMaterialized);
        assert_eq!(pipeline.head, plan.head);
        assert_eq!(pipeline.ops.len(), 3);
        assert!(matches!(pipeline.ops[0], RaOp::Scan { .. }));
        assert!(matches!(pipeline.ops[1], RaOp::HashJoin { .. }));
        assert!(matches!(pipeline.ops[2], RaOp::Project { .. }));
    }

    #[test]
    fn lowering_produces_scan_fused_for_fused_strategy() {
        let c = compile_src(REACH);
        let stratum = c.strata.iter().find(|s| s.is_recursive).unwrap();
        let plan = &stratum.recursive[0];
        let pipeline = lower_rule_plan(plan, NwayStrategy::FusedNestedLoop);
        assert_eq!(pipeline.ops.len(), 2);
        assert!(matches!(pipeline.ops[0], RaOp::Scan { .. }));
        match &pipeline.ops[1] {
            RaOp::FusedJoin { levels, head_proj } => {
                assert_eq!(levels.len(), plan.joins.len());
                assert_eq!(head_proj, &plan.head_proj);
            }
            other => panic!("expected FusedJoin, got {other:?}"),
        }
    }

    #[test]
    fn trivially_empty_plans_lower_to_empty_pipelines() {
        let c = compile_src(
            r"
            .decl E(x: number)
            .decl R(x: number)
            .input E
            .output R
            R(x) :- E(x), 1 > 2.
        ",
        );
        let lowered = lower_program(&c, NwayStrategy::TemporarilyMaterialized);
        let all: Vec<&RaPipeline> = lowered
            .iter()
            .flat_map(|s| s.non_recursive.iter().chain(s.recursive.iter()))
            .collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }

    #[test]
    fn lower_program_mirrors_the_stratum_structure() {
        let c = compile_src(REACH);
        let lowered = lower_program(&c, NwayStrategy::TemporarilyMaterialized);
        assert_eq!(lowered.len(), c.strata.len());
        for (stratum, low) in c.strata.iter().zip(&lowered) {
            assert_eq!(stratum.non_recursive.len(), low.non_recursive.len());
            assert_eq!(stratum.recursive.len(), low.recursive.len());
        }
    }

    #[test]
    fn negated_literal_plans_an_anti_join_probe() {
        let c = compile_src(
            r"
            .decl Edge(x: number, y: number)
            .decl Blocked(x: number)
            .decl Reach(x: number, y: number)
            .input Edge
            .input Blocked
            .output Reach
            Reach(x, y) :- Edge(x, y), !Blocked(y).
            Reach(x, y) :- Reach(x, z), Edge(z, y), !Blocked(y).
        ",
        );
        let reach = c.relation_id("Reach").unwrap();
        let blocked = c.relation_id("Blocked").unwrap();
        let stratum = c
            .strata
            .iter()
            .find(|s| s.relations.contains(&reach))
            .unwrap();
        // Negated occurrences never generate delta versions.
        assert_eq!(stratum.non_recursive.len(), 1);
        assert_eq!(stratum.recursive.len(), 1);
        let nonrec = &stratum.non_recursive[0];
        assert_eq!(nonrec.anti_joins.len(), 1);
        assert_eq!(nonrec.anti_joins[0].relation, blocked);
        // Edge(x, y) scanned → columns [x, y]; probe Blocked(y) = Col(1).
        assert_eq!(nonrec.anti_joins[0].probe, vec![ColumnSource::Col(1)]);
        let rec = &stratum.recursive[0];
        assert_eq!(rec.scan.relation, reach);
        assert_eq!(rec.scan.version, VersionSel::Delta);
        assert_eq!(rec.anti_joins.len(), 1);
    }

    #[test]
    fn anti_join_lowering_sits_between_joins_and_project() {
        let c = compile_src(
            r"
            .decl Edge(x: number, y: number)
            .decl Blocked(x: number)
            .decl Reach(x: number, y: number)
            .input Edge
            .input Blocked
            .output Reach
            Reach(x, y) :- Edge(x, y), !Blocked(y).
        ",
        );
        let stratum = c
            .strata
            .iter()
            .find(|s| s.relations.contains(&c.relation_id("Reach").unwrap()))
            .unwrap();
        let plan = &stratum.non_recursive[0];
        let pipeline = lower_rule_plan(plan, NwayStrategy::TemporarilyMaterialized);
        assert!(matches!(pipeline.ops[0], RaOp::Scan { .. }));
        assert!(matches!(pipeline.ops[1], RaOp::AntiJoin { .. }));
        assert!(matches!(pipeline.ops[2], RaOp::Project { .. }));
        // Negation forces the materialized lowering even under the fused
        // strategy: the anti-join probes pre-projection columns.
        let fused = lower_rule_plan(plan, NwayStrategy::FusedNestedLoop);
        assert!(fused
            .ops
            .iter()
            .any(|op| matches!(op, RaOp::AntiJoin { .. })));
        assert!(fused
            .ops
            .iter()
            .all(|op| !matches!(op, RaOp::FusedJoin { .. })));
    }

    #[test]
    fn aggregate_rule_lowers_with_a_trailing_reduce() {
        let c = compile_src(
            r"
            .decl PathLen(x: number, y: number, d: number)
            .decl SP(x: number, y: number, d: number)
            .input PathLen
            .output SP
            SP(x, y, min(d)) :- PathLen(x, y, d).
        ",
        );
        let stratum = c
            .strata
            .iter()
            .find(|s| s.relations.contains(&c.relation_id("SP").unwrap()))
            .unwrap();
        assert!(!stratum.is_recursive, "aggregate rules are non-recursive");
        let plan = &stratum.non_recursive[0];
        assert_eq!(
            plan.reduce,
            Some(ReduceStep {
                op: AggregateOp::Min,
                agg_column: 2
            })
        );
        for strategy in [
            NwayStrategy::TemporarilyMaterialized,
            NwayStrategy::FusedNestedLoop,
        ] {
            let pipeline = lower_rule_plan(plan, strategy);
            match pipeline.ops.last() {
                Some(RaOp::Reduce { op, agg_column }) => {
                    assert_eq!(*op, AggregateOp::Min);
                    assert_eq!(*agg_column, 2);
                }
                other => panic!("expected trailing Reduce, got {other:?}"),
            }
        }
    }

    #[test]
    fn rule_with_only_negative_literals_is_rejected() {
        use crate::ast::ProgramBuilder;
        let p = ProgramBuilder::new()
            .input_relation("B", 1)
            .output_relation("R", 1)
            .rule_with("R", vec![Term::Const(1)], |r| {
                r.body_not("B", vec![Term::Const(1)]);
            })
            .build()
            .unwrap();
        let err = compile(&p).unwrap_err();
        assert!(err.to_string().contains("no positive body literal"));
    }

    #[test]
    fn mutual_recursion_generates_delta_versions_for_both_relations() {
        let c = compile_src(
            r"
            .decl E(x: number, y: number)
            .decl A(x: number, y: number)
            .decl B(x: number, y: number)
            .input E
            .output A
            A(x, y) :- E(x, y).
            A(x, y) :- B(x, z), E(z, y).
            B(x, y) :- A(x, z), E(z, y).
        ",
        );
        let a = c.relation_id("A").unwrap();
        let stratum = c.strata.iter().find(|s| s.relations.contains(&a)).unwrap();
        assert_eq!(stratum.non_recursive.len(), 1);
        assert_eq!(stratum.recursive.len(), 2);
        assert!(stratum
            .recursive
            .iter()
            .all(|p| p.scan.version == VersionSel::Delta));
    }
}
