//! The single-device, operator-at-a-time backend, plus the per-op execution
//! bodies shared with [`crate::backend::ShardedBackend`] (which delegates to
//! them for ops that have no shardable join key).

use super::{Backend, EvalContext, PipelineOutcome};
use crate::error::EngineResult;
use crate::planner::{ColumnSource, FilterStep, JoinStep, ScanStep, VersionSel};
use crate::ra::nway::{fused_rule_join_batch, FusedLevel};
use crate::ra::op::{RaOp, RaPipeline};
use crate::ra::project::{batch_from_flat, filter_batch, scan_select};
use crate::ra::{
    anti_join_batch, difference_batch, group_reduce_batch, hash_join_batch, project_batch,
};
use crate::stats::Phase;
use gpulog_hisa::TupleBatch;
use std::time::Instant;

/// The single-device, operator-at-a-time backend — the paper's evaluation
/// loop, with each op materializing its output batch before the next op
/// runs (temporarily-materialized execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialBackend;

impl Backend for SerialBackend {
    fn name(&self) -> &str {
        "serial"
    }

    fn execute(
        &self,
        ctx: &mut EvalContext<'_>,
        pipeline: &RaPipeline,
    ) -> EngineResult<PipelineOutcome> {
        let mut outcome = PipelineOutcome::default();
        // The intermediate batch flowing between operators: empty until the
        // scan runs, then each op's output. Every consuming op ends the
        // pipeline early when its input arrives empty — no downstream op
        // can derive anything from an empty intermediate.
        let mut batch = TupleBatch::empty(1);
        for op in &pipeline.ops {
            match op {
                RaOp::Scan { step, filters } => {
                    batch = scan_op(ctx, step, filters);
                }
                RaOp::HashJoin { step, filters } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    batch = hash_join_op(ctx, &batch, step, filters)?;
                }
                RaOp::FusedJoin { levels, head_proj } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    batch = fused_join_op(ctx, &batch, levels, head_proj)?;
                }
                RaOp::AntiJoin { step } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    batch = anti_join_op(ctx, &batch, step);
                }
                RaOp::Project { columns } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    batch = project_op(ctx, &batch, columns);
                }
                RaOp::Reduce { op, agg_column } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    batch = reduce_op(ctx, &batch, *op, *agg_column);
                }
                RaOp::Diff { relation } => {
                    diff_op(ctx, *relation, &mut outcome)?;
                }
            }
        }
        install_derived(ctx, pipeline, &batch, &mut outcome);
        Ok(outcome)
    }
}

/// Executes a [`RaOp::Scan`]: select from the relation version, apply the
/// atom-local filters, and keep the plan's columns. An empty source yields
/// an empty batch without launching kernels.
pub(super) fn scan_op(
    ctx: &mut EvalContext<'_>,
    step: &ScanStep,
    filters: &[FilterStep],
) -> TupleBatch {
    let t = Instant::now();
    let storage = &ctx.relations[step.relation];
    let source = match step.version {
        VersionSel::Full => storage.full(),
        VersionSel::Delta => &storage.delta,
    };
    let batch = if source.is_empty() {
        TupleBatch::empty(1)
    } else {
        let scanned = scan_select(
            ctx.device,
            source.tuples_flat(),
            storage.arity,
            &step.const_filters,
            &step.eq_filters,
            &step.keep_cols,
        );
        let mut batch = batch_from_flat(step.keep_cols.len(), scanned);
        if !filters.is_empty() {
            batch = filter_batch(ctx.device, &batch, filters);
        }
        batch
    };
    ctx.stats.add_phase(Phase::Join, t.elapsed());
    batch
}

/// Executes a [`RaOp::HashJoin`] against the whole (unsharded) inner index:
/// build or fetch the index, probe it with the outer batch, and apply the
/// post-join filters.
pub(super) fn hash_join_op(
    ctx: &mut EvalContext<'_>,
    batch: &TupleBatch,
    step: &JoinStep,
    filters: &[FilterStep],
) -> EngineResult<TupleBatch> {
    // Build or fetch the inner index.
    let t = Instant::now();
    let index_phase = match step.version {
        VersionSel::Full => Phase::IndexFull,
        VersionSel::Delta => Phase::IndexDelta,
    };
    {
        let storage = &mut ctx.relations[step.relation];
        let version = match step.version {
            VersionSel::Full => storage.full_mut()?,
            VersionSel::Delta => &mut storage.delta,
        };
        version.index_on(ctx.device, &step.inner_key_cols)?;
    }
    ctx.stats.add_phase(index_phase, t.elapsed());

    let t = Instant::now();
    let storage = &ctx.relations[step.relation];
    let version = match step.version {
        VersionSel::Full => storage.full(),
        VersionSel::Delta => &storage.delta,
    };
    let inner = version
        .existing_index(&step.inner_key_cols)
        .expect("index built above");
    let mut joined = hash_join_batch(
        ctx.device,
        batch,
        &step.outer_key_cols,
        inner,
        &step.inner_const_filters,
        &step.inner_eq_filters,
        &step.emit,
    );
    if !filters.is_empty() {
        joined = filter_batch(ctx.device, &joined, filters);
    }
    ctx.stats.add_phase(Phase::Join, t.elapsed());
    Ok(joined)
}

/// Executes a [`RaOp::FusedJoin`] with every level probing its whole
/// (unsharded) inner index: pre-build the level indices, then run the fused
/// nested-loop kernel.
pub(super) fn fused_join_op(
    ctx: &mut EvalContext<'_>,
    batch: &TupleBatch,
    levels: &[(JoinStep, Vec<FilterStep>)],
    head_proj: &[ColumnSource],
) -> EngineResult<TupleBatch> {
    // Pre-build every level's index, then run the fused kernel.
    let t = Instant::now();
    for (step, _) in levels {
        let storage = &mut ctx.relations[step.relation];
        let version = match step.version {
            VersionSel::Full => storage.full_mut()?,
            VersionSel::Delta => &mut storage.delta,
        };
        version.index_on(ctx.device, &step.inner_key_cols)?;
    }
    ctx.stats.add_phase(Phase::IndexFull, t.elapsed());

    let t = Instant::now();
    let fused_levels: Vec<FusedLevel<'_>> = levels
        .iter()
        .map(|(step, filters)| {
            let storage = &ctx.relations[step.relation];
            let version = match step.version {
                VersionSel::Full => storage.full(),
                VersionSel::Delta => &storage.delta,
            };
            FusedLevel {
                step,
                inner: version
                    .existing_index(&step.inner_key_cols)
                    .expect("index built above"),
                filters: filters.as_slice(),
            }
        })
        .collect();
    let joined = fused_rule_join_batch(ctx.device, batch, &fused_levels, head_proj);
    ctx.stats.add_phase(Phase::Join, t.elapsed());
    Ok(joined)
}

/// Executes a [`RaOp::AntiJoin`]: drop intermediate rows whose probe tuple
/// is present in the negated relation's `full` version. Stratification
/// guarantees that version is complete before this pipeline runs, so the
/// canonical (unsharded) index is always the right thing to probe.
pub(super) fn anti_join_op(
    ctx: &mut EvalContext<'_>,
    batch: &TupleBatch,
    step: &crate::planner::AntiJoinStep,
) -> TupleBatch {
    let t = Instant::now();
    let existing = ctx.relations[step.relation].full().canonical();
    let filtered = anti_join_batch(ctx.device, batch, &step.probe, existing);
    ctx.stats.add_phase(Phase::Join, t.elapsed());
    filtered
}

/// Executes a [`RaOp::Project`] onto the head columns.
pub(super) fn project_op(
    ctx: &mut EvalContext<'_>,
    batch: &TupleBatch,
    columns: &[ColumnSource],
) -> TupleBatch {
    let t = Instant::now();
    let projected = project_batch(ctx.device, batch, columns);
    ctx.stats.add_phase(Phase::Join, t.elapsed());
    projected
}

/// Executes a [`RaOp::Reduce`]: grouped reduction of the head-shaped batch.
/// Must see the rule's *entire* output — the sharded backend gathers its
/// shards before delegating here, and the multi-device plan gathers parts
/// onto device 0.
pub(super) fn reduce_op(
    ctx: &mut EvalContext<'_>,
    batch: &TupleBatch,
    op: crate::ast::AggregateOp,
    agg_column: usize,
) -> TupleBatch {
    let t = Instant::now();
    let reduced = group_reduce_batch(ctx.device, batch, agg_column, op);
    ctx.stats.add_phase(Phase::Deduplication, t.elapsed());
    reduced
}

/// Executes a [`RaOp::Diff`] serially: deduplicate the relation's `new`
/// buffer against full in one pass, install the result as the next delta,
/// and merge it into full.
pub(super) fn diff_op(
    ctx: &mut EvalContext<'_>,
    relation: usize,
    outcome: &mut PipelineOutcome,
) -> EngineResult<()> {
    let storage = &mut ctx.relations[relation];
    let arity = storage.arity;
    let new = TupleBatch::new(arity, storage.take_new(&ctx.ebm));
    outcome.new_rows = new.len();

    let t = Instant::now();
    let delta = difference_batch(ctx.device, &new, storage.full().canonical());
    ctx.stats.add_phase(Phase::Deduplication, t.elapsed());
    outcome.delta_rows = delta.len();

    // `difference_batch` flags its output sorted-unique, so the delta HISA
    // build skips its sort/dedup passes.
    let t = Instant::now();
    storage.set_delta_batch(&delta)?;
    ctx.stats.add_phase(Phase::IndexDelta, t.elapsed());

    let t = Instant::now();
    let ebm = ctx.ebm;
    storage.merge_delta_into_full(&ebm)?;
    ctx.stats.add_phase(Phase::Merge, t.elapsed());
    Ok(())
}

/// Appends a rule pipeline's final batch to the head relation's `new`
/// buffer (diff pipelines install their results themselves).
pub(super) fn install_derived(
    ctx: &mut EvalContext<'_>,
    pipeline: &RaPipeline,
    batch: &TupleBatch,
    outcome: &mut PipelineOutcome,
) {
    if !pipeline.ops.is_empty() && !matches!(pipeline.ops.last(), Some(RaOp::Diff { .. })) {
        outcome.derived_rows = batch.len();
        if !batch.is_empty() {
            ctx.relations[pipeline.head].push_new_batch(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ebm::EbmConfig;
    use crate::planner::{ColumnSource, ScanStep};
    use crate::relation::RelationStorage;
    use crate::stats::RunStats;
    use gpulog_device::profile::DeviceProfile;
    use gpulog_device::Device;
    use gpulog_hisa::DEFAULT_LOAD_FACTOR;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn scan_project_pipeline_derives_into_the_head_buffer() {
        let d = device();
        let mut relations = vec![
            RelationStorage::new(&d, "E", 2, DEFAULT_LOAD_FACTOR).unwrap(),
            RelationStorage::new(&d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap(),
        ];
        relations[0].load_full(&[1, 2, 3, 4]).unwrap();
        let pipeline = RaPipeline {
            head: 1,
            ops: vec![
                RaOp::Scan {
                    step: ScanStep {
                        relation: 0,
                        version: VersionSel::Full,
                        const_filters: vec![],
                        eq_filters: vec![],
                        keep_cols: vec![0, 1],
                    },
                    filters: vec![],
                },
                RaOp::Project {
                    columns: vec![ColumnSource::Col(1), ColumnSource::Col(0)],
                },
            ],
            text: "R(y, x) :- E(x, y).".into(),
        };
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut relations,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        let outcome = SerialBackend.execute(&mut ctx, &pipeline).unwrap();
        assert_eq!(outcome.derived_rows, 2);
        assert_eq!(
            relations[1].take_new(&EbmConfig::default()),
            vec![2, 1, 4, 3]
        );
    }

    #[test]
    fn diff_pipeline_populates_and_merges_the_delta() {
        let d = device();
        let mut relations = vec![RelationStorage::new(&d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap()];
        relations[0].load_full(&[1, 2]).unwrap();
        relations[0].push_new(&[1, 2, 3, 4, 3, 4, 5, 6]);
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut relations,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        let outcome = SerialBackend
            .execute(&mut ctx, &RaPipeline::diff(0))
            .unwrap();
        assert_eq!(outcome.new_rows, 4);
        assert_eq!(outcome.delta_rows, 2, "dedup removes (3,4); (1,2) in full");
        assert_eq!(relations[0].len(), 3);
        assert!(relations[0].contains(&[5, 6]));
        assert!(stats.phase(Phase::Merge) > 0.0);
    }

    #[test]
    fn empty_pipeline_derives_nothing() {
        let d = device();
        let mut relations = vec![RelationStorage::new(&d, "R", 1, DEFAULT_LOAD_FACTOR).unwrap()];
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut relations,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        let pipeline = RaPipeline {
            head: 0,
            ops: vec![],
            text: "trivially empty".into(),
        };
        let outcome = SerialBackend.execute(&mut ctx, &pipeline).unwrap();
        assert_eq!(outcome, PipelineOutcome::default());
    }
}
