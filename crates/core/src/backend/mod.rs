//! Pluggable evaluation backends.
//!
//! The engine never runs relational-algebra kernels itself: it lowers every
//! rule plan into an [`RaPipeline`] (see [`crate::planner::lower_rule_plan`])
//! and hands the pipeline to a [`Backend`] together with an [`EvalContext`]
//! — the device, the relation storages, and the statistics sink. Two
//! implementations ship:
//!
//! * [`SerialBackend`] executes operators one after another on a single
//!   simulated device, exactly reproducing the paper's single-GPU
//!   evaluation loop.
//! * [`ShardedBackend`] hash-partitions relations by their join keys and
//!   fans each join / delta-population op out as `S` independent per-shard
//!   tasks dispatched to the persistent worker pool in a single epoch —
//!   the ROADMAP's sharded-relations item, landed entirely behind this
//!   trait.
//! * [`MultiGpuBackend`] pins each hash shard to one device of a simulated
//!   [`gpulog_device::topology::DeviceTopology`], attributes per-shard
//!   work to that device's counters, and explicitly models the
//!   end-of-iteration delta exchange against the topology's link model —
//!   producing per-device modeled time, cross-device exchange bytes, and a
//!   modeled critical path (surfaced through
//!   [`Backend::topology_report`]), while computing fixpoints
//!   byte-identical to the serial backend.
//!
//! * [`PipelinedBackend`] wraps the sharded execution path but breaks the
//!   per-iteration merge barrier: deltas install immediately while the
//!   O(|full|) merge passes coalesce and drain on the device's background
//!   lane, overlapping with the next iteration's joins. The engine's only
//!   concession is [`Backend::fence`], called wherever it reads relation
//!   storage directly.

use crate::ebm::EbmConfig;
use crate::error::EngineResult;
use crate::planner::{RelId, VersionSel};
use crate::ra::op::RaPipeline;
use crate::relation::RelationStorage;
use crate::stats::RunStats;
use gpulog_device::topology::TopologyReport;
use gpulog_device::Device;
use gpulog_hisa::Hisa;
use std::fmt;
use std::num::NonZeroUsize;

mod multigpu;
mod pipelined;
mod serial;
mod sharded;

pub use multigpu::MultiGpuBackend;
pub use pipelined::PipelinedBackend;
pub use serial::SerialBackend;
pub use sharded::ShardedBackend;

/// Everything a backend needs to execute one pipeline: the device to launch
/// kernels on, the relation storages to read and write, the statistics sink
/// the paper's Figure 6 phase buckets are timed into, and the
/// eager-buffer-management policy governing allocations.
#[derive(Debug)]
pub struct EvalContext<'a> {
    /// The (simulated) device kernels run on.
    pub device: &'a Device,
    /// All relation storages, indexed by [`crate::planner::RelId`].
    pub relations: &'a mut [RelationStorage],
    /// Phase-bucketed timing sink.
    pub stats: &'a mut RunStats,
    /// Eager-buffer-management policy for delta population and merges.
    pub ebm: EbmConfig,
}

impl EvalContext<'_> {
    /// Builds (or refreshes from cache) the shard map of one relation
    /// version: `shards` HISAs over `key_cols`, where shard `i` holds
    /// exactly the tuples whose key values hash to `i` (see
    /// [`gpulog_hisa::shard_of`]). The map is cached on the relation's
    /// storage and kept consistent across delta merges, so a fixpoint run
    /// pays the full build once and per-shard merges afterwards.
    ///
    /// # Errors
    ///
    /// Returns a device error if building any shard exhausts device memory.
    pub fn build_shard_map(
        &mut self,
        relation: RelId,
        version: VersionSel,
        key_cols: &[usize],
        shards: NonZeroUsize,
    ) -> EngineResult<()> {
        let storage = &mut self.relations[relation];
        let version = match version {
            VersionSel::Full => storage.full_mut()?,
            VersionSel::Delta => &mut storage.delta,
        };
        version
            .sharded_index_on(self.device, key_cols, shards)
            .map(|_| ())
    }

    /// The already-built shard map of one relation version (see
    /// [`EvalContext::build_shard_map`]), or `None` if it has not been
    /// built.
    pub fn shard_map(
        &self,
        relation: RelId,
        version: VersionSel,
        key_cols: &[usize],
        shards: NonZeroUsize,
    ) -> Option<&[Hisa]> {
        let storage = &self.relations[relation];
        let version = match version {
            VersionSel::Full => storage.full(),
            VersionSel::Delta => &storage.delta,
        };
        version.existing_sharded_index(key_cols, shards)
    }
}

/// What executing one pipeline produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineOutcome {
    /// Head tuples appended to the head relation's `new` buffer (rule
    /// pipelines).
    pub derived_rows: usize,
    /// Raw `new` rows consumed (diff pipelines).
    pub new_rows: usize,
    /// Delta rows installed and merged into full (diff pipelines).
    pub delta_rows: usize,
}

/// A rule-evaluation backend: executes lowered [`RaPipeline`]s against an
/// [`EvalContext`].
///
/// Implementations must preserve the engine's semantics — a pipeline's head
/// tuples go to the head relation's `new` buffer, and a
/// [`crate::ra::op::RaOp::Diff`] pipeline installs and merges the
/// relation's next delta — but are free to choose *how*: serially on one
/// device, sharded across worker groups, or overlapped across iterations.
pub trait Backend: fmt::Debug + Send {
    /// A short human-readable backend name (for diagnostics).
    fn name(&self) -> &str;

    /// Executes one operator pipeline to completion.
    ///
    /// # Errors
    ///
    /// Returns device errors (including out-of-memory) raised while
    /// building indices or materializing intermediates.
    fn execute(
        &self,
        ctx: &mut EvalContext<'_>,
        pipeline: &RaPipeline,
    ) -> EngineResult<PipelineOutcome>;

    /// The cumulative multi-device modeling report, for backends that pin
    /// work to a simulated [`gpulog_device::topology::DeviceTopology`]
    /// ([`MultiGpuBackend`]); `None` for single-device backends. The
    /// engine copies it into [`crate::RunStats::topology`] after a run.
    fn topology_report(&self) -> Option<TopologyReport> {
        None
    }

    /// Settles every deferred effect the backend may still have in flight,
    /// leaving each relation's stored state exactly as a bulk-synchronous
    /// backend would. The engine calls this wherever it is about to read
    /// relation storage directly (fixpoint seeding, end of a stratum);
    /// backends that complete every pipeline eagerly — all of them except
    /// [`PipelinedBackend`] — keep this default no-op.
    ///
    /// # Errors
    ///
    /// Returns device errors raised while draining deferred work.
    fn fence(&self, ctx: &mut EvalContext<'_>) -> EngineResult<()> {
        let _ = ctx;
        Ok(())
    }
}
