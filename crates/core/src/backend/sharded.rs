//! The hash-partitioned, worker-pool-parallel backend.
//!
//! `ShardedBackend` is the ROADMAP's sharded-relations item: every relation
//! version involved in a join gets a *shard map* — `S` HISAs partitioned by
//! [`gpulog_hisa::shard_of`] over the join-key hash — and each shardable op
//! becomes `S` independent per-shard tasks handed to the persistent
//! [`gpulog_device` worker pool](gpulog_device::Executor) as **one epoch**:
//!
//! * [`RaOp::HashJoin`] — the outer batch partitions by the same key hash
//!   as the inner's shard map, so shard `i` of the outer only probes shard
//!   `i` of the inner. `S` independent joins, one pool dispatch.
//! * [`RaOp::FusedJoin`] — the outer partitions by the *first* level's key
//!   and that level's inner is sharded the same way; deeper levels (whose
//!   keys are produced mid-kernel) probe their whole index.
//! * [`RaOp::Diff`] — the `new` buffer partitions by the full-tuple hash;
//!   each shard deduplicates and subtracts `full` independently, and a
//!   k-way merge of the per-shard (sorted, disjoint) results reassembles
//!   the exact byte sequence the serial difference produces. The sharded
//!   full representations merge their delta slice shard-locally, so the
//!   serial merge bottleneck disappears from the sharded read path.
//!
//! Because per-shard results are reassembled in shard order and the delta
//! is re-sorted globally, a sharded run is **byte-identical** to a serial
//! run at every fixpoint — the property tests in
//! `tests/tests/backend_pipeline.rs` pin exactly that.
//!
//! Ops with nothing to shard on (cross products, fused chains whose first
//! level binds no key) delegate to the serial op bodies.

use super::serial::{
    self, anti_join_op, fused_join_op, hash_join_op, install_derived, project_op, reduce_op,
    scan_op,
};
use super::{Backend, EvalContext, PipelineOutcome};
use crate::error::{EngineError, EngineResult};
use crate::planner::{ColumnSource, FilterStep, JoinStep, RelId, VersionSel};
use crate::ra::difference_batch;
use crate::ra::hash_join_batch;
use crate::ra::nway::{fused_rule_join_batch, FusedLevel};
use crate::ra::op::{RaOp, RaPipeline};
use crate::ra::project::filter_batch;
use crate::relation::RelationStorage;
use crate::stats::Phase;
use gpulog_device::Device;
use gpulog_hisa::TupleBatch;
use std::num::NonZeroUsize;
use std::time::Instant;

/// The hash-partitioned backend: each relation's HISA is sharded by
/// `hash(join_key) % shards`, and every shardable op runs as one worker-pool
/// epoch of per-shard tasks. Construct with [`ShardedBackend::new`] or let
/// [`crate::EngineBuilder`] install it from
/// [`crate::EngineConfig::with_shard_count`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedBackend {
    /// Non-zero by construction, so the data layer's partitioning calls
    /// are panic-free without re-validating.
    shards: NonZeroUsize,
}

impl ShardedBackend {
    /// Creates a backend evaluating over `shards` hash partitions. One
    /// shard degenerates to the serial evaluation loop.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidShardCount`] if `shards` is zero.
    pub fn new(shards: usize) -> EngineResult<Self> {
        match NonZeroUsize::new(shards) {
            Some(shards) => Ok(ShardedBackend { shards }),
            None => Err(EngineError::InvalidShardCount { shards }),
        }
    }

    /// The number of hash partitions this backend evaluates over.
    pub fn shards(&self) -> usize {
        self.shards.get()
    }

    /// [`RaOp::HashJoin`] over the shard map: shard `i` of the outer batch
    /// probes shard `i` of the inner relation — `S` independent joins
    /// dispatched to the worker pool as a single epoch.
    fn sharded_hash_join(
        &self,
        ctx: &mut EvalContext<'_>,
        outer: &TupleBatch,
        step: &JoinStep,
        filters: &[FilterStep],
    ) -> EngineResult<TupleBatch> {
        let shards = self.shards;
        let t = Instant::now();
        let index_phase = match step.version {
            VersionSel::Full => Phase::IndexFull,
            VersionSel::Delta => Phase::IndexDelta,
        };
        ctx.build_shard_map(step.relation, step.version, &step.inner_key_cols, shards)?;
        ctx.stats.add_phase(index_phase, t.elapsed());

        let t = Instant::now();
        let parts = outer.partition_by_key_hash(&step.outer_key_cols, shards);
        let joined = {
            let device = ctx.device;
            let inners = ctx
                .shard_map(step.relation, step.version, &step.inner_key_cols, shards)
                .expect("shard map built above");
            let outs = fan_out_shards(device, parts, |shard, part| {
                let mut out = hash_join_batch(
                    device,
                    part,
                    &step.outer_key_cols,
                    &inners[shard],
                    &step.inner_const_filters,
                    &step.inner_eq_filters,
                    &step.emit,
                );
                if !filters.is_empty() {
                    out = filter_batch(device, &out, filters);
                }
                out
            });
            concat_shard_outputs(step.emit.len(), outs)
        };
        ctx.stats.add_phase(Phase::Join, t.elapsed());
        Ok(joined)
    }

    /// [`RaOp::FusedJoin`] with the outer batch and the first level's inner
    /// partition-aligned on the level-0 key; deeper levels probe their
    /// whole index inside each per-shard fused kernel. One pool epoch of
    /// `S` fused joins.
    fn sharded_fused_join(
        &self,
        ctx: &mut EvalContext<'_>,
        outer: &TupleBatch,
        levels: &[(JoinStep, Vec<FilterStep>)],
        head_proj: &[ColumnSource],
    ) -> EngineResult<TupleBatch> {
        let shards = self.shards;
        let (level0, _) = &levels[0];
        let t = Instant::now();
        ctx.build_shard_map(
            level0.relation,
            level0.version,
            &level0.inner_key_cols,
            shards,
        )?;
        for (step, _) in &levels[1..] {
            let storage = &mut ctx.relations[step.relation];
            let version = match step.version {
                VersionSel::Full => storage.full_mut()?,
                VersionSel::Delta => &mut storage.delta,
            };
            version.index_on(ctx.device, &step.inner_key_cols)?;
        }
        ctx.stats.add_phase(Phase::IndexFull, t.elapsed());

        let t = Instant::now();
        let parts = outer.partition_by_key_hash(&level0.outer_key_cols, shards);
        let joined = {
            let device = ctx.device;
            let relations: &[RelationStorage] = ctx.relations;
            let inners0 = ctx
                .shard_map(
                    level0.relation,
                    level0.version,
                    &level0.inner_key_cols,
                    shards,
                )
                .expect("shard map built above");
            let outs = fan_out_shards(device, parts, |shard, part| {
                let fused_levels: Vec<FusedLevel<'_>> = levels
                    .iter()
                    .enumerate()
                    .map(|(depth, (step, step_filters))| {
                        let inner = if depth == 0 {
                            &inners0[shard]
                        } else {
                            let storage = &relations[step.relation];
                            let version = match step.version {
                                VersionSel::Full => storage.full(),
                                VersionSel::Delta => &storage.delta,
                            };
                            version
                                .existing_index(&step.inner_key_cols)
                                .expect("index built above")
                        };
                        FusedLevel {
                            step,
                            inner,
                            filters: step_filters.as_slice(),
                        }
                    })
                    .collect();
                fused_rule_join_batch(device, part, &fused_levels, head_proj)
            });
            concat_shard_outputs(head_proj.len(), outs)
        };
        ctx.stats.add_phase(Phase::Join, t.elapsed());
        Ok(joined)
    }

    /// [`RaOp::Diff`] sharded by the full-tuple hash: per-shard
    /// deduplication and set difference in one pool epoch, then a k-way
    /// merge of the (sorted, pairwise-disjoint) shard results into the
    /// globally sorted delta — byte-identical to the serial difference.
    fn sharded_diff(
        &self,
        ctx: &mut EvalContext<'_>,
        relation: RelId,
        outcome: &mut PipelineOutcome,
    ) -> EngineResult<()> {
        let shards = self.shards;
        let device = ctx.device;
        let storage = &mut ctx.relations[relation];
        let arity = storage.arity;
        let new = TupleBatch::new(arity, storage.take_new(&ctx.ebm));
        outcome.new_rows = new.len();

        let t = Instant::now();
        let full_key: Vec<usize> = (0..arity).collect();
        let parts = new.partition_by_key_hash(&full_key, shards);
        let delta = {
            let full = storage.full().canonical();
            let outs = fan_out_shards(device, parts, |_, part| {
                difference_batch(device, part, full)
            });
            TupleBatch::merge_sorted_unique(arity, outs)
        };
        ctx.stats.add_phase(Phase::Deduplication, t.elapsed());
        outcome.delta_rows = delta.len();

        let t = Instant::now();
        storage.set_delta_batch(&delta)?;
        ctx.stats.add_phase(Phase::IndexDelta, t.elapsed());

        // The canonical full store merges serially (it is the authoritative
        // unsharded tuple array); every cached shard map merges its own
        // delta slice in a parallel epoch inside `merge_delta_into_full`.
        let t = Instant::now();
        let ebm = ctx.ebm;
        storage.merge_delta_into_full(&ebm)?;
        ctx.stats.add_phase(Phase::Merge, t.elapsed());
        Ok(())
    }
}

/// The one fan-out scaffold behind every sharded op: hands `parts` to the
/// worker pool as a single epoch — one task per shard, each computing its
/// output batch with `run(shard, part)` — and returns the outputs in shard
/// order. Kernels called inside `run` execute inline on their worker
/// (nested dispatches never re-enter the pool). Shared with the multi-GPU
/// backend, whose per-device tasks are exactly these per-shard tasks.
pub(super) fn fan_out_shards<F>(device: &Device, parts: Vec<TupleBatch>, run: F) -> Vec<TupleBatch>
where
    F: Fn(usize, &TupleBatch) -> TupleBatch + Sync,
{
    let mut outs: Vec<Option<TupleBatch>> = (0..parts.len()).map(|_| None).collect();
    let jobs: Vec<(usize, TupleBatch, &mut Option<TupleBatch>)> = parts
        .into_iter()
        .zip(outs.iter_mut())
        .enumerate()
        .map(|(shard, (part, slot))| (shard, part, slot))
        .collect();
    device.executor().run_tasks(jobs, |_, (shard, part, slot)| {
        *slot = Some(run(shard, &part));
    });
    outs.into_iter().flatten().collect()
}

/// Reassembles per-shard op outputs in shard order. A zero-column emit list
/// keeps the empty one-column sentinel the kernels use (see
/// `batch_from_flat`).
pub(super) fn concat_shard_outputs(arity: usize, outs: Vec<TupleBatch>) -> TupleBatch {
    if arity == 0 {
        TupleBatch::empty(1)
    } else {
        TupleBatch::concat(arity, outs)
    }
}

impl Backend for ShardedBackend {
    fn name(&self) -> &str {
        "sharded"
    }

    fn execute(
        &self,
        ctx: &mut EvalContext<'_>,
        pipeline: &RaPipeline,
    ) -> EngineResult<PipelineOutcome> {
        if self.shards.get() == 1 {
            // One shard is exactly the serial evaluation loop; skip the
            // partition/merge machinery.
            return serial::SerialBackend.execute(ctx, pipeline);
        }
        let mut outcome = PipelineOutcome::default();
        let mut batch = TupleBatch::empty(1);
        for op in &pipeline.ops {
            match op {
                RaOp::Scan { step, filters } => {
                    batch = scan_op(ctx, step, filters);
                }
                RaOp::HashJoin { step, filters } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    batch = if step.outer_key_cols.is_empty() {
                        // Cross product: no key to shard on.
                        hash_join_op(ctx, &batch, step, filters)?
                    } else {
                        self.sharded_hash_join(ctx, &batch, step, filters)?
                    };
                }
                RaOp::FusedJoin { levels, head_proj } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    let shardable = levels
                        .first()
                        .is_some_and(|(level0, _)| !level0.outer_key_cols.is_empty());
                    batch = if shardable {
                        self.sharded_fused_join(ctx, &batch, levels, head_proj)?
                    } else {
                        fused_join_op(ctx, &batch, levels, head_proj)?
                    };
                }
                RaOp::AntiJoin { step } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    // A probe-only filter with no inner index to shard: the
                    // kernel already fans its rows out across the worker
                    // pool, and it preserves row order, so sharding adds
                    // nothing but a reassembly pass.
                    batch = anti_join_op(ctx, &batch, step);
                }
                RaOp::Project { columns } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    batch = project_op(ctx, &batch, columns);
                }
                RaOp::Reduce { op, agg_column } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    // The reduction must see the rule's entire output —
                    // a group's rows may span shards — so it runs over the
                    // reassembled batch.
                    batch = reduce_op(ctx, &batch, *op, *agg_column);
                }
                RaOp::Diff { relation } => {
                    self.sharded_diff(ctx, *relation, &mut outcome)?;
                }
            }
        }
        install_derived(ctx, pipeline, &batch, &mut outcome);
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::serial::SerialBackend;
    use super::*;
    use crate::ebm::EbmConfig;
    use crate::planner::{EmitSource, ScanStep};
    use crate::stats::RunStats;
    use gpulog_device::profile::DeviceProfile;
    use gpulog_device::Device;
    use gpulog_hisa::DEFAULT_LOAD_FACTOR;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    fn join_pipeline() -> RaPipeline {
        RaPipeline {
            head: 2,
            ops: vec![
                RaOp::Scan {
                    step: ScanStep {
                        relation: 0,
                        version: VersionSel::Full,
                        const_filters: vec![],
                        eq_filters: vec![],
                        keep_cols: vec![0, 1],
                    },
                    filters: vec![],
                },
                RaOp::HashJoin {
                    step: JoinStep {
                        relation: 1,
                        version: VersionSel::Full,
                        outer_key_cols: vec![1],
                        inner_key_cols: vec![0],
                        inner_const_filters: vec![],
                        inner_eq_filters: vec![],
                        emit: vec![
                            EmitSource::Outer(0),
                            EmitSource::Outer(1),
                            EmitSource::Inner(1),
                        ],
                    },
                    filters: vec![],
                },
                RaOp::Project {
                    columns: vec![ColumnSource::Col(0), ColumnSource::Col(2)],
                },
            ],
            text: "H(x, z) :- A(x, y), B(y, z).".into(),
        }
    }

    fn storages(d: &Device) -> Vec<RelationStorage> {
        let mut relations = vec![
            RelationStorage::new(d, "A", 2, DEFAULT_LOAD_FACTOR).unwrap(),
            RelationStorage::new(d, "B", 2, DEFAULT_LOAD_FACTOR).unwrap(),
            RelationStorage::new(d, "H", 2, DEFAULT_LOAD_FACTOR).unwrap(),
        ];
        let a: Vec<u32> = (0..60u32).flat_map(|i| [i, i % 11]).collect();
        let b: Vec<u32> = (0..40u32).flat_map(|i| [i % 11, i * 3]).collect();
        relations[0].load_full(&a).unwrap();
        relations[1].load_full(&b).unwrap();
        relations
    }

    #[test]
    fn zero_shards_is_an_invalid_shard_count() {
        assert!(matches!(
            ShardedBackend::new(0),
            Err(EngineError::InvalidShardCount { shards: 0 })
        ));
        assert_eq!(ShardedBackend::new(4).unwrap().shards(), 4);
    }

    #[test]
    fn sharded_join_matches_serial_as_a_set_for_every_shard_count() {
        let d = device();
        let mut serial_rels = storages(&d);
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut serial_rels,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        SerialBackend.execute(&mut ctx, &join_pipeline()).unwrap();
        let mut expected = serial_rels[2].take_new(&EbmConfig::default());
        sort_rows(&mut expected, 2);

        for shards in [1usize, 2, 3, 7] {
            let backend = ShardedBackend::new(shards).unwrap();
            let mut rels = storages(&d);
            let mut stats = RunStats::default();
            let mut ctx = EvalContext {
                device: &d,
                relations: &mut rels,
                stats: &mut stats,
                ebm: EbmConfig::default(),
            };
            let outcome = backend.execute(&mut ctx, &join_pipeline()).unwrap();
            let mut got = rels[2].take_new(&EbmConfig::default());
            assert_eq!(outcome.derived_rows * 2, got.len());
            sort_rows(&mut got, 2);
            assert_eq!(got, expected, "shards = {shards}");
        }
    }

    #[test]
    fn sharded_diff_is_byte_identical_to_serial() {
        let d = device();
        let new_rows: Vec<u32> = (0..300u32).flat_map(|i| [i % 37, i % 13]).collect();
        let run = |backend: &dyn Backend| {
            let mut rels = vec![RelationStorage::new(&d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap()];
            rels[0].load_full(&[1, 1, 5, 5, 36, 12]).unwrap();
            rels[0].push_new(&new_rows);
            let mut stats = RunStats::default();
            let mut ctx = EvalContext {
                device: &d,
                relations: &mut rels,
                stats: &mut stats,
                ebm: EbmConfig::default(),
            };
            let outcome = backend.execute(&mut ctx, &RaPipeline::diff(0)).unwrap();
            (
                outcome,
                rels[0].delta.tuples_flat().to_vec(),
                rels[0].full().tuples_flat().to_vec(),
            )
        };
        let serial = run(&SerialBackend);
        for shards in [2usize, 3, 7] {
            let sharded = run(&ShardedBackend::new(shards).unwrap());
            assert_eq!(sharded, serial, "shards = {shards}");
        }
    }

    fn sort_rows(flat: &mut [u32], arity: usize) {
        let mut rows: Vec<Vec<u32>> = flat.chunks_exact(arity).map(<[u32]>::to_vec).collect();
        rows.sort();
        for (chunk, row) in flat.chunks_exact_mut(arity).zip(rows) {
            chunk.copy_from_slice(&row);
        }
    }
}
