//! The iteration-overlapping backend: sharded execution with the
//! per-iteration merge barrier broken.
//!
//! [`PipelinedBackend`] wraps the sharded execution path but does not fence
//! the end of every iteration. Each relation's delta runs are
//! double-buffered: a [`crate::ra::op::RaOp::Diff`] installs the next delta
//! immediately (so iteration N+1's join probes can start) but defers the
//! O(|full|) merge passes, parking the sorted-unique delta in a per-relation
//! `pending` buffer. Once [`MERGE_BATCH`] runs accumulate — more when the
//! pending rows are still tiny relative to |full|, see [`ADAPTIVE_RATIO`] —
//! the full version is moved onto the device's background lane
//! ([`gpulog_device::Device::submit_background`]) and all pending runs are
//! merged in a single coalesced pass
//! ([`crate::relation::RelationVersion::merge_sorted_unique_runs`]) while
//! the foreground evaluates the next iteration's joins. Coalescing pays the
//! full-relation sorted-index and inverse-permutation streaming passes once
//! per drain instead of once per delta, and the lane hides the drain behind
//! compute — the two wins the ISSUE's chain-REACH smoke measures.
//!
//! Correctness hinges on one readiness rule: any op that reads a relation's
//! **full** version first *settles* that relation (drains the in-flight
//! merge and folds the pending runs in), so no join ever probes a lagging
//! full. Diff itself tolerates the lag — it deduplicates against the lagging
//! full and then subtracts each pending run, which is set-equal (and, both
//! operands being sorted-unique, byte-equal) to deduplicating against the
//! fully-merged full. The engine calls [`Backend::fence`] wherever it reads
//! storage directly, which settles every relation; fixpoints are therefore
//! byte-identical to [`super::SerialBackend`].

use super::{Backend, EvalContext, PipelineOutcome, ShardedBackend};
use crate::error::EngineResult;
use crate::planner::{RelId, VersionSel};
use crate::ra::difference_batch;
use crate::ra::op::{RaOp, RaPipeline};
use crate::relation::RelationVersion;
use crate::stats::Phase;
use gpulog_device::JobHandle;
use gpulog_hisa::TupleBatch;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// How many deferred delta runs trigger a background merge. Two runs per
/// drain halves the number of O(|full|) merge passes while keeping at most
/// one iteration's delta un-probed-against-full at any time.
const MERGE_BATCH: usize = 2;

/// Upper bound on deferred runs when the adaptive policy keeps batching.
/// Diff subtracts every pending run on the foreground path, so unbounded
/// deferral would trade O(|full|) merge passes for O(runs · |delta|)
/// subtractions.
const MAX_MERGE_BATCH: usize = 8;

/// The adaptive threshold: keep deferring while the pending rows are more
/// than this factor smaller than |full|. Each drain streams the whole full
/// version, so a drain is only worth its cost once the pending payload is a
/// meaningful fraction of it.
const ADAPTIVE_RATIO: usize = 8;

/// Deferred merge state for one relation.
struct RelState {
    /// Sorted-unique delta runs not yet merged into full. Pairwise disjoint
    /// and disjoint from the stored full, in iteration order.
    pending: Vec<TupleBatch>,
    /// The full version, moved onto the background lane mid-merge. While
    /// this is `Some`, the relation's stored full is an empty placeholder
    /// and must not be read — every read path settles first.
    inflight: Option<JobHandle<EngineResult<RelationVersion>>>,
}

impl RelState {
    fn is_settled(&self) -> bool {
        self.pending.is_empty() && self.inflight.is_none()
    }
}

/// The iteration-overlapping backend (see the module docs for the
/// double-buffer protocol). Joins and delta population delegate to an inner
/// [`ShardedBackend`]; only the diff/merge path is pipelined.
pub struct PipelinedBackend {
    inner: ShardedBackend,
    state: Mutex<HashMap<RelId, RelState>>,
}

impl fmt::Debug for PipelinedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelinedBackend")
            .field("shards", &self.inner.shards())
            .finish()
    }
}

impl PipelinedBackend {
    /// Creates a backend evaluating over `shards` hash partitions with
    /// iteration overlap. One shard pipelines the serial evaluation loop.
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::InvalidShardCount`] when `shards == 0`.
    pub fn new(shards: usize) -> EngineResult<Self> {
        Ok(PipelinedBackend {
            inner: ShardedBackend::new(shards)?,
            state: Mutex::new(HashMap::new()),
        })
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.inner.shards()
    }

    fn state_map(&self) -> MutexGuard<'_, HashMap<RelId, RelState>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn take_state(&self, relation: RelId) -> RelState {
        self.state_map().remove(&relation).unwrap_or(RelState {
            pending: Vec::new(),
            inflight: None,
        })
    }

    fn put_state(&self, relation: RelId, state: RelState) {
        if !state.is_settled() {
            self.state_map().insert(relation, state);
        }
    }

    /// Joins the relation's in-flight background merge, if any, restoring
    /// the merged full version into storage. Attributes the job's whole
    /// outstanding window (submission to drain start) to `overlap_nanos`
    /// and only the blocking remainder to `pipeline_stall_nanos`.
    fn drain_inflight(
        state: &mut RelState,
        ctx: &mut EvalContext<'_>,
        relation: RelId,
    ) -> EngineResult<()> {
        let Some(handle) = state.inflight.take() else {
            return Ok(());
        };
        let metrics = ctx.device.metrics();
        let drain_begin = Instant::now();
        let outstanding = drain_begin.duration_since(handle.submitted_at());
        metrics.add_overlap_nanos(outstanding.as_nanos() as u64);
        let full = handle.wait()?;
        let stall = drain_begin.elapsed();
        metrics.add_pipeline_stall_nanos(stall.as_nanos() as u64);
        ctx.stats.add_phase(Phase::Merge, stall);
        ctx.relations[relation].install_full(full);
        Ok(())
    }

    /// Brings one relation's stored full up to date: drains the in-flight
    /// merge and synchronously folds in any remaining pending runs. After
    /// this, the relation's storage is exactly what a bulk-synchronous
    /// backend would hold.
    fn settle(&self, ctx: &mut EvalContext<'_>, relation: RelId) -> EngineResult<()> {
        let mut state = self.take_state(relation);
        Self::drain_inflight(&mut state, ctx, relation)?;
        if !state.pending.is_empty() {
            let runs = std::mem::take(&mut state.pending);
            let device = ctx.device;
            let ebm = ctx.ebm;
            let t = Instant::now();
            ctx.relations[relation]
                .full_mut()?
                .merge_sorted_unique_runs(device, &runs, &ebm)?;
            ctx.stats.add_phase(Phase::Merge, t.elapsed());
        }
        debug_assert!(state.is_settled());
        Ok(())
    }

    /// The relations whose **full** version this pipeline reads — each must
    /// be settled before the pipeline runs on the inner backend.
    fn full_reads(pipeline: &RaPipeline) -> Vec<RelId> {
        let mut rels = Vec::new();
        for op in &pipeline.ops {
            match op {
                RaOp::Scan { step, .. } => {
                    if step.version == VersionSel::Full {
                        rels.push(step.relation);
                    }
                }
                RaOp::HashJoin { step, .. } => {
                    if step.version == VersionSel::Full {
                        rels.push(step.relation);
                    }
                }
                RaOp::FusedJoin { levels, .. } => {
                    for (step, _) in levels {
                        if step.version == VersionSel::Full {
                            rels.push(step.relation);
                        }
                    }
                }
                // The anti-join probes the negated relation's full version,
                // which stratification promises is complete — but "complete"
                // includes any merge this backend deferred, so settle it.
                RaOp::AntiJoin { step } => rels.push(step.relation),
                RaOp::Project { .. } | RaOp::Reduce { .. } => {}
                // A diff embedded in a larger pipeline (the engine never
                // builds one, but the trait allows it) runs eagerly on the
                // inner backend, so its relation must be settled too.
                RaOp::Diff { relation } => rels.push(*relation),
            }
        }
        rels.sort_unstable();
        rels.dedup();
        rels
    }

    /// The pipelined [`RaOp::Diff`]: installs the next delta immediately
    /// but defers the full merge (see the module docs).
    fn pipelined_diff(
        &self,
        ctx: &mut EvalContext<'_>,
        relation: RelId,
        outcome: &mut PipelineOutcome,
    ) -> EngineResult<()> {
        let mut state = self.take_state(relation);
        // The stored full is a placeholder while a merge is in flight, so
        // the diff below must join it first. The pending runs submitted
        // with it travel inside the job; only runs deferred *after* the
        // submission remain in `state.pending`.
        Self::drain_inflight(&mut state, ctx, relation)?;

        let device = ctx.device;
        let ebm = ctx.ebm;
        let storage = &mut ctx.relations[relation];
        let arity = storage.arity;
        let new = TupleBatch::new(arity, storage.take_new(&ebm));
        outcome.new_rows = new.len();

        // Deduplicate against the (possibly lagging) full, then subtract
        // each pending run: together that is exactly "minus the serial
        // full", since serial full = stored full ∪ pending runs.
        let t = Instant::now();
        let mut delta = difference_batch(device, &new, storage.full().canonical());
        for run in &state.pending {
            if delta.is_empty() {
                break;
            }
            delta = delta.subtract_sorted_unique(run);
        }
        ctx.stats.add_phase(Phase::Deduplication, t.elapsed());
        outcome.delta_rows = delta.len();

        let t = Instant::now();
        storage.set_delta_batch(&delta)?;
        ctx.stats.add_phase(Phase::IndexDelta, t.elapsed());

        if !delta.is_empty() {
            state.pending.push(delta);
        }

        if state.pending.len() >= MERGE_BATCH {
            // Adaptive batching: when the pending payload is still tiny
            // relative to |full|, a drain would stream the whole full
            // version to fold in almost nothing — keep deferring (up to
            // MAX_MERGE_BATCH runs) until the batch is worth the pass.
            let pending_rows: usize = state.pending.iter().map(TupleBatch::len).sum();
            let full_rows = storage.full().len();
            if state.pending.len() < MAX_MERGE_BATCH
                && pending_rows.saturating_mul(ADAPTIVE_RATIO) < full_rows
            {
                device.metrics().add_adaptive_merge_batch();
            } else {
                let runs = std::mem::take(&mut state.pending);
                let mut full = storage.take_full()?;
                let lane_device = device.clone();
                state.inflight = Some(device.submit_background(move || {
                    full.merge_sorted_unique_runs(&lane_device, &runs, &ebm)
                        .map(|()| full)
                }));
            }
        }

        self.put_state(relation, state);
        Ok(())
    }
}

impl Backend for PipelinedBackend {
    fn name(&self) -> &str {
        "pipelined"
    }

    fn execute(
        &self,
        ctx: &mut EvalContext<'_>,
        pipeline: &RaPipeline,
    ) -> EngineResult<PipelineOutcome> {
        if let [RaOp::Diff { relation }] = pipeline.ops.as_slice() {
            let mut outcome = PipelineOutcome::default();
            self.pipelined_diff(ctx, *relation, &mut outcome)?;
            return Ok(outcome);
        }
        for relation in Self::full_reads(pipeline) {
            self.settle(ctx, relation)?;
        }
        self.inner.execute(ctx, pipeline)
    }

    fn fence(&self, ctx: &mut EvalContext<'_>) -> EngineResult<()> {
        let mut relations: Vec<RelId> = self.state_map().keys().copied().collect();
        relations.sort_unstable();
        for relation in relations {
            self.settle(ctx, relation)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SerialBackend;
    use crate::ebm::EbmConfig;
    use crate::error::EngineError;
    use crate::planner::ScanStep;
    use crate::relation::RelationStorage;
    use crate::stats::RunStats;
    use gpulog_device::profile::DeviceProfile;
    use gpulog_device::Device;
    use gpulog_hisa::DEFAULT_LOAD_FACTOR;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    fn storage(d: &Device) -> Vec<RelationStorage> {
        vec![RelationStorage::new(d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap()]
    }

    /// Runs the same sequence of `new` rounds through a serial and a
    /// pipelined diff, comparing the installed delta after every round and
    /// the fenced full at the end, byte for byte.
    fn assert_rounds_byte_identical(rounds: &[&[u32]]) {
        let d = device();
        let mut serial_rels = storage(&d);
        let mut pipe_rels = storage(&d);
        // Maintain a secondary index so the deferred merge path covers it.
        serial_rels[0]
            .full_mut()
            .unwrap()
            .index_on(&d, &[1])
            .unwrap();
        pipe_rels[0].full_mut().unwrap().index_on(&d, &[1]).unwrap();
        let serial = SerialBackend;
        let pipelined = PipelinedBackend::new(2).unwrap();
        let mut serial_stats = RunStats::default();
        let mut pipe_stats = RunStats::default();

        for (round, new) in rounds.iter().enumerate() {
            serial_rels[0].push_new(new);
            pipe_rels[0].push_new(new);
            let mut sctx = EvalContext {
                device: &d,
                relations: &mut serial_rels,
                stats: &mut serial_stats,
                ebm: EbmConfig::default(),
            };
            let s = serial.execute(&mut sctx, &RaPipeline::diff(0)).unwrap();
            let mut pctx = EvalContext {
                device: &d,
                relations: &mut pipe_rels,
                stats: &mut pipe_stats,
                ebm: EbmConfig::default(),
            };
            let p = pipelined.execute(&mut pctx, &RaPipeline::diff(0)).unwrap();
            assert_eq!(s, p, "outcome mismatch in round {round}");
            assert_eq!(
                serial_rels[0].delta.tuples_flat(),
                pipe_rels[0].delta.tuples_flat(),
                "delta mismatch in round {round}"
            );
        }

        let mut pctx = EvalContext {
            device: &d,
            relations: &mut pipe_rels,
            stats: &mut pipe_stats,
            ebm: EbmConfig::default(),
        };
        pipelined.fence(&mut pctx).unwrap();
        assert!(
            pipelined.state_map().is_empty(),
            "fence left deferred state"
        );
        assert_eq!(
            serial_rels[0].full().tuples_flat(),
            pipe_rels[0].full().tuples_flat()
        );
        assert_eq!(
            serial_rels[0].full().canonical().sorted_index(),
            pipe_rels[0].full().canonical().sorted_index()
        );
        let serial_secondary = serial_rels[0].full().existing_index(&[1]).unwrap();
        let pipe_secondary = pipe_rels[0].full().existing_index(&[1]).unwrap();
        assert_eq!(serial_secondary.data(), pipe_secondary.data());
        assert_eq!(
            serial_secondary.sorted_index(),
            pipe_secondary.sorted_index()
        );
    }

    #[test]
    fn deferred_diffs_are_byte_identical_to_serial() {
        assert_rounds_byte_identical(&[
            &[1, 2, 3, 4],
            // Duplicates against both the lagging full and the pending run.
            &[3, 4, 5, 6, 1, 2],
            &[5, 6, 7, 8],
            &[9, 9, 7, 8],
            // A fully-duplicate round: empty delta while a merge is deferred.
            &[1, 2, 9, 9],
        ]);
    }

    #[test]
    fn empty_rounds_keep_state_settled() {
        assert_rounds_byte_identical(&[&[], &[1, 1], &[]]);
    }

    #[test]
    fn full_scan_settles_deferred_merges_first() {
        let d = device();
        let mut rels = storage(&d);
        let pipelined = PipelinedBackend::new(2).unwrap();
        let mut stats = RunStats::default();
        // Two diff rounds leave a merge in flight (full swapped for an
        // empty placeholder until drained).
        for new in [&[1u32, 2, 3, 4][..], &[5, 6][..]] {
            rels[0].push_new(new);
            let mut ctx = EvalContext {
                device: &d,
                relations: &mut rels,
                stats: &mut stats,
                ebm: EbmConfig::default(),
            };
            pipelined.execute(&mut ctx, &RaPipeline::diff(0)).unwrap();
        }
        assert!(!pipelined.state_map().is_empty());
        let scan = RaPipeline {
            head: 0,
            ops: vec![RaOp::Scan {
                step: ScanStep {
                    relation: 0,
                    version: VersionSel::Full,
                    const_filters: vec![],
                    eq_filters: vec![],
                    keep_cols: vec![0, 1],
                },
                filters: vec![],
            }],
            text: "scan".into(),
        };
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut rels,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        let outcome = pipelined.execute(&mut ctx, &scan).unwrap();
        assert_eq!(outcome.derived_rows, 3, "scan must see the settled full");
        assert_eq!(rels[0].len(), 3);
        assert!(d.metrics().snapshot().overlap_nanos > 0);
        assert_eq!(d.metrics().snapshot().epochs_in_flight, 0);
    }

    #[test]
    fn zero_shards_are_rejected() {
        match PipelinedBackend::new(0) {
            Err(EngineError::InvalidShardCount { shards: 0 }) => {}
            other => panic!("expected InvalidShardCount, got {other:?}"),
        }
    }
}
