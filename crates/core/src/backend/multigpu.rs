//! The simulated multi-GPU backend: hash shards pinned to modeled devices,
//! with an explicitly costed delta exchange.
//!
//! `MultiGpuBackend` executes the *same computation* as
//! [`ShardedBackend`](super::ShardedBackend) — every shardable op fans out
//! as per-shard tasks on the host worker pool, and fixpoints stay
//! byte-identical to [`SerialBackend`](super::SerialBackend) — but it
//! additionally *models* where each shard's data lives: shard `i` is
//! pinned to device `i` of a [`DeviceTopology`], per-shard work is
//! attributed to that device's own [`Metrics`] counters, and every row
//! that crosses a device boundary is charged to the topology's
//! [`LinkProfile`].
//!
//! ## The residency model
//!
//! Intermediate batches travel as one part per device. A row's home is
//! deterministic:
//!
//! * a relation's tuples (and therefore scan outputs) live on the device
//!   owning them by **full-row hash** — the same `shard_of` that the diff
//!   op partitions by, so ownership and delta population agree;
//! * a keyed join re-partitions the in-flight parts by the join key:
//!   rows whose key hashes to a different device move across the link
//!   (**join exchange**);
//! * ops with nothing to shard on (cross products, fused chains whose
//!   first level binds no key) gather to device 0, run the serial op body
//!   there, and the gather is charged.
//!
//! ## The delta exchange
//!
//! At the end of each iteration the `Diff` op moves rows twice:
//!
//! 1. **producer → owner**: each device's freshly derived rows (recorded
//!    per rule pipeline as producer segments) are partitioned by full-row
//!    hash and shipped to their owners, which deduplicate and subtract
//!    `full` shard-locally;
//! 2. **owner → index partitions**: the resulting delta is pushed to every
//!    cached shard map on the relation's full version (each map's shard
//!    `i` needs exactly the delta rows whose *key* hashes to `i`), and a
//!    fresh delta-version shard-map build charges the same distribution.
//!
//! Every pipeline is a bulk-synchronous step, so the run's **modeled
//! critical path** accumulates, per executed pipeline, the slowest
//! device's modeled compute plus its incoming transfer time
//! (`messages x latency + bytes / bandwidth`). The cumulative report —
//! per-device modeled seconds, exchange bytes and messages, critical path,
//! and the aggregate-over-critical-path modeled speedup — is surfaced
//! through [`Backend::topology_report`] and lands in
//! [`crate::RunStats::topology`].

use super::serial::{fused_join_op, hash_join_op, scan_op};
use super::sharded::fan_out_shards;
use super::{Backend, EvalContext, PipelineOutcome};
use crate::error::EngineResult;
use crate::planner::{ColumnSource, FilterStep, JoinStep, RelId, VersionSel};
use crate::ra::difference_batch;
use crate::ra::hash_join_batch;
use crate::ra::nway::{fused_rule_join_batch, FusedLevel};
use crate::ra::op::{RaOp, RaPipeline};
use crate::ra::project::{filter_batch, project_batch};
use crate::ra::{anti_join_batch, group_reduce_batch};
use crate::relation::RelationStorage;
use crate::stats::Phase;
use gpulog_device::cost::CostModel;
use gpulog_device::metrics::{CounterSnapshot, Metrics};
use gpulog_device::topology::{DeviceLaneReport, DeviceTopology, LinkProfile, TopologyReport};
use gpulog_hisa::{shard_of, TupleBatch};
use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Bytes of one tuple value (relations are dense `u32` columns).
const VALUE_BYTES: usize = 4;

/// The cumulative modeling state of one topology: per-device counters,
/// link-traffic tallies, the accumulated critical path, and the producer
/// ledger recording which device derived each segment of every relation's
/// `new` buffer (consumed by the next `Diff` on that relation).
#[derive(Debug)]
struct TopologySim {
    metrics: Vec<Metrics>,
    in_bytes: Vec<AtomicU64>,
    out_bytes: Vec<AtomicU64>,
    in_messages: Vec<AtomicU64>,
    critical_path_sec: Mutex<f64>,
    producers: Mutex<HashMap<RelId, Vec<(usize, usize)>>>,
    /// Per-device merge share of the pipeline currently executing: the
    /// modeled seconds of delta-merge work folded into the charges that a
    /// pipelined schedule would defer behind the next pipeline's compute.
    pending_merge_sec: Mutex<Vec<f64>>,
    /// Per-device merge debt carried from the previous pipeline: deferred
    /// merge work that must finish under (or extend) the current step.
    merge_debt_sec: Mutex<Vec<f64>>,
    /// Accumulated critical path of the pipelined schedule (the BSP path
    /// stays in `critical_path_sec`, untouched).
    pipelined_critical_path_sec: Mutex<f64>,
}

impl TopologySim {
    fn new(devices: usize) -> Self {
        TopologySim {
            metrics: (0..devices).map(|_| Metrics::new()).collect(),
            in_bytes: (0..devices).map(|_| AtomicU64::new(0)).collect(),
            out_bytes: (0..devices).map(|_| AtomicU64::new(0)).collect(),
            in_messages: (0..devices).map(|_| AtomicU64::new(0)).collect(),
            critical_path_sec: Mutex::new(0.0),
            producers: Mutex::new(HashMap::new()),
            pending_merge_sec: Mutex::new(vec![0.0; devices]),
            merge_debt_sec: Mutex::new(vec![0.0; devices]),
            pipelined_critical_path_sec: Mutex::new(0.0),
        }
    }
}

/// The multi-GPU simulation backend. Construct with
/// [`MultiGpuBackend::new`] or let [`crate::EngineBuilder`] install it from
/// [`crate::EngineConfig::with_device_topology`].
#[derive(Debug)]
pub struct MultiGpuBackend {
    topology: DeviceTopology,
    models: Vec<CostModel>,
    sim: TopologySim,
}

impl MultiGpuBackend {
    /// Creates a backend pinning shard `i` to device `i` of `topology`.
    pub fn new(topology: DeviceTopology) -> Self {
        let models = topology
            .devices()
            .iter()
            .map(|profile| CostModel::new(profile.clone()))
            .collect();
        let sim = TopologySim::new(topology.device_count().get());
        MultiGpuBackend {
            topology,
            models,
            sim,
        }
    }

    /// The topology this backend models.
    pub fn topology(&self) -> &DeviceTopology {
        &self.topology
    }

    /// Number of modeled devices (= hash shards).
    fn devices(&self) -> NonZeroUsize {
        self.topology.device_count()
    }

    /// The cumulative modeling report: per-device modeled compute, link
    /// traffic, critical path, and modeled speedup.
    pub fn report(&self) -> TopologyReport {
        let devices = (0..self.devices().get())
            .map(|d| DeviceLaneReport {
                device: format!("{} #{d}", self.topology.devices()[d].name),
                modeled_compute_sec: self.models[d]
                    .estimate(&self.sim.metrics[d].snapshot())
                    .total_sec(),
                exchange_in_bytes: self.sim.in_bytes[d].load(Ordering::Relaxed),
                exchange_out_bytes: self.sim.out_bytes[d].load(Ordering::Relaxed),
                exchange_in_messages: self.sim.in_messages[d].load(Ordering::Relaxed),
            })
            .collect::<Vec<_>>();
        let critical_path_sec = *self
            .sim
            .critical_path_sec
            .lock()
            .expect("critical-path lock poisoned");
        // The pipelined path still owes the merges deferred by the last
        // diff: drain the outstanding debt into the report, then clamp to
        // the BSP path (deferring work never makes the schedule slower).
        let final_debt = self
            .sim
            .merge_debt_sec
            .lock()
            .expect("merge-debt lock poisoned")
            .iter()
            .fold(0.0f64, |acc, &d| acc.max(d));
        let pipelined_sec = (*self
            .sim
            .pipelined_critical_path_sec
            .lock()
            .expect("pipelined-path lock poisoned")
            + final_debt)
            .min(critical_path_sec);
        TopologyReport {
            link: self.topology.link().name.clone(),
            total_exchange_bytes: devices.iter().map(|d| d.exchange_in_bytes).sum(),
            total_exchange_messages: devices.iter().map(|d| d.exchange_in_messages).sum(),
            modeled_critical_path_sec: critical_path_sec,
            modeled_pipelined_critical_path_sec: pipelined_sec,
            devices,
        }
    }

    /// Attributes one device's share of an op: bytes moved through its
    /// modeled memory, simple ops, and (when it actually ran a task) one
    /// kernel launch.
    fn charge(&self, device: usize, bytes_read: u64, bytes_written: u64, ops: u64, launch: bool) {
        let m = &self.sim.metrics[device];
        m.add_bytes_read(bytes_read);
        m.add_bytes_written(bytes_written);
        m.add_ops(ops);
        if launch {
            m.add_kernel_launch();
        }
    }

    /// Applies an `S x S` byte matrix of cross-device traffic to the link
    /// tallies: one message per (producer, destination) pair that moved
    /// bytes.
    fn apply_exchange(&self, matrix: &[u64]) {
        let s = self.devices().get();
        for p in 0..s {
            for d in 0..s {
                let bytes = matrix[p * s + d];
                if bytes > 0 && p != d {
                    self.sim.out_bytes[p].fetch_add(bytes, Ordering::Relaxed);
                    self.sim.in_bytes[d].fetch_add(bytes, Ordering::Relaxed);
                    self.sim.in_messages[d].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Distributes a freshly produced batch to its owning devices by
    /// full-row hash. Initial placement — scan outputs read where the
    /// relation's tuples already live — is free; only *re*-partitioning
    /// charges the link.
    fn distribute_by_row_hash(&self, batch: TupleBatch) -> Vec<TupleBatch> {
        let cols: Vec<usize> = (0..batch.arity()).collect();
        batch.partition_by_key_hash(&cols, self.devices())
    }

    /// Re-partitions resident parts by a join key, charging every row that
    /// lands on a different device. Destination parts concatenate the
    /// producers' sub-parts in producer order — exactly the row sequence
    /// the sharded backend's single global partition produces.
    fn exchange_repartition(&self, parts: Vec<TupleBatch>, key_cols: &[usize]) -> Vec<TupleBatch> {
        let shards = self.devices();
        let s = shards.get();
        let arity = parts.first().map_or(1, TupleBatch::arity);
        let mut matrix = vec![0u64; s * s];
        let mut per_dest: Vec<Vec<TupleBatch>> = (0..s).map(|_| Vec::with_capacity(s)).collect();
        for (p, part) in parts.into_iter().enumerate() {
            for (d, sub) in part
                .partition_by_key_hash(key_cols, shards)
                .into_iter()
                .enumerate()
            {
                if d != p {
                    matrix[p * s + d] += (sub.as_flat().len() * VALUE_BYTES) as u64;
                }
                per_dest[d].push(sub);
            }
        }
        self.apply_exchange(&matrix);
        per_dest
            .into_iter()
            .map(|subs| TupleBatch::concat(arity, subs))
            .collect()
    }

    /// The one charging loop behind both delta-exchange legs: for every
    /// row, `producer_of(row)` names the device the row currently lives on
    /// (`None` = already resident, charge nothing) and the row's
    /// destination is `shard_of` over its `key_cols` values; rows whose
    /// producer and destination differ are charged to the link.
    fn charge_keyed_exchange<P>(
        &self,
        rows: &[u32],
        arity: usize,
        key_cols: &[usize],
        mut producer_of: P,
    ) where
        P: FnMut(&[u32]) -> Option<usize>,
    {
        if rows.is_empty() {
            return;
        }
        let shards = self.devices();
        let s = shards.get();
        let row_bytes = (arity * VALUE_BYTES) as u64;
        let mut matrix = vec![0u64; s * s];
        let mut key = Vec::with_capacity(key_cols.len());
        for row in rows.chunks_exact(arity) {
            let Some(producer) = producer_of(row) else {
                continue;
            };
            key.clear();
            key.extend(key_cols.iter().map(|&c| row[c]));
            let dest = shard_of(&key, shards);
            if producer != dest {
                matrix[producer * s + dest] += row_bytes;
            }
        }
        self.apply_exchange(&matrix);
    }

    /// Charges the producer → destination traffic of partitioning `batch`
    /// by `key_cols`, where each row's producer comes from the recorded
    /// `(device, rows)` segments. Rows beyond the recorded segments (none
    /// in engine-driven runs) are treated as already resident.
    fn charge_segmented_exchange(
        &self,
        batch: &TupleBatch,
        segments: &[(usize, usize)],
        key_cols: &[usize],
    ) {
        if segments.is_empty() {
            return;
        }
        let mut producer_of_row = segments
            .iter()
            .flat_map(|&(device, rows)| std::iter::repeat_n(device, rows));
        self.charge_keyed_exchange(batch.as_flat(), batch.arity(), key_cols, |_| {
            producer_of_row.next()
        });
    }

    /// Charges moving `rows` (owned by full-row hash) into a partitioning
    /// by `key_cols` — the cost of building or feeding one shard map whose
    /// key differs from the ownership hash.
    fn charge_owner_to_key_exchange(&self, rows: &[u32], arity: usize, key_cols: &[usize]) {
        let shards = self.devices();
        self.charge_keyed_exchange(rows, arity, key_cols, |row| Some(shard_of(row, shards)));
    }

    /// Gathers every part onto device 0 for a serial op body, charging the
    /// gather. Used by ops with no key to shard on.
    fn gather_to_device_zero(&self, parts: Vec<TupleBatch>) -> TupleBatch {
        let s = self.devices().get();
        let arity = parts.first().map_or(1, TupleBatch::arity);
        let mut matrix = vec![0u64; s * s];
        for (p, part) in parts.iter().enumerate() {
            if p != 0 && !part.is_empty() {
                matrix[p * s] += (part.as_flat().len() * VALUE_BYTES) as u64;
            }
        }
        self.apply_exchange(&matrix);
        TupleBatch::concat(arity, parts)
    }

    /// Wraps a batch produced serially on device 0 back into parts form.
    fn parts_on_device_zero(&self, batch: TupleBatch) -> Vec<TupleBatch> {
        let arity = batch.arity();
        let mut parts = vec![batch];
        parts.resize_with(self.devices().get(), || TupleBatch::empty(arity));
        parts
    }

    /// Builds (or refreshes) one inner relation's shard map, charging the
    /// owner-to-key distribution when the build is fresh (see
    /// [`MultiGpuBackend::charge_index_build`]) — the shared prologue of
    /// both join ops, so their modeled index-build cost cannot diverge.
    fn ensure_charged_shard_map(
        &self,
        ctx: &mut EvalContext<'_>,
        step: &JoinStep,
    ) -> EngineResult<()> {
        let shards = self.devices();
        let fresh = ctx
            .shard_map(step.relation, step.version, &step.inner_key_cols, shards)
            .is_none();
        ctx.build_shard_map(step.relation, step.version, &step.inner_key_cols, shards)?;
        if fresh {
            self.charge_index_build(ctx, step.relation, step.version, &step.inner_key_cols);
        }
        Ok(())
    }

    /// [`RaOp::HashJoin`] over pinned shards: re-partition the outer parts
    /// by the join key (charged), then shard `i` of the outer probes shard
    /// `i` of the inner on device `i`.
    fn multi_hash_join(
        &self,
        ctx: &mut EvalContext<'_>,
        parts: Vec<TupleBatch>,
        step: &JoinStep,
        filters: &[FilterStep],
    ) -> EngineResult<Vec<TupleBatch>> {
        let shards = self.devices();
        let t = Instant::now();
        let index_phase = match step.version {
            VersionSel::Full => Phase::IndexFull,
            VersionSel::Delta => Phase::IndexDelta,
        };
        self.ensure_charged_shard_map(ctx, step)?;
        ctx.stats.add_phase(index_phase, t.elapsed());

        let t = Instant::now();
        let dest = self.exchange_repartition(parts, &step.outer_key_cols);
        let outer_arity = dest.first().map_or(1, |p| p.arity().max(1));
        let in_sizes: Vec<usize> = dest.iter().map(|p| p.as_flat().len()).collect();
        let outs = {
            let device = ctx.device;
            let inners = ctx
                .shard_map(step.relation, step.version, &step.inner_key_cols, shards)
                .expect("shard map built above");
            fan_out_shards(device, dest, |shard, part| {
                let mut out = hash_join_batch(
                    device,
                    part,
                    &step.outer_key_cols,
                    &inners[shard],
                    &step.inner_const_filters,
                    &step.inner_eq_filters,
                    &step.emit,
                );
                if !filters.is_empty() {
                    out = filter_batch(device, &out, filters);
                }
                out
            })
        };
        for (d, (&in_values, out)) in in_sizes.iter().zip(&outs).enumerate() {
            if in_values == 0 {
                continue;
            }
            let in_bytes = (in_values * VALUE_BYTES) as u64;
            let out_bytes = (out.as_flat().len() * VALUE_BYTES) as u64;
            // Each outer row performs one hash probe (~16 bytes of table
            // reads); matched inner rows are read at output size.
            let probe_rows = (in_values / outer_arity) as u64;
            self.charge(
                d,
                in_bytes + 16 * probe_rows + out_bytes,
                out_bytes,
                probe_rows + out.len() as u64,
                true,
            );
        }
        ctx.stats.add_phase(Phase::Join, t.elapsed());
        Ok(outs)
    }

    /// [`RaOp::FusedJoin`] with the level-0 inner pinned per device;
    /// deeper levels probe whole (replicated) indices, so only the level-0
    /// re-partition crosses the link.
    fn multi_fused_join(
        &self,
        ctx: &mut EvalContext<'_>,
        parts: Vec<TupleBatch>,
        levels: &[(JoinStep, Vec<FilterStep>)],
        head_proj: &[ColumnSource],
    ) -> EngineResult<Vec<TupleBatch>> {
        let shards = self.devices();
        let (level0, _) = &levels[0];
        let t = Instant::now();
        self.ensure_charged_shard_map(ctx, level0)?;
        for (step, _) in &levels[1..] {
            let storage = &mut ctx.relations[step.relation];
            let version = match step.version {
                VersionSel::Full => storage.full_mut()?,
                VersionSel::Delta => &mut storage.delta,
            };
            version.index_on(ctx.device, &step.inner_key_cols)?;
        }
        ctx.stats.add_phase(Phase::IndexFull, t.elapsed());

        let t = Instant::now();
        let dest = self.exchange_repartition(parts, &level0.outer_key_cols);
        let in_sizes: Vec<usize> = dest.iter().map(|p| p.as_flat().len()).collect();
        let outs = {
            let device = ctx.device;
            let relations: &[RelationStorage] = ctx.relations;
            let inners0 = ctx
                .shard_map(
                    level0.relation,
                    level0.version,
                    &level0.inner_key_cols,
                    shards,
                )
                .expect("shard map built above");
            fan_out_shards(device, dest, |shard, part| {
                let fused_levels: Vec<FusedLevel<'_>> = levels
                    .iter()
                    .enumerate()
                    .map(|(depth, (step, step_filters))| {
                        let inner = if depth == 0 {
                            &inners0[shard]
                        } else {
                            let storage = &relations[step.relation];
                            let version = match step.version {
                                VersionSel::Full => storage.full(),
                                VersionSel::Delta => &storage.delta,
                            };
                            version
                                .existing_index(&step.inner_key_cols)
                                .expect("index built above")
                        };
                        FusedLevel {
                            step,
                            inner,
                            filters: step_filters.as_slice(),
                        }
                    })
                    .collect();
                fused_rule_join_batch(device, part, &fused_levels, head_proj)
            })
        };
        for (d, (&in_values, out)) in in_sizes.iter().zip(&outs).enumerate() {
            if in_values == 0 {
                continue;
            }
            let in_bytes = (in_values * VALUE_BYTES) as u64;
            let out_bytes = (out.as_flat().len() * VALUE_BYTES) as u64;
            self.charge(
                d,
                in_bytes + out_bytes,
                out_bytes,
                (in_values + out.as_flat().len()) as u64,
                true,
            );
        }
        ctx.stats.add_phase(Phase::Join, t.elapsed());
        Ok(outs)
    }

    /// Charges the distribution cost of a freshly built delta shard map:
    /// the delta's rows move from their owners (full-row hash) to the
    /// key-hash partitions. Full-version builds are initial placement and
    /// stay free (steady-state maintenance goes through the delta
    /// exchange).
    fn charge_index_build(
        &self,
        ctx: &EvalContext<'_>,
        relation: RelId,
        version: VersionSel,
        key_cols: &[usize],
    ) {
        if version != VersionSel::Delta {
            return;
        }
        let storage = &ctx.relations[relation];
        self.charge_owner_to_key_exchange(storage.delta.tuples_flat(), storage.arity, key_cols);
    }

    /// [`RaOp::Diff`] with the modeled delta exchange: producer → owner by
    /// full-row hash (leg 1), per-owner dedup + difference, then owner →
    /// key-partition pushes for every cached full shard map (leg 2).
    fn multi_diff(
        &self,
        ctx: &mut EvalContext<'_>,
        relation: RelId,
        outcome: &mut PipelineOutcome,
    ) -> EngineResult<()> {
        let shards = self.devices();
        let device = ctx.device;
        let storage = &mut ctx.relations[relation];
        let arity = storage.arity;
        let new = TupleBatch::new(arity, storage.take_new(&ctx.ebm));
        outcome.new_rows = new.len();
        let segments = self
            .sim
            .producers
            .lock()
            .expect("producer ledger lock poisoned")
            .remove(&relation)
            .unwrap_or_default();

        let t = Instant::now();
        let full_key: Vec<usize> = (0..arity).collect();
        // Exchange leg 1: freshly derived rows travel from the device that
        // produced them to the device that owns them.
        self.charge_segmented_exchange(&new, &segments, &full_key);
        let parts = new.partition_by_key_hash(&full_key, shards);
        let in_sizes: Vec<usize> = parts.iter().map(|p| p.as_flat().len()).collect();
        let delta = {
            let full = storage.full().canonical();
            let outs = fan_out_shards(device, parts, |_, part| {
                difference_batch(device, part, full)
            });
            for (d, (&in_values, out)) in in_sizes.iter().zip(&outs).enumerate() {
                if in_values == 0 {
                    continue;
                }
                let in_bytes = (in_values * VALUE_BYTES) as u64;
                let out_bytes = (out.as_flat().len() * VALUE_BYTES) as u64;
                // Dedup sorts its part (read + write) and probes full once
                // per row; the delta slice is written back and later merged.
                self.charge(
                    d,
                    2 * in_bytes,
                    in_bytes + 2 * out_bytes,
                    (in_values / arity) as u64,
                    true,
                );
                // The merge's share of that charge — reading the delta
                // slice back and writing it into full — is what a pipelined
                // schedule defers behind the next pipeline's compute.
                // Record it so `execute` can price the pipelined path.
                if out_bytes > 0 {
                    let merge = Metrics::new();
                    merge.add_bytes_read(out_bytes);
                    merge.add_bytes_written(out_bytes);
                    let sec = self.models[d].estimate(&merge.snapshot()).total_sec();
                    self.sim
                        .pending_merge_sec
                        .lock()
                        .expect("merge-share lock poisoned")[d] += sec;
                }
            }
            TupleBatch::merge_sorted_unique(arity, outs)
        };
        ctx.stats.add_phase(Phase::Deduplication, t.elapsed());
        outcome.delta_rows = delta.len();

        // Exchange leg 2: push each owner's delta slice into every cached
        // shard-map partitioning of the full version, so the shard-local
        // merges below find their rows on-device.
        for (key_cols, map_shards) in storage.full().sharded_index_specs() {
            if map_shards == shards.get() {
                self.charge_owner_to_key_exchange(delta.as_flat(), arity, &key_cols);
            }
        }

        let t = Instant::now();
        storage.set_delta_batch(&delta)?;
        ctx.stats.add_phase(Phase::IndexDelta, t.elapsed());

        let t = Instant::now();
        let ebm = ctx.ebm;
        storage.merge_delta_into_full(&ebm)?;
        ctx.stats.add_phase(Phase::Merge, t.elapsed());
        Ok(())
    }

    /// Runs the ops of one pipeline over per-device parts, returning early
    /// (like the serial backend) when the intermediate goes empty.
    fn execute_pipeline(
        &self,
        ctx: &mut EvalContext<'_>,
        pipeline: &RaPipeline,
    ) -> EngineResult<PipelineOutcome> {
        let mut outcome = PipelineOutcome::default();
        let mut parts: Vec<TupleBatch> = vec![TupleBatch::empty(1); self.devices().get()];
        for op in &pipeline.ops {
            match op {
                RaOp::Scan { step, filters } => {
                    let batch = scan_op(ctx, step, filters);
                    parts = self.distribute_by_row_hash(batch);
                    for (d, part) in parts.iter().enumerate() {
                        if !part.is_empty() {
                            let bytes = (part.as_flat().len() * VALUE_BYTES) as u64;
                            self.charge(d, bytes, bytes, part.len() as u64, true);
                        }
                    }
                }
                RaOp::HashJoin { step, filters } => {
                    if parts.iter().all(TupleBatch::is_empty) {
                        return Ok(outcome);
                    }
                    parts = if step.outer_key_cols.is_empty() {
                        // Cross product: no key to shard on — gather to
                        // device 0 and run the serial op body there.
                        let batch = self.gather_to_device_zero(parts);
                        let joined = hash_join_op(ctx, &batch, step, filters)?;
                        let bytes = |b: &TupleBatch| (b.as_flat().len() * VALUE_BYTES) as u64;
                        self.charge(0, bytes(&batch), bytes(&joined), joined.len() as u64, true);
                        self.parts_on_device_zero(joined)
                    } else {
                        self.multi_hash_join(ctx, parts, step, filters)?
                    };
                }
                RaOp::FusedJoin { levels, head_proj } => {
                    if parts.iter().all(TupleBatch::is_empty) {
                        return Ok(outcome);
                    }
                    let shardable = levels
                        .first()
                        .is_some_and(|(level0, _)| !level0.outer_key_cols.is_empty());
                    parts = if shardable {
                        self.multi_fused_join(ctx, parts, levels, head_proj)?
                    } else {
                        let batch = self.gather_to_device_zero(parts);
                        let joined = fused_join_op(ctx, &batch, levels, head_proj)?;
                        let bytes = |b: &TupleBatch| (b.as_flat().len() * VALUE_BYTES) as u64;
                        self.charge(0, bytes(&batch), bytes(&joined), joined.len() as u64, true);
                        self.parts_on_device_zero(joined)
                    };
                }
                RaOp::AntiJoin { step } => {
                    if parts.iter().all(TupleBatch::is_empty) {
                        return Ok(outcome);
                    }
                    // A probe-only filter against the negated relation's
                    // canonical full index, which (like deeper fused-join
                    // levels) is modeled as replicated on every device: each
                    // part filters in place, nothing crosses the link.
                    let t = Instant::now();
                    let device = ctx.device;
                    let in_arity = parts.first().map_or(1, |p| p.arity().max(1));
                    let in_sizes: Vec<usize> = parts.iter().map(|p| p.as_flat().len()).collect();
                    parts = {
                        let existing = ctx.relations[step.relation].full().canonical();
                        fan_out_shards(device, parts, |_, part| {
                            if part.is_empty() {
                                TupleBatch::empty(part.arity())
                            } else {
                                anti_join_batch(device, part, &step.probe, existing)
                            }
                        })
                    };
                    for (d, (&in_values, out)) in in_sizes.iter().zip(&parts).enumerate() {
                        if in_values == 0 {
                            continue;
                        }
                        let in_bytes = (in_values * VALUE_BYTES) as u64;
                        let out_bytes = (out.as_flat().len() * VALUE_BYTES) as u64;
                        // Each row performs one hash probe (~16 bytes of
                        // table reads), mirroring the hash-join charge.
                        let probe_rows = (in_values / in_arity) as u64;
                        self.charge(d, in_bytes + 16 * probe_rows, out_bytes, probe_rows, true);
                    }
                    ctx.stats.add_phase(Phase::Join, t.elapsed());
                }
                RaOp::Project { columns } => {
                    if parts.iter().all(TupleBatch::is_empty) {
                        return Ok(outcome);
                    }
                    let t = Instant::now();
                    let device = ctx.device;
                    let out_arity = columns.len().max(1);
                    let in_sizes: Vec<usize> = parts.iter().map(|p| p.as_flat().len()).collect();
                    parts = fan_out_shards(device, parts, |_, part| {
                        if part.is_empty() {
                            TupleBatch::empty(out_arity)
                        } else {
                            project_batch(device, part, columns)
                        }
                    });
                    for (d, (&in_values, out)) in in_sizes.iter().zip(&parts).enumerate() {
                        if in_values == 0 {
                            continue;
                        }
                        let in_bytes = (in_values * VALUE_BYTES) as u64;
                        let out_bytes = (out.as_flat().len() * VALUE_BYTES) as u64;
                        self.charge(d, in_bytes, out_bytes, out.len() as u64, true);
                    }
                    ctx.stats.add_phase(Phase::Join, t.elapsed());
                }
                RaOp::Reduce { op, agg_column } => {
                    if parts.iter().all(TupleBatch::is_empty) {
                        return Ok(outcome);
                    }
                    // A group's rows may live on any device, so the
                    // reduction gathers to device 0 (charged) and runs
                    // there — like every other op with no key to shard on.
                    let t = Instant::now();
                    let batch = self.gather_to_device_zero(parts);
                    let reduced = group_reduce_batch(ctx.device, &batch, *agg_column, *op);
                    let bytes = |b: &TupleBatch| (b.as_flat().len() * VALUE_BYTES) as u64;
                    self.charge(
                        0,
                        2 * bytes(&batch),
                        bytes(&batch) + bytes(&reduced),
                        batch.len() as u64,
                        true,
                    );
                    parts = self.parts_on_device_zero(reduced);
                    ctx.stats.add_phase(Phase::Deduplication, t.elapsed());
                }
                RaOp::Diff { relation } => {
                    self.multi_diff(ctx, *relation, &mut outcome)?;
                }
            }
        }
        self.install_parts(ctx, pipeline, &parts, &mut outcome);
        Ok(outcome)
    }

    /// Appends a rule pipeline's per-device output parts to the head
    /// relation's `new` buffer and records the producer segments the next
    /// `Diff` uses to cost exchange leg 1.
    fn install_parts(
        &self,
        ctx: &mut EvalContext<'_>,
        pipeline: &RaPipeline,
        parts: &[TupleBatch],
        outcome: &mut PipelineOutcome,
    ) {
        if pipeline.ops.is_empty() || matches!(pipeline.ops.last(), Some(RaOp::Diff { .. })) {
            return;
        }
        let total: usize = parts.iter().map(TupleBatch::len).sum();
        outcome.derived_rows = total;
        if total == 0 {
            return;
        }
        let mut producers = self
            .sim
            .producers
            .lock()
            .expect("producer ledger lock poisoned");
        let segments = producers.entry(pipeline.head).or_default();
        for (d, part) in parts.iter().enumerate() {
            if !part.is_empty() {
                segments.push((d, part.len()));
                ctx.relations[pipeline.head].push_new_batch(part);
            }
        }
    }
}

impl Backend for MultiGpuBackend {
    fn name(&self) -> &str {
        "multigpu"
    }

    fn execute(
        &self,
        ctx: &mut EvalContext<'_>,
        pipeline: &RaPipeline,
    ) -> EngineResult<PipelineOutcome> {
        let s = self.devices().get();
        let compute_before: Vec<CounterSnapshot> =
            self.sim.metrics.iter().map(Metrics::snapshot).collect();
        let in_bytes_before: Vec<u64> = self
            .sim
            .in_bytes
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        let in_msgs_before: Vec<u64> = self
            .sim
            .in_messages
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();

        let result = self.execute_pipeline(ctx, pipeline);

        // Each pipeline is a bulk-synchronous step: its modeled latency is
        // the slowest device's compute plus that device's incoming link
        // transfer.
        let link: &LinkProfile = self.topology.link();
        let mut lanes = vec![0.0f64; s];
        let mut worst = 0.0f64;
        for (d, lane) in lanes.iter_mut().enumerate() {
            let work = self.sim.metrics[d].snapshot().since(&compute_before[d]);
            let compute = self.models[d].estimate(&work).total_sec();
            let bytes = self.sim.in_bytes[d].load(Ordering::Relaxed) - in_bytes_before[d];
            let messages = self.sim.in_messages[d].load(Ordering::Relaxed) - in_msgs_before[d];
            *lane = compute + link.transfer_sec(bytes, messages);
            worst = worst.max(*lane);
        }
        *self
            .sim
            .critical_path_sec
            .lock()
            .expect("critical-path lock poisoned") += worst;

        // The pipelined schedule prices the same step differently: this
        // step's merge share is deferred (subtracted from the lane), while
        // the previous step's deferred merges run concurrently and bound
        // the step from below — a merge slower than the compute it hides
        // behind surfaces as residual step time.
        let merge_now: Vec<f64> = {
            let mut pending = self
                .sim
                .pending_merge_sec
                .lock()
                .expect("merge-share lock poisoned");
            std::mem::replace(&mut *pending, vec![0.0; s])
        };
        let mut debt = self
            .sim
            .merge_debt_sec
            .lock()
            .expect("merge-debt lock poisoned");
        let mut pipelined_worst = 0.0f64;
        for d in 0..s {
            let lane = (lanes[d] - merge_now[d]).max(0.0).max(debt[d]);
            pipelined_worst = pipelined_worst.max(lane);
            debt[d] = merge_now[d];
        }
        *self
            .sim
            .pipelined_critical_path_sec
            .lock()
            .expect("pipelined-path lock poisoned") += pipelined_worst;
        result
    }

    fn topology_report(&self) -> Option<TopologyReport> {
        Some(self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::super::serial::SerialBackend;
    use super::*;
    use crate::ebm::EbmConfig;
    use crate::relation::RelationStorage;
    use crate::stats::RunStats;
    use gpulog_device::profile::DeviceProfile;
    use gpulog_device::Device;
    use gpulog_hisa::DEFAULT_LOAD_FACTOR;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    fn backend(devices: usize) -> MultiGpuBackend {
        MultiGpuBackend::new(DeviceTopology::nvlink_like(nz(devices)))
    }

    #[test]
    fn diff_is_byte_identical_to_serial_and_counts_exchange() {
        let d = device();
        let new_rows: Vec<u32> = (0..300u32).flat_map(|i| [i % 37, i % 13]).collect();
        let run = |backend: &dyn Backend| {
            let mut rels = vec![RelationStorage::new(&d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap()];
            rels[0].load_full(&[1, 1, 5, 5, 36, 12]).unwrap();
            rels[0].push_new(&new_rows);
            let mut stats = RunStats::default();
            let mut ctx = EvalContext {
                device: &d,
                relations: &mut rels,
                stats: &mut stats,
                ebm: EbmConfig::default(),
            };
            let outcome = backend.execute(&mut ctx, &RaPipeline::diff(0)).unwrap();
            (
                outcome,
                rels[0].delta.tuples_flat().to_vec(),
                rels[0].full().tuples_flat().to_vec(),
            )
        };
        let serial = run(&SerialBackend);
        for devices in [1usize, 2, 3, 7] {
            let multi = backend(devices);
            assert_eq!(run(&multi), serial, "devices = {devices}");
            let report = multi.report();
            assert_eq!(report.devices.len(), devices);
            if devices == 1 {
                assert_eq!(report.total_exchange_bytes, 0, "one device never exchanges");
            }
        }
    }

    #[test]
    fn single_device_topology_reports_speedup_of_one() {
        let d = device();
        let multi = backend(1);
        let mut rels = vec![RelationStorage::new(&d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap()];
        rels[0].push_new(&[1, 2, 3, 4, 5, 6]);
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut rels,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        multi.execute(&mut ctx, &RaPipeline::diff(0)).unwrap();
        let report = multi.report();
        assert!(report.modeled_critical_path_sec > 0.0);
        assert!((report.modeled_speedup() - 1.0).abs() < 1e-9);
        assert_eq!(report.total_exchange_messages, 0);
    }

    #[test]
    fn pipelined_schedule_is_priced_below_the_bsp_critical_path() {
        let d = device();
        let multi = backend(2);
        let mut rels = vec![RelationStorage::new(&d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap()];
        let mut stats = RunStats::default();
        // Several merge-carrying diff rounds: every round's merge share is
        // deferred behind the next round, so the pipelined path must price
        // strictly below the bulk-synchronous one.
        for round in 0..4u32 {
            let rows: Vec<u32> = (0..2000u32).flat_map(|i| [round * 10_000 + i, i]).collect();
            rels[0].push_new(&rows);
            let mut ctx = EvalContext {
                device: &d,
                relations: &mut rels,
                stats: &mut stats,
                ebm: EbmConfig::default(),
            };
            multi.execute(&mut ctx, &RaPipeline::diff(0)).unwrap();
        }
        let report = multi.report();
        assert!(report.modeled_pipelined_critical_path_sec > 0.0);
        assert!(
            report.modeled_pipelined_critical_path_sec < report.modeled_critical_path_sec,
            "pipelined {} must beat BSP {}",
            report.modeled_pipelined_critical_path_sec,
            report.modeled_critical_path_sec
        );
    }

    #[test]
    fn producer_segments_drive_the_delta_exchange_charges() {
        let d = device();
        let multi = backend(4);
        let mut rels = vec![RelationStorage::new(&d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap()];
        // 64 distinct rows, all recorded as produced on device 0: roughly
        // three quarters of them must cross the link to their owners.
        let rows: Vec<u32> = (0..64u32).flat_map(|i| [i, i + 1000]).collect();
        rels[0].push_new(&rows);
        multi.sim.producers.lock().unwrap().insert(0, vec![(0, 64)]);
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut rels,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        multi.execute(&mut ctx, &RaPipeline::diff(0)).unwrap();
        let report = multi.report();
        assert!(
            report.total_exchange_bytes > 0,
            "cross-device rows must be charged"
        );
        assert_eq!(
            report.devices[0].exchange_in_bytes, 0,
            "device 0 produced everything, it receives nothing in leg 1"
        );
        assert!(report.devices[0].exchange_out_bytes > 0);
        // Every byte sent was received by someone.
        let sent: u64 = report.devices.iter().map(|l| l.exchange_out_bytes).sum();
        assert_eq!(sent, report.total_exchange_bytes);
    }
}
