//! Multi-pass static analysis: the program linter and the
//! semantics-preserving optimizer.
//!
//! This module runs between parsing/validation ([`super::stratify_program`])
//! and planner lowering. It has two halves sharing one pass framework:
//!
//! * **Diagnostics** ([`lint_program`]) — span-carrying, non-fatal findings
//!   with stable `GLnnn` codes: unused relations (GL001), rules unreachable
//!   from any output or goal (GL002), singleton write-only variables
//!   (GL003), duplicate body literals (GL004), always-false rules with
//!   contradictory constant constraints (GL005), cross-rule constant
//!   inconsistencies (GL006), and subsumed rules (GL007).
//! * **Rewrites** ([`optimize_program`]) — always-false rule elimination,
//!   constant propagation of `= const` bindings into selections, duplicate
//!   literal/constraint removal, subsumed-rule removal, and dead-rule
//!   elimination by backward reachability from the declared outputs and the
//!   `?-` goal. Every rewrite preserves the fixpoint of every output
//!   relation; the rewritten program is re-validated through
//!   [`super::stratify_program`] before it is returned.
//!
//! The engine runs both halves at build time, gated by
//! [`LintLevel`] ([`crate::engine::EngineConfig::with_lint`]) and
//! [`crate::engine::EngineConfig::with_optimize`]. The `gpulog-lint` CLI
//! (in the bench crate) exposes [`lint_program`] over `.dl` files.

use crate::ast::{Literal, Program, Rule, Span, Term};
use crate::error::EngineResult;

use super::stratify_program;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// How the engine treats lint findings at build time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum LintLevel {
    /// Skip the lint passes entirely.
    Allow,
    /// Run the lints and surface the findings through
    /// [`crate::engine::GpulogEngine::diagnostics`]; the build succeeds.
    #[default]
    Warn,
    /// Run the lints and fail the build with
    /// [`EngineError::LintDenied`](crate::error::EngineError::LintDenied)
    /// when any finding fires.
    Deny,
}

impl fmt::Display for LintLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintLevel::Allow => "allow",
            LintLevel::Warn => "warn",
            LintLevel::Deny => "deny",
        };
        write!(f, "{s}")
    }
}

/// Severity of one [`Diagnostic`].
///
/// Every current lint reports [`DiagnosticLevel::Warning`]: a program with
/// findings still compiles and runs (unless the engine is configured with
/// [`LintLevel::Deny`]). The `Error` level is reserved for lints whose
/// finding makes the program meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticLevel {
    /// The program is suspicious but well-defined.
    Warning,
    /// The program is well-formed but cannot mean what was written.
    Error,
}

impl fmt::Display for DiagnosticLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagnosticLevel::Warning => "warning",
            DiagnosticLevel::Error => "error",
        };
        write!(f, "{s}")
    }
}

/// Stable identifier of one lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// GL001: a declared relation no rule body and no goal ever reads, and
    /// that is not an output.
    UnusedRelation,
    /// GL002: a rule not backward-reachable from any output relation or
    /// `?-` goal; its derivations can never be observed.
    UnreachableRule,
    /// GL003: a named variable used exactly once in its rule — it joins
    /// nothing and should be the wildcard `_`.
    SingletonVariable,
    /// GL004: the same literal appears twice in one rule body.
    DuplicateLiteral,
    /// GL005: a rule whose constraints are contradictory on constants; it
    /// can never derive a tuple.
    AlwaysFalse,
    /// GL006: a positive body literal reads a relation with a constant that
    /// no rule writing that relation can produce.
    ConstantMismatch,
    /// GL007: a rule subsumed by another rule with the same head and a
    /// subset of its body; everything it derives is already derived.
    SubsumedRule,
}

impl LintCode {
    /// The stable `GLnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UnusedRelation => "GL001",
            LintCode::UnreachableRule => "GL002",
            LintCode::SingletonVariable => "GL003",
            LintCode::DuplicateLiteral => "GL004",
            LintCode::AlwaysFalse => "GL005",
            LintCode::ConstantMismatch => "GL006",
            LintCode::SubsumedRule => "GL007",
        }
    }

    /// The human-readable lint name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::UnusedRelation => "unused-relation",
            LintCode::UnreachableRule => "unreachable-rule",
            LintCode::SingletonVariable => "singleton-variable",
            LintCode::DuplicateLiteral => "duplicate-literal",
            LintCode::AlwaysFalse => "always-false",
            LintCode::ConstantMismatch => "constant-mismatch",
            LintCode::SubsumedRule => "subsumed-rule",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Severity of the finding.
    pub level: DiagnosticLevel,
    /// Human-readable description, naming the offending construct.
    pub message: String,
    /// Index of the offending rule in [`Program::rules`], when the finding
    /// is anchored to a rule (relation-level findings carry `None`).
    pub rule: Option<usize>,
    /// Source position of the offending construct ([`Span::NONE`] when the
    /// program was assembled programmatically or the finding has no
    /// source anchor).
    pub span: Span,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.level, self.code.code(), self.message)?;
        if self.span.is_known() {
            write!(f, " at {}", self.span)?;
        }
        Ok(())
    }
}

/// All findings produced by one [`lint_program`] run, in pass order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramDiagnostics {
    diagnostics: Vec<Diagnostic>,
}

impl ProgramDiagnostics {
    /// The findings as a slice.
    pub fn as_slice(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Iterates over the findings.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.diagnostics.iter()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the program linted clean.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding carries the given code.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl<'a> IntoIterator for &'a ProgramDiagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.iter()
    }
}

impl fmt::Display for ProgramDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Runs every lint pass over `program` and collects the findings.
///
/// Lints never fail: a structurally invalid program simply produces the
/// findings its valid parts support (build-time validation is
/// [`super::stratify_program`]'s job). Findings are grouped by lint in
/// `GL001..GL007` order and anchored to rule indices and parse spans where
/// available.
pub fn lint_program(program: &Program) -> ProgramDiagnostics {
    let mut diagnostics = Vec::new();
    lint_unused_relations(program, &mut diagnostics);
    lint_unreachable_rules(program, &mut diagnostics);
    lint_singleton_variables(program, &mut diagnostics);
    lint_duplicate_literals(program, &mut diagnostics);
    lint_always_false(program, &mut diagnostics);
    lint_constant_mismatch(program, &mut diagnostics);
    lint_subsumed_rules(program, &mut diagnostics);
    ProgramDiagnostics { diagnostics }
}

/// GL001: declared relations nothing reads.
///
/// A relation is *used* when it is an output, the `?-` goal's relation, or
/// read by any body literal (positive or negated). A declared relation
/// used by nothing — including a `.input` relation whose facts no rule
/// consumes — is dead weight and usually a typo.
fn lint_unused_relations(program: &Program, out: &mut Vec<Diagnostic>) {
    let mut used: HashSet<&str> = HashSet::new();
    for rule in &program.rules {
        for literal in &rule.body {
            used.insert(literal.atom().relation.as_str());
        }
    }
    if let Some(query) = &program.query {
        used.insert(query.atom.relation.as_str());
    }
    for decl in &program.relations {
        if !decl.is_output && !used.contains(decl.name.as_str()) {
            out.push(Diagnostic {
                code: LintCode::UnusedRelation,
                level: DiagnosticLevel::Warning,
                message: format!(
                    "relation {} is never read by a rule body, goal, or output",
                    decl.name
                ),
                rule: None,
                span: Span::NONE,
            });
        }
    }
}

/// Backward reachability from the observable roots (output relations and
/// the `?-` goal) through the precedence graph: a rule is reachable when
/// its head relation is needed, and a needed rule makes every relation in
/// its body (positive and negated) needed in turn.
///
/// Returns `None` when the program declares no outputs and carries no goal
/// — then nothing is observable and reachability is meaningless, so both
/// the GL002 lint and dead-rule elimination stand down.
fn rule_reachability(program: &Program) -> Option<Vec<bool>> {
    let mut roots: Vec<&str> = program
        .relations
        .iter()
        .filter(|d| d.is_output)
        .map(|d| d.name.as_str())
        .collect();
    if let Some(query) = &program.query {
        roots.push(query.atom.relation.as_str());
    }
    if roots.is_empty() {
        return None;
    }
    let mut rules_of: HashMap<&str, Vec<usize>> = HashMap::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        rules_of
            .entry(rule.head.relation.as_str())
            .or_default()
            .push(ri);
    }
    let mut needed: HashSet<&str> = HashSet::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    for root in roots {
        if needed.insert(root) {
            queue.push_back(root);
        }
    }
    let mut reachable = vec![false; program.rules.len()];
    while let Some(rel) = queue.pop_front() {
        for &ri in rules_of.get(rel).map_or(&[][..], |v| v.as_slice()) {
            if reachable[ri] {
                continue;
            }
            reachable[ri] = true;
            for literal in &program.rules[ri].body {
                let body_rel = literal.atom().relation.as_str();
                if needed.insert(body_rel) {
                    queue.push_back(body_rel);
                }
            }
        }
    }
    Some(reachable)
}

/// GL002: rules no output or goal can observe.
fn lint_unreachable_rules(program: &Program, out: &mut Vec<Diagnostic>) {
    let Some(reachable) = rule_reachability(program) else {
        return;
    };
    for (ri, rule) in program.rules.iter().enumerate() {
        if !reachable[ri] {
            out.push(Diagnostic {
                code: LintCode::UnreachableRule,
                level: DiagnosticLevel::Warning,
                message: format!(
                    "rule `{rule}` is unreachable from every output relation and goal"
                ),
                rule: Some(ri),
                span: rule.span,
            });
        }
    }
}

/// Occurrence count of every named variable in `rule`, across the head,
/// all body literals, and all constraint operands. (The aggregate variable
/// is counted through its head column.)
fn variable_occurrences(rule: &Rule) -> HashMap<&str, usize> {
    // A single pass over every term position in the rule.
    let constraint_terms = rule.constraints.iter().flat_map(|c| [&c.left, &c.right]);
    let terms = rule
        .head
        .terms
        .iter()
        .chain(rule.body.iter().flat_map(|l| l.atom().terms.iter()))
        .chain(constraint_terms);
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for term in terms {
        if let Term::Var(v) = term {
            *counts.entry(v.as_str()).or_insert(0) += 1;
        }
    }
    counts
}

/// GL003: variables bound once and used nowhere else.
///
/// A variable occurring exactly once joins nothing, selects nothing, and
/// projects nothing — it is a don't-care that should be spelled `_`.
/// Variables already spelled with a leading underscore (including the
/// parser's `_anonN` expansion of `_`) are intentional don't-cares and are
/// skipped.
fn lint_singleton_variables(program: &Program, out: &mut Vec<Diagnostic>) {
    for (ri, rule) in program.rules.iter().enumerate() {
        let counts = variable_occurrences(rule);
        let mut singles: Vec<&str> = counts
            .iter()
            .filter(|(name, &count)| count == 1 && !name.starts_with('_'))
            .map(|(&name, _)| name)
            .collect();
        singles.sort_unstable();
        for name in singles {
            out.push(Diagnostic {
                code: LintCode::SingletonVariable,
                level: DiagnosticLevel::Warning,
                message: format!(
                    "variable {name} in rule `{rule}` is used only once; \
                     replace it with `_`"
                ),
                rule: Some(ri),
                span: rule.span,
            });
        }
    }
}

/// GL004: literals repeated inside one body.
fn lint_duplicate_literals(program: &Program, out: &mut Vec<Diagnostic>) {
    for (ri, rule) in program.rules.iter().enumerate() {
        let mut seen: Vec<&Literal> = Vec::new();
        for literal in &rule.body {
            if seen.contains(&literal) {
                out.push(Diagnostic {
                    code: LintCode::DuplicateLiteral,
                    level: DiagnosticLevel::Warning,
                    message: format!("duplicate body literal `{literal}` in rule `{rule}`"),
                    rule: Some(ri),
                    span: literal.atom().span,
                });
            } else {
                seen.push(literal);
            }
        }
    }
}

/// Decides whether `rule`'s constraints are contradictory on constants
/// alone: a constant-vs-constant comparison that fails, a variable with the
/// same name on both sides of a strict comparison, or `= const` equalities
/// that pin a variable to two different values (directly or through
/// another failing comparison).
fn constraints_always_false(rule: &Rule) -> bool {
    let mut pinned: HashMap<&str, u32> = HashMap::new();
    for c in &rule.constraints {
        match (&c.left, &c.right) {
            (Term::Const(l), Term::Const(r)) if !c.op.eval(*l, *r) => return true,
            // x op x holds for reflexive operators only.
            (Term::Var(l), Term::Var(r)) if l == r && !c.op.eval(0, 0) => return true,
            _ => {}
        }
        if c.op == crate::ast::CmpOp::Eq {
            let bound = match (&c.left, &c.right) {
                (Term::Var(v), Term::Const(k)) | (Term::Const(k), Term::Var(v)) => {
                    Some((v.as_str(), *k))
                }
                _ => None,
            };
            if let Some((v, k)) = bound {
                if *pinned.entry(v).or_insert(k) != k {
                    return true;
                }
            }
        }
    }
    // Re-check the remaining comparisons under the pinned values.
    for c in &rule.constraints {
        let value = |t: &Term| match t {
            Term::Const(k) => Some(*k),
            Term::Var(v) => pinned.get(v.as_str()).copied(),
        };
        if let (Some(l), Some(r)) = (value(&c.left), value(&c.right)) {
            if !c.op.eval(l, r) {
                return true;
            }
        }
    }
    false
}

/// GL005: rules that can never derive a tuple.
fn lint_always_false(program: &Program, out: &mut Vec<Diagnostic>) {
    for (ri, rule) in program.rules.iter().enumerate() {
        if constraints_always_false(rule) {
            out.push(Diagnostic {
                code: LintCode::AlwaysFalse,
                level: DiagnosticLevel::Warning,
                message: format!(
                    "rule `{rule}` can never fire: its constraints are \
                     contradictory on constants"
                ),
                rule: Some(ri),
                span: rule.span,
            });
        }
    }
}

/// Per-relation, per-column sets of head constants: for every non-input
/// relation all of whose writing rules put a constant in column `k`, the
/// set of those constants. Columns any writer leaves variable — and
/// relations with no writers or with `.input` facts — are `None`.
fn constant_columns(program: &Program) -> HashMap<&str, Vec<Option<HashSet<u32>>>> {
    let mut columns: HashMap<&str, Vec<Option<HashSet<u32>>>> = HashMap::new();
    for rule in &program.rules {
        let relation = rule.head.relation.as_str();
        if program.relation(relation).is_none_or(|d| d.is_input) {
            continue;
        }
        let entry = columns
            .entry(relation)
            .or_insert_with(|| vec![Some(HashSet::new()); rule.head.terms.len()]);
        for (k, term) in rule.head.terms.iter().enumerate() {
            let Some(slot) = entry.get_mut(k) else {
                continue;
            };
            match term {
                Term::Const(c) => {
                    if let Some(set) = slot {
                        set.insert(*c);
                    }
                }
                Term::Var(_) => *slot = None,
            }
        }
    }
    columns
}

/// GL006: positive body literals selecting a constant that no writer of
/// the relation ever produces in that column.
///
/// Restricted to non-input relations (input facts arrive at runtime) and
/// positive literals: a negated literal over an impossible constant is
/// *always true*, which is suspicious for a different reason but not a
/// contradiction.
fn lint_constant_mismatch(program: &Program, out: &mut Vec<Diagnostic>) {
    let columns = constant_columns(program);
    for (ri, rule) in program.rules.iter().enumerate() {
        for atom in rule.positive_atoms() {
            let Some(cols) = columns.get(atom.relation.as_str()) else {
                continue;
            };
            for (k, term) in atom.terms.iter().enumerate() {
                let (Term::Const(c), Some(Some(written))) = (term, cols.get(k)) else {
                    continue;
                };
                if !written.contains(c) {
                    out.push(Diagnostic {
                        code: LintCode::ConstantMismatch,
                        level: DiagnosticLevel::Warning,
                        message: format!(
                            "literal `{atom}` in rule `{rule}` selects constant {c} \
                             in column {k} of {}, but every rule writing {} puts \
                             a different constant there",
                            atom.relation, atom.relation
                        ),
                        rule: Some(ri),
                        span: atom.span,
                    });
                }
            }
        }
    }
}

/// Whether `by` subsumes `rule`: identical head atom (same variable
/// names), neither rule aggregates, and `by`'s literals and constraints
/// are each contained in `rule`'s. Then every body binding satisfying
/// `rule` satisfies `by`, so every head tuple `rule` derives, `by`
/// derives too.
fn subsumes(by: &Rule, rule: &Rule) -> bool {
    by.head == rule.head
        && by.aggregate.is_none()
        && rule.aggregate.is_none()
        && by.body.iter().all(|l| rule.body.contains(l))
        && by.constraints.iter().all(|c| rule.constraints.contains(c))
}

/// For each rule, the index of a rule that subsumes it, preferring a
/// strictly smaller subsumer and breaking exact ties (identical rules)
/// toward the earlier index so exactly one copy of a duplicated rule
/// survives.
fn subsumed_by(rules: &[Rule]) -> Vec<Option<usize>> {
    let mut result = vec![None; rules.len()];
    for (i, rule) in rules.iter().enumerate() {
        for (j, by) in rules.iter().enumerate() {
            if i == j || !subsumes(by, rule) {
                continue;
            }
            let strictly_smaller =
                by.body.len() < rule.body.len() || by.constraints.len() < rule.constraints.len();
            if strictly_smaller || (j < i && subsumes(rule, by)) {
                result[i] = Some(j);
                break;
            }
        }
    }
    result
}

/// GL007: rules whose derivations another rule already produces.
fn lint_subsumed_rules(program: &Program, out: &mut Vec<Diagnostic>) {
    for (ri, by) in subsumed_by(&program.rules).into_iter().enumerate() {
        let Some(by) = by else {
            continue;
        };
        let rule = &program.rules[ri];
        out.push(Diagnostic {
            code: LintCode::SubsumedRule,
            level: DiagnosticLevel::Warning,
            message: format!(
                "rule `{rule}` is subsumed by `{}`: everything it derives \
                 is already derived",
                program.rules[by]
            ),
            rule: Some(ri),
            span: rule.span,
        });
    }
}

/// The result of [`optimize_program`]: the rewritten program plus counters
/// describing what each rewrite did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptimizeReport {
    /// The rewritten, re-validated program.
    pub program: Program,
    /// Rules dropped because their constraints were contradictory (GL005).
    pub always_false_rules_removed: usize,
    /// `= const` bindings substituted into their rules' atoms.
    pub constants_propagated: usize,
    /// Duplicate body literals removed (GL004).
    pub duplicate_literals_removed: usize,
    /// Duplicate or trivially-true constraints removed.
    pub constraints_removed: usize,
    /// Rules removed because another rule subsumes them (GL007).
    pub subsumed_rules_removed: usize,
    /// Rules removed as unreachable from every output and goal (GL002).
    pub dead_rules_removed: usize,
}

impl OptimizeReport {
    /// Total number of rules the rewrites removed.
    pub fn rules_removed(&self) -> usize {
        self.always_false_rules_removed + self.subsumed_rules_removed + self.dead_rules_removed
    }

    /// Whether any rewrite changed the program.
    pub fn changed(&self) -> bool {
        self.rules_removed() > 0
            || self.constants_propagated > 0
            || self.duplicate_literals_removed > 0
            || self.constraints_removed > 0
    }
}

/// Propagates `var = const` equality constraints through `rule`:
/// each such constraint is deleted and the constant substituted for the
/// variable everywhere in the rule, turning downstream join columns into
/// selections the planner pushes into the scan. The aggregate variable is
/// never substituted (its head column must stay a variable).
///
/// Returns the number of bindings propagated.
fn propagate_constants(rule: &mut Rule) -> usize {
    let mut propagated = 0;
    loop {
        let skip = rule.aggregate.as_ref().map(|a| a.var.clone());
        let binding = rule.constraints.iter().position(|c| {
            c.op == crate::ast::CmpOp::Eq
                && matches!(
                    (&c.left, &c.right),
                    (Term::Var(v), Term::Const(_)) | (Term::Const(_), Term::Var(v))
                        if Some(v.as_str()) != skip.as_deref()
                )
        });
        let Some(i) = binding else {
            break;
        };
        let c = rule.constraints.remove(i);
        let (var, value) = match (c.left, c.right) {
            (Term::Var(v), Term::Const(k)) | (Term::Const(k), Term::Var(v)) => (v, k),
            _ => unreachable!("position() matched a var/const equality"),
        };
        let substitute = |term: &mut Term| {
            if term.as_var() == Some(var.as_str()) {
                *term = Term::Const(value);
            }
        };
        rule.head.terms.iter_mut().for_each(substitute);
        for literal in &mut rule.body {
            let atom = match literal {
                Literal::Pos(a) | Literal::Neg(a) => a,
            };
            atom.terms.iter_mut().for_each(substitute);
        }
        for c in &mut rule.constraints {
            substitute(&mut c.left);
            substitute(&mut c.right);
        }
        propagated += 1;
    }
    propagated
}

/// Drops constraints that hold for every binding: `const op const`
/// comparisons that evaluate true (typically left behind by constant
/// propagation) and reflexive same-variable comparisons (`x = x`,
/// `x <= x`, `x >= x`). Returns the number removed. Constraints that
/// *fail* on constants are kept — [`constraints_always_false`] removes the
/// whole rule instead.
fn drop_trivial_constraints(rule: &mut Rule) -> usize {
    let before = rule.constraints.len();
    rule.constraints.retain(|c| match (&c.left, &c.right) {
        (Term::Const(l), Term::Const(r)) => !c.op.eval(*l, *r),
        (Term::Var(l), Term::Var(r)) if l == r => !c.op.eval(0, 0),
        _ => true,
    });
    before - rule.constraints.len()
}

/// Rewrites `program` through every semantics-preserving pass and
/// re-validates the result.
///
/// Pass order: always-false rule elimination, per-rule constant
/// propagation (which can expose new contradictions, so always-false runs
/// again on the substituted rule), duplicate literal and trivial
/// constraint removal, subsumed/duplicate rule removal, and dead-rule
/// elimination rooted at the declared outputs and the `?-` goal (skipped
/// entirely for programs with no outputs and no goal, where everything
/// would be "dead"). Relation declarations are never touched: extensional
/// facts load by declaration, with or without surviving rules.
///
/// Every pass preserves the fixpoint of every output relation and of the
/// goal's relation, so `run()` and `run_query()` results are byte-identical
/// between the original and rewritten program.
///
/// # Errors
///
/// Returns whatever [`super::stratify_program`] reports on the *input*
/// program — optimization refuses to touch an invalid program, so rewrites
/// can never mask a validation error — and re-propagates any error from
/// re-validating the rewritten program (which would be an optimizer bug).
pub fn optimize_program(program: &Program) -> EngineResult<OptimizeReport> {
    stratify_program(program)?;
    let mut report = OptimizeReport {
        program: program.clone(),
        ..OptimizeReport::default()
    };
    let p = &mut report.program;

    // Always-false elimination, before and again during constant
    // propagation (substitution can surface new constant contradictions).
    let before = p.rules.len();
    p.rules.retain(|r| !constraints_always_false(r));
    report.always_false_rules_removed += before - p.rules.len();

    for rule in &mut p.rules {
        report.constants_propagated += propagate_constants(rule);
    }
    let before = p.rules.len();
    p.rules.retain(|r| !constraints_always_false(r));
    report.always_false_rules_removed += before - p.rules.len();

    for rule in &mut p.rules {
        let before = rule.body.len();
        let mut kept: Vec<Literal> = Vec::with_capacity(rule.body.len());
        for literal in rule.body.drain(..) {
            if !kept.contains(&literal) {
                kept.push(literal);
            }
        }
        rule.body = kept;
        report.duplicate_literals_removed += before - rule.body.len();

        report.constraints_removed += drop_trivial_constraints(rule);
        let before = rule.constraints.len();
        let mut kept = Vec::with_capacity(rule.constraints.len());
        for c in rule.constraints.drain(..) {
            if !kept.contains(&c) {
                kept.push(c);
            }
        }
        rule.constraints = kept;
        report.constraints_removed += before - rule.constraints.len();
    }

    // Subsumed-rule removal to a fixpoint: removing one rule can make a
    // chain of subsumptions resolve (A ⊐ B ⊐ C collapses to C alone).
    loop {
        let subsumed = subsumed_by(&p.rules);
        // Only drop rules whose subsumer survives this round, so mutual
        // (identical) pairs lose exactly one member and subsumption chains
        // resolve over successive rounds.
        let mut dropped: HashSet<usize> = HashSet::new();
        for (i, by) in subsumed.iter().enumerate() {
            if by.is_some_and(|j| subsumed[j].is_none()) {
                dropped.insert(i);
            }
        }
        if dropped.is_empty() {
            break;
        }
        let mut idx = 0;
        p.rules.retain(|_| {
            let keep = !dropped.contains(&idx);
            idx += 1;
            keep
        });
        report.subsumed_rules_removed += dropped.len();
    }

    if let Some(reachable) = rule_reachability(p) {
        let before = p.rules.len();
        let mut idx = 0;
        p.rules.retain(|_| {
            let keep = reachable[idx];
            idx += 1;
            keep
        });
        report.dead_rules_removed += before - p.rules.len();
    }

    stratify_program(p)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, ProgramBuilder, Term};
    use crate::error::EngineError;
    use crate::parser::parse_program;

    fn codes(diags: &ProgramDiagnostics) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn clean_program_lints_clean() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             .output Reach\n\
             Reach(x, y) :- Edge(x, y).\n\
             Reach(x, y) :- Edge(x, z), Reach(z, y).\n",
        )
        .unwrap();
        let diags = lint_program(&program);
        assert!(diags.is_empty(), "unexpected findings:\n{diags}");
    }

    #[test]
    fn unused_relation_fires_and_outputs_are_exempt() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Orphan(a: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             .input Orphan\n\
             .output Reach\n\
             Reach(x, y) :- Edge(x, y).\n",
        )
        .unwrap();
        let diags = lint_program(&program);
        assert_eq!(codes(&diags), vec!["GL001"]);
        assert!(diags.as_slice()[0].message.contains("Orphan"));
        assert_eq!(diags.as_slice()[0].rule, None);
    }

    #[test]
    fn goal_relation_counts_as_used() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             Reach(x, y) :- Edge(x, y).\n\
             ?- Reach(0, y).\n",
        )
        .unwrap();
        assert!(!lint_program(&program).has(LintCode::UnusedRelation));
    }

    #[test]
    fn unreachable_rule_fires_with_span() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Reach(a: number, b: number)\n\
             .decl Stray(a: number)\n\
             .input Edge\n\
             .output Reach\n\
             Reach(x, y) :- Edge(x, y).\n\
             Stray(x) :- Edge(x, _).\n",
        )
        .unwrap();
        let diags = lint_program(&program);
        assert!(diags.has(LintCode::UnreachableRule));
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::UnreachableRule)
            .unwrap();
        assert_eq!(d.rule, Some(1));
        assert_eq!(d.span.line, 7, "span should anchor at the Stray rule head");
        // Stray is read by nothing either.
        assert!(diags.has(LintCode::UnusedRelation));
    }

    #[test]
    fn no_outputs_no_goal_means_no_reachability_lint() {
        let program = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .relation("Reach", 2)
            .rule("Reach", vec![Term::var("x"), Term::var("y")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .end_rule()
            .build()
            .unwrap();
        assert!(!lint_program(&program).has(LintCode::UnreachableRule));
    }

    #[test]
    fn singleton_variable_fires_but_wildcards_do_not() {
        let program = parse_program(
            ".decl Assign(a: number, b: number)\n\
             .decl Flow(a: number, b: number)\n\
             .input Assign\n\
             .output Flow\n\
             Flow(x, x) :- Assign(x, y).\n\
             Flow(x, x) :- Assign(x, _).\n",
        )
        .unwrap();
        let diags = lint_program(&program);
        let singles: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == LintCode::SingletonVariable)
            .collect();
        assert_eq!(
            singles.len(),
            1,
            "y is a singleton; the wildcard is not:\n{diags}"
        );
        assert!(singles[0].message.contains("variable y"));
        assert_eq!(singles[0].rule, Some(0));
    }

    #[test]
    fn duplicate_literal_fires_on_repeated_atom() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             .output Reach\n\
             Reach(x, y) :- Edge(x, y), Edge(x, y).\n",
        )
        .unwrap();
        let diags = lint_program(&program);
        assert!(diags.has(LintCode::DuplicateLiteral));
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::DuplicateLiteral)
            .unwrap();
        assert_eq!(d.rule, Some(0));
        assert!(d.span.is_known());
    }

    #[test]
    fn always_false_catches_constant_and_pinned_contradictions() {
        // Direct constant contradiction.
        let direct = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .constraint(Term::Const(1), CmpOp::Eq, Term::Const(2))
            .end_rule()
            .build()
            .unwrap();
        assert!(lint_program(&direct).has(LintCode::AlwaysFalse));

        // x = 1, x = 2 pins x to two values.
        let pinned = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .constraint(Term::var("x"), CmpOp::Eq, Term::Const(1))
            .constraint(Term::var("x"), CmpOp::Eq, Term::Const(2))
            .end_rule()
            .build()
            .unwrap();
        assert!(lint_program(&pinned).has(LintCode::AlwaysFalse));

        // x = 1, x > 5 fails under the pinned value.
        let pinned_cmp = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .constraint(Term::var("x"), CmpOp::Eq, Term::Const(1))
            .constraint(Term::var("x"), CmpOp::Gt, Term::Const(5))
            .end_rule()
            .build()
            .unwrap();
        assert!(lint_program(&pinned_cmp).has(LintCode::AlwaysFalse));

        // x != x never holds.
        let reflexive = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .constraint(Term::var("x"), CmpOp::Ne, Term::var("x"))
            .end_rule()
            .build()
            .unwrap();
        assert!(lint_program(&reflexive).has(LintCode::AlwaysFalse));

        // x = 1, y > 5 is satisfiable: no finding.
        let fine = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .constraint(Term::var("x"), CmpOp::Eq, Term::Const(1))
            .constraint(Term::var("y"), CmpOp::Gt, Term::Const(5))
            .end_rule()
            .build()
            .unwrap();
        assert!(!lint_program(&fine).has(LintCode::AlwaysFalse));
    }

    #[test]
    fn constant_mismatch_fires_only_for_impossible_constants() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Tag(t: number, v: number)\n\
             .decl Out(v: number)\n\
             .decl Bad(v: number)\n\
             .input Edge\n\
             .output Out\n\
             .output Bad\n\
             Tag(1, x) :- Edge(x, _).\n\
             Tag(2, x) :- Edge(_, x).\n\
             Out(x) :- Tag(1, x).\n\
             Bad(x) :- Tag(3, x).\n",
        )
        .unwrap();
        let diags = lint_program(&program);
        let mismatches: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == LintCode::ConstantMismatch)
            .collect();
        assert_eq!(
            mismatches.len(),
            1,
            "only Tag(3, x) is impossible:\n{diags}"
        );
        assert_eq!(mismatches[0].rule, Some(3));
        assert!(mismatches[0].message.contains("constant 3"));
    }

    #[test]
    fn constant_mismatch_skips_input_relations_and_negation() {
        // Edge is .input: runtime facts can hold any constant.
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Out(v: number)\n\
             .input Edge\n\
             .output Out\n\
             Out(x) :- Edge(7, x).\n",
        )
        .unwrap();
        assert!(!lint_program(&program).has(LintCode::ConstantMismatch));

        // A negated impossible literal is always true, not a mismatch.
        let negated = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Tag(t: number, v: number)\n\
             .decl Out(v: number)\n\
             .input Edge\n\
             .output Out\n\
             Tag(1, x) :- Edge(x, _).\n\
             Out(x) :- Edge(x, _), !Tag(3, x).\n",
        )
        .unwrap();
        assert!(!lint_program(&negated).has(LintCode::ConstantMismatch));
    }

    #[test]
    fn subsumed_rule_fires_for_strict_superset_and_duplicates() {
        let strict = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             .output Reach\n\
             Reach(x, y) :- Edge(x, y).\n\
             Reach(x, y) :- Edge(x, y), Edge(x, x).\n",
        )
        .unwrap();
        let diags = lint_program(&strict);
        let d = diags
            .iter()
            .find(|d| d.code == LintCode::SubsumedRule)
            .unwrap();
        assert_eq!(d.rule, Some(1), "the longer rule is the subsumed one");

        let dup = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             .output Reach\n\
             Reach(x, y) :- Edge(x, y).\n\
             Reach(x, y) :- Edge(x, y).\n",
        )
        .unwrap();
        let diags = lint_program(&dup);
        let subsumed: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.code == LintCode::SubsumedRule)
            .collect();
        assert_eq!(
            subsumed.len(),
            1,
            "exactly one of an identical pair:\n{diags}"
        );
        assert_eq!(subsumed[0].rule, Some(1), "the later duplicate is reported");
    }

    #[test]
    fn aggregated_rules_are_never_subsumed() {
        let program = parse_program(
            ".decl PathLen(a: number, b: number, d: number)\n\
             .decl SP(a: number, b: number, d: number)\n\
             .input PathLen\n\
             .output SP\n\
             SP(x, y, min(d)) :- PathLen(x, y, d).\n\
             SP(x, y, d) :- PathLen(x, y, d).\n",
        )
        .unwrap();
        assert!(!lint_program(&program).has(LintCode::SubsumedRule));
    }

    #[test]
    fn diagnostic_display_includes_code_and_span() {
        let d = Diagnostic {
            code: LintCode::SingletonVariable,
            level: DiagnosticLevel::Warning,
            message: "singleton variable z".into(),
            rule: Some(0),
            span: Span::new(3, 1),
        };
        let text = d.to_string();
        assert!(text.starts_with("warning[GL003]: singleton variable z"));
        assert!(text.contains("line 3, column 1"));
        let none = Diagnostic {
            span: Span::NONE,
            ..d
        };
        assert!(!none.to_string().contains("line"));
    }

    #[test]
    fn lint_code_names_are_stable() {
        let all = [
            LintCode::UnusedRelation,
            LintCode::UnreachableRule,
            LintCode::SingletonVariable,
            LintCode::DuplicateLiteral,
            LintCode::AlwaysFalse,
            LintCode::ConstantMismatch,
            LintCode::SubsumedRule,
        ];
        let codes: Vec<&str> = all.iter().map(|c| c.code()).collect();
        assert_eq!(
            codes,
            vec!["GL001", "GL002", "GL003", "GL004", "GL005", "GL006", "GL007"]
        );
        for c in all {
            assert!(!c.name().is_empty());
            assert_eq!(c.to_string(), c.code());
        }
    }

    #[test]
    fn optimize_removes_always_false_rules() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             .output Reach\n\
             Reach(x, y) :- Edge(x, y).\n\
             Reach(x, y) :- Edge(x, y), 1 = 2.\n",
        )
        .unwrap();
        let report = optimize_program(&program).unwrap();
        assert_eq!(report.always_false_rules_removed, 1);
        assert_eq!(report.program.rules.len(), 1);
    }

    #[test]
    fn optimize_propagates_constants_into_selections() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Out(a: number, b: number)\n\
             .input Edge\n\
             .output Out\n\
             Out(x, y) :- Edge(x, y), x = 3.\n",
        )
        .unwrap();
        let report = optimize_program(&program).unwrap();
        assert_eq!(report.constants_propagated, 1);
        let rule = &report.program.rules[0];
        assert!(
            rule.constraints.is_empty(),
            "the binding constraint is consumed"
        );
        assert_eq!(rule.head.terms[0], Term::Const(3));
        assert_eq!(rule.body[0].atom().terms[0], Term::Const(3));
    }

    #[test]
    fn optimize_never_substitutes_the_aggregate_variable() {
        let program = parse_program(
            ".decl PathLen(a: number, b: number, d: number)\n\
             .decl SP(a: number, b: number, d: number)\n\
             .input PathLen\n\
             .output SP\n\
             SP(x, y, min(d)) :- PathLen(x, y, d), d = 4.\n",
        )
        .unwrap();
        let report = optimize_program(&program).unwrap();
        let rule = &report.program.rules[0];
        assert_eq!(
            rule.head.terms[2],
            Term::var("d"),
            "aggregate column stays a variable"
        );
        assert_eq!(
            rule.constraints.len(),
            1,
            "the d = 4 constraint must survive"
        );
    }

    #[test]
    fn optimize_dedups_literals_and_collapses_subsumed_rules() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             .output Reach\n\
             Reach(x, y) :- Edge(x, y), Edge(x, y).\n\
             Reach(x, y) :- Edge(x, y).\n",
        )
        .unwrap();
        let report = optimize_program(&program).unwrap();
        assert_eq!(report.duplicate_literals_removed, 1);
        // After dedup the two rules are identical; one survives.
        assert_eq!(report.subsumed_rules_removed, 1);
        assert_eq!(report.program.rules.len(), 1);
        assert_eq!(report.program.rules[0].body.len(), 1);
    }

    #[test]
    fn optimize_eliminates_rules_unreachable_from_outputs() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Reach(a: number, b: number)\n\
             .decl Stray(a: number)\n\
             .decl Straggler(a: number)\n\
             .input Edge\n\
             .output Reach\n\
             Reach(x, y) :- Edge(x, y).\n\
             Reach(x, y) :- Edge(x, z), Reach(z, y).\n\
             Stray(x) :- Straggler(x).\n\
             Straggler(x) :- Edge(x, _).\n",
        )
        .unwrap();
        let report = optimize_program(&program).unwrap();
        assert_eq!(report.dead_rules_removed, 2, "the Stray chain is dead");
        assert_eq!(report.program.rules.len(), 2);
        assert_eq!(
            report.program.relations.len(),
            program.relations.len(),
            "declarations are never dropped"
        );
    }

    #[test]
    fn optimize_keeps_rules_behind_negation_and_goals() {
        // Blocked is only read through negation: still live.
        let negated = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Bad(a: number)\n\
             .decl Blocked(a: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             .input Bad\n\
             .output Reach\n\
             Blocked(x) :- Bad(x).\n\
             Reach(x, y) :- Edge(x, y), !Blocked(y).\n",
        )
        .unwrap();
        let report = optimize_program(&negated).unwrap();
        assert_eq!(report.dead_rules_removed, 0);

        // A goal roots reachability even with no .output at all.
        let goal = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             Reach(x, y) :- Edge(x, y).\n\
             ?- Reach(0, y).\n",
        )
        .unwrap();
        let report = optimize_program(&goal).unwrap();
        assert_eq!(report.dead_rules_removed, 0);
    }

    #[test]
    fn optimize_without_roots_skips_dead_rule_elimination() {
        let program = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .relation("Reach", 2)
            .rule("Reach", vec![Term::var("x"), Term::var("y")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .end_rule()
            .build()
            .unwrap();
        let report = optimize_program(&program).unwrap();
        assert_eq!(report.dead_rules_removed, 0);
        assert_eq!(report.program.rules.len(), 1);
        assert!(!report.changed());
    }

    #[test]
    fn optimize_rejects_invalid_programs_unchanged() {
        let program = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("R", 1)
            .rule("R", vec![Term::var("ghost")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .end_rule()
            .build()
            .unwrap();
        let err = optimize_program(&program).unwrap_err();
        assert!(matches!(err, EngineError::UnboundVariable { .. }));
    }

    #[test]
    fn optimized_program_restratifies() {
        let program = parse_program(
            ".decl Edge(a: number, b: number)\n\
             .decl Blocked(a: number)\n\
             .decl Reach(a: number, b: number)\n\
             .input Edge\n\
             .input Blocked\n\
             .output Reach\n\
             Reach(x, y) :- Edge(x, y), !Blocked(y), x = 1, Edge(x, y).\n",
        )
        .unwrap();
        let report = optimize_program(&program).unwrap();
        assert!(stratify_program(&report.program).is_ok());
        assert!(report.changed());
        assert_eq!(report.rules_removed(), 0);
    }
}
