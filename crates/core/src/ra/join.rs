//! The binary hash-join kernel (paper Algorithm 3 and Figure 4).
//!
//! The outer relation is a dense row-major buffer iterated in parallel; each
//! simulated thread hashes its outer tuple's key columns, enters the inner
//! HISA through its hash table, and linearly scans the sorted index array
//! for matching tuples. Output is materialized with the standard GPU
//! two-pass scheme: a counting pass, an exclusive scan to compute offsets,
//! and a writing pass into a single dense output buffer.

use crate::planner::EmitSource;
use crate::ra::project::batch_from_flat;
use gpulog_device::thrust::scan::exclusive_scan_offsets;
use gpulog_device::Device;
use gpulog_hisa::{Hisa, TupleBatch};

/// Computes the join of a dense outer buffer with an indexed inner HISA.
///
/// * `outer` is row-major with `outer_arity` columns.
/// * `outer_key_cols` selects the outer columns forming the join key; it is
///   matched positionally against the inner HISA's key columns, so the HISA
///   must have been built with an [`gpulog_hisa::IndexSpec`] whose key has
///   the same length (an empty key degenerates to a cross product).
/// * `inner_const_filters` / `inner_eq_filters` express constant arguments
///   and repeated variables of the inner atom, in the inner relation's
///   *original* column order.
/// * `emit` describes each output column as either an outer column or an
///   inner (original-order) column.
///
/// Returns the output buffer, row-major with `emit.len()` columns.
///
/// # Panics
///
/// Panics if the key arities of `outer_key_cols` and the inner HISA differ,
/// or if any referenced column is out of range.
#[allow(clippy::too_many_arguments)] // mirrors the paper's kernel signature
pub fn hash_join(
    device: &Device,
    outer: &[u32],
    outer_arity: usize,
    outer_key_cols: &[usize],
    inner: &Hisa,
    inner_const_filters: &[(usize, u32)],
    inner_eq_filters: &[(usize, usize)],
    emit: &[EmitSource],
) -> Vec<u32> {
    assert!(
        outer_key_cols.is_empty() || outer_key_cols.len() == inner.spec().key_arity(),
        "outer and inner join-key arities must match"
    );
    if outer_arity > 0 {
        assert_eq!(outer.len() % outer_arity, 0, "ragged outer buffer");
    }
    let outer_rows = outer.len().checked_div(outer_arity).unwrap_or(0);
    let emit_arity = emit.len();
    let inner_arity = inner.arity();

    // Original column -> position within the HISA's reordered row.
    let mut orig_to_reordered = vec![0usize; inner_arity];
    for (pos, &orig) in inner.spec().permutation().iter().enumerate() {
        orig_to_reordered[orig] = pos;
    }

    let passes_inner_filters = |row: &[u32]| -> bool {
        inner_const_filters
            .iter()
            .all(|&(col, val)| row[orig_to_reordered[col]] == val)
            && inner_eq_filters
                .iter()
                .all(|&(a, b)| row[orig_to_reordered[a]] == row[orig_to_reordered[b]])
    };

    let matches_of = |outer_row: &[u32]| -> Vec<u32> {
        if outer_key_cols.is_empty() {
            // Cross product: every inner row is a candidate.
            (0..inner.len() as u32).collect()
        } else {
            let key: Vec<u32> = outer_key_cols.iter().map(|&c| outer_row[c]).collect();
            inner.range_query(&key).collect()
        }
    };

    // Pass 1: count matches per outer tuple.
    let metrics = device.metrics();
    metrics.add_kernel_launch();
    metrics.add_bytes_read((outer.len() * 4) as u64);
    let mut counts = vec![0usize; outer_rows];
    device.executor().fill(&mut counts, |i| {
        let outer_row = &outer[i * outer_arity..(i + 1) * outer_arity];
        matches_of(outer_row)
            .into_iter()
            .filter(|&r| passes_inner_filters(inner.row_reordered(r as usize)))
            .count()
    });

    // Exclusive scan over per-row output value counts (rows * emit arity).
    let value_counts: Vec<usize> = counts.iter().map(|c| c * emit_arity).collect();
    let offsets = exclusive_scan_offsets(device, &value_counts);
    let total_values = *offsets.last().unwrap_or(&0);

    // Pass 2: materialize.
    metrics.add_kernel_launch();
    metrics.add_bytes_read((outer.len() * 4) as u64);
    metrics.add_bytes_written((total_values * 4) as u64);
    metrics.add_ops(total_values as u64);
    let mut output = vec![0u32; total_values];
    device
        .executor()
        .scatter_by_offsets(&mut output, &offsets, |i, out_slice| {
            let outer_row = &outer[i * outer_arity..(i + 1) * outer_arity];
            let mut cursor = 0usize;
            for inner_row_id in matches_of(outer_row) {
                let inner_row = inner.row_reordered(inner_row_id as usize);
                if !passes_inner_filters(inner_row) {
                    continue;
                }
                for src in emit {
                    out_slice[cursor] = match *src {
                        EmitSource::Outer(col) => outer_row[col],
                        EmitSource::Inner(col) => inner_row[orig_to_reordered[col]],
                    };
                    cursor += 1;
                }
            }
            debug_assert_eq!(cursor, out_slice.len());
        });
    output
}

/// [`hash_join`] with the outer relation carried as a [`TupleBatch`]; the
/// batch supplies the outer arity the flat form threads by hand.
pub fn hash_join_batch(
    device: &Device,
    outer: &TupleBatch,
    outer_key_cols: &[usize],
    inner: &Hisa,
    inner_const_filters: &[(usize, u32)],
    inner_eq_filters: &[(usize, usize)],
    emit: &[EmitSource],
) -> TupleBatch {
    batch_from_flat(
        emit.len(),
        hash_join(
            device,
            outer.as_flat(),
            outer.arity(),
            outer_key_cols,
            inner,
            inner_const_filters,
            inner_eq_filters,
            emit,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;
    use gpulog_hisa::IndexSpec;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    fn rows(buffer: &[u32], arity: usize) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = buffer.chunks_exact(arity).map(|c| c.to_vec()).collect();
        out.sort();
        out
    }

    #[test]
    fn figure4_style_join_on_two_columns() {
        // Foobar(c, d) :- Foo(a, b, c), Bar(a, b, d): join on (a, b).
        let d = device();
        let foo = [2u32, 3, 5, 1, 2, 1, 5, 2, 4, 2, 3, 2, 1, 2, 5, 5, 2, 6];
        let bar_tuples = [1u32, 2, 2, 1, 2, 5, 2, 3, 1, 5, 2, 0, 5, 2, 9];
        let bar = Hisa::build(&d, IndexSpec::new(3, vec![0, 1]), &bar_tuples).unwrap();
        let emit = [EmitSource::Outer(2), EmitSource::Inner(2)];
        let out = hash_join(&d, &foo, 3, &[0, 1], &bar, &[], &[], &emit);
        let got = rows(&out, 2);
        // Foo(2,3,5) x Bar(2,3,1) -> (5,1); Foo(2,3,2) x Bar(2,3,1) -> (2,1)
        // Foo(1,2,1) x Bar(1,2,2) -> (1,2); x Bar(1,2,5) -> (1,5)
        // Foo(1,2,5) x Bar(1,2,2) -> (5,2); x Bar(1,2,5) -> (5,5)
        // Foo(5,2,4) x Bar(5,2,0) -> (4,0); x Bar(5,2,9) -> (4,9)
        // Foo(5,2,6) x Bar(5,2,0) -> (6,0); x Bar(5,2,9) -> (6,9)
        let mut expected = vec![
            vec![5, 1],
            vec![2, 1],
            vec![1, 2],
            vec![1, 5],
            vec![5, 2],
            vec![5, 5],
            vec![4, 0],
            vec![4, 9],
            vec![6, 0],
            vec![6, 9],
        ];
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn join_matches_nested_loop_reference_on_random_data() {
        let d = device();
        let n_outer = 300usize;
        let n_inner = 200usize;
        let outer: Vec<u32> = (0..n_outer * 2)
            .map(|i| (i as u32).wrapping_mul(2654435761) % 17)
            .collect();
        let inner_tuples: Vec<u32> = (0..n_inner * 2)
            .map(|i| (i as u32).wrapping_mul(40503) % 17)
            .collect();
        let inner = Hisa::build(&d, IndexSpec::new(2, vec![0]), &inner_tuples).unwrap();
        let emit = [
            EmitSource::Outer(0),
            EmitSource::Outer(1),
            EmitSource::Inner(1),
        ];
        let got = rows(&hash_join(&d, &outer, 2, &[1], &inner, &[], &[], &emit), 3);
        // Reference: dedup inner first (HISA deduplicates), then nested loop.
        let mut inner_set: Vec<Vec<u32>> =
            inner_tuples.chunks_exact(2).map(|c| c.to_vec()).collect();
        inner_set.sort();
        inner_set.dedup();
        let mut expected = Vec::new();
        for o in outer.chunks_exact(2) {
            for i in &inner_set {
                if o[1] == i[0] {
                    expected.push(vec![o[0], o[1], i[1]]);
                }
            }
        }
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn inner_filters_restrict_matches() {
        let d = device();
        let outer = [1u32, 1, 2, 2];
        let inner_tuples = [1u32, 5, 5, 1, 7, 7, 2, 9, 9, 2, 3, 9];
        let inner = Hisa::build(&d, IndexSpec::new(3, vec![0]), &inner_tuples).unwrap();
        let emit = [
            EmitSource::Outer(0),
            EmitSource::Inner(1),
            EmitSource::Inner(2),
        ];
        // Require inner col1 == inner col2 (repeated variable).
        let eq = [(1usize, 2usize)];
        let got = rows(&hash_join(&d, &outer, 2, &[0], &inner, &[], &eq, &emit), 3);
        assert_eq!(got, vec![vec![1, 5, 5], vec![1, 7, 7], vec![2, 9, 9]]);
        // Require inner col2 == 9 (constant argument).
        let cf = [(2usize, 9u32)];
        let got = rows(&hash_join(&d, &outer, 2, &[0], &inner, &cf, &[], &emit), 3);
        assert_eq!(got, vec![vec![2, 3, 9], vec![2, 9, 9]]);
    }

    #[test]
    fn empty_key_degenerates_to_cross_product() {
        let d = device();
        let outer = [1u32, 2];
        let inner_tuples = [10u32, 20, 30];
        let inner = Hisa::build(&d, IndexSpec::full_key(1), &inner_tuples).unwrap();
        let emit = [EmitSource::Outer(0), EmitSource::Inner(0)];
        let got = rows(&hash_join(&d, &outer, 1, &[], &inner, &[], &[], &emit), 2);
        assert_eq!(
            got,
            vec![
                vec![1, 10],
                vec![1, 20],
                vec![1, 30],
                vec![2, 10],
                vec![2, 20],
                vec![2, 30]
            ]
        );
    }

    #[test]
    fn join_with_empty_outer_or_inner_is_empty() {
        let d = device();
        let inner = Hisa::build(&d, IndexSpec::new(2, vec![0]), &[1, 2]).unwrap();
        let emit = [EmitSource::Outer(0), EmitSource::Inner(1)];
        assert!(hash_join(&d, &[], 2, &[0], &inner, &[], &[], &emit).is_empty());
        let empty_inner = Hisa::build(&d, IndexSpec::new(2, vec![0]), &[]).unwrap();
        assert!(hash_join(&d, &[5, 5], 2, &[0], &empty_inner, &[], &[], &emit).is_empty());
    }

    #[test]
    fn join_keyed_on_non_leading_inner_column() {
        let d = device();
        // Inner Edge(from, to) indexed on `to`; join outer value against `to`
        // and emit `from`.
        let outer = [7u32];
        let inner_tuples = [1u32, 7, 2, 7, 3, 8];
        let inner = Hisa::build(&d, IndexSpec::new(2, vec![1]), &inner_tuples).unwrap();
        let emit = [EmitSource::Inner(0), EmitSource::Outer(0)];
        let got = rows(&hash_join(&d, &outer, 1, &[0], &inner, &[], &[], &emit), 2);
        assert_eq!(got, vec![vec![1, 7], vec![2, 7]]);
    }
}
