//! Relational-algebra kernels over HISA relations.
//!
//! These are the compute kernels of the paper's Figure 3 pipeline: hash
//! joins driven by HISA range queries ([`join`]), projections and filters
//! ([`project`]), deduplication and set difference for delta population
//! ([`mod@difference`]), the fused n-way join used as the ablation
//! baseline for temporarily-materialized joins ([`nway`]), plus the
//! stratified-evaluation kernels: anti-join against a completed lower
//! stratum ([`antijoin`]) and grouped head-aggregate reduction
//! ([`mod@reduce`]).
//!
//! Rule evaluation does not call these kernels directly: the planner lowers
//! each rule into an [`op::RaPipeline`] of [`op::RaOp`]s, and a
//! [`crate::backend::Backend`] executes the pipeline, moving
//! [`gpulog_hisa::TupleBatch`] intermediates between operators. The
//! flat-slice kernel forms remain public as the reference implementations
//! the property tests pin the operator pipeline against.

pub mod antijoin;
pub mod difference;
pub mod join;
pub mod nway;
pub mod op;
pub mod project;
pub mod reduce;

pub use antijoin::{anti_join_batch, anti_join_rows};
pub use difference::{deduplicate_rows, difference, difference_batch};
pub use join::{hash_join, hash_join_batch};
pub use nway::{fused_rule_join, fused_rule_join_batch, NwayStrategy};
pub use op::{RaOp, RaPipeline};
pub use project::{filter_batch, filter_rows, project_batch, project_rows, scan_select_batch};
pub use reduce::{group_reduce_batch, group_reduce_rows};
