//! Relational-algebra kernels over HISA relations.
//!
//! These are the compute kernels of the paper's Figure 3 pipeline: hash
//! joins driven by HISA range queries ([`join`]), projections and filters
//! ([`project`]), deduplication and set difference for delta population
//! ([`mod@difference`]), and the fused n-way join used as the ablation
//! baseline for temporarily-materialized joins ([`nway`]).

pub mod difference;
pub mod join;
pub mod nway;
pub mod project;

pub use difference::{deduplicate_rows, difference};
pub use join::hash_join;
pub use nway::{fused_rule_join, NwayStrategy};
pub use project::{filter_rows, project_rows};
