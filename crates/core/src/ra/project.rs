//! Projection and selection over dense intermediate buffers.
//!
//! Each kernel exists in two forms: the legacy flat-slice form
//! (`&[u32]` + arity) retained as the reference implementation, and a
//! [`TupleBatch`]-typed form used by the operator pipeline, which keeps the
//! arity attached to the data instead of threading it alongside.

use crate::planner::{ColumnSource, FilterStep};
use gpulog_device::thrust::scan::exclusive_scan_offsets;
use gpulog_device::Device;
use gpulog_hisa::TupleBatch;

/// Wraps a kernel's flat output as a [`TupleBatch`]. A zero-column output
/// is represented as an empty one-column batch so it stays constructible;
/// lowered pipelines never produce one (the planner keeps a dummy column
/// when an atom binds no variables, precisely so row multiplicity is not
/// lost — see [`crate::planner::lower_rule_plan`]).
pub(crate) fn batch_from_flat(arity: usize, flat: Vec<u32>) -> TupleBatch {
    if arity == 0 {
        debug_assert!(flat.is_empty(), "zero-arity batch with values");
        TupleBatch::empty(1)
    } else {
        TupleBatch::new(arity, flat)
    }
}

/// Resolves a [`ColumnSource`] against one row.
fn resolve(src: ColumnSource, row: &[u32]) -> u32 {
    match src {
        ColumnSource::Col(c) => row[c],
        ColumnSource::Const(v) => v,
    }
}

/// Projects each row of a row-major buffer onto `out_cols`.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity` or a projected column
/// is out of range.
pub fn project_rows(
    device: &Device,
    data: &[u32],
    arity: usize,
    out_cols: &[ColumnSource],
) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(data.len() % arity, 0, "ragged row buffer");
    let rows = data.len() / arity;
    let out_arity = out_cols.len();
    device.metrics().add_kernel_launch();
    device.metrics().add_bytes_read((data.len() * 4) as u64);
    device
        .metrics()
        .add_bytes_written((rows * out_arity * 4) as u64);
    let mut out = vec![0u32; rows * out_arity];
    device.executor().fill(&mut out, |slot| {
        let row = slot / out_arity;
        let col = slot % out_arity;
        resolve(out_cols[col], &data[row * arity..(row + 1) * arity])
    });
    out
}

/// Keeps the rows of a row-major buffer satisfying every filter.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity`.
pub fn filter_rows(
    device: &Device,
    data: &[u32],
    arity: usize,
    filters: &[FilterStep],
) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(data.len() % arity, 0, "ragged row buffer");
    if filters.is_empty() {
        return data.to_vec();
    }
    let rows = data.len() / arity;
    device.metrics().add_kernel_launch();
    device.metrics().add_bytes_read((data.len() * 4) as u64);
    let keep: Vec<usize> = device.executor().map_collect(rows, |r| {
        let row = &data[r * arity..(r + 1) * arity];
        usize::from(
            filters
                .iter()
                .all(|f| f.op.eval(resolve(f.left, row), resolve(f.right, row))),
        )
    });
    let value_counts: Vec<usize> = keep.iter().map(|&k| k * arity).collect();
    let offsets = exclusive_scan_offsets(device, &value_counts);
    let total = *offsets.last().unwrap_or(&0);
    device.metrics().add_bytes_written((total * 4) as u64);
    let mut out = vec![0u32; total];
    device
        .executor()
        .scatter_by_offsets(&mut out, &offsets, |r, slots| {
            if !slots.is_empty() {
                slots.copy_from_slice(&data[r * arity..(r + 1) * arity]);
            }
        });
    out
}

/// Applies row-level constant and column-equality selections, then keeps the
/// requested columns — the scan step at the head of every rule plan.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity`.
pub fn scan_select(
    device: &Device,
    data: &[u32],
    arity: usize,
    const_filters: &[(usize, u32)],
    eq_filters: &[(usize, usize)],
    keep_cols: &[usize],
) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(data.len() % arity, 0, "ragged row buffer");
    let rows = data.len() / arity;
    let out_arity = keep_cols.len();
    device.metrics().add_kernel_launch();
    device.metrics().add_bytes_read((data.len() * 4) as u64);
    let keep: Vec<usize> = device.executor().map_collect(rows, |r| {
        let row = &data[r * arity..(r + 1) * arity];
        let ok = const_filters.iter().all(|&(c, v)| row[c] == v)
            && eq_filters.iter().all(|&(a, b)| row[a] == row[b]);
        usize::from(ok)
    });
    let value_counts: Vec<usize> = keep.iter().map(|&k| k * out_arity).collect();
    let offsets = exclusive_scan_offsets(device, &value_counts);
    let total = *offsets.last().unwrap_or(&0);
    device.metrics().add_bytes_written((total * 4) as u64);
    let mut out = vec![0u32; total];
    device
        .executor()
        .scatter_by_offsets(&mut out, &offsets, |r, slots| {
            if slots.is_empty() {
                return;
            }
            let row = &data[r * arity..(r + 1) * arity];
            for (slot, &col) in slots.iter_mut().zip(keep_cols) {
                *slot = row[col];
            }
        });
    out
}

/// [`project_rows`] over a [`TupleBatch`].
pub fn project_batch(device: &Device, batch: &TupleBatch, out_cols: &[ColumnSource]) -> TupleBatch {
    batch_from_flat(
        out_cols.len(),
        project_rows(device, batch.as_flat(), batch.arity(), out_cols),
    )
}

/// [`filter_rows`] over a [`TupleBatch`].
pub fn filter_batch(device: &Device, batch: &TupleBatch, filters: &[FilterStep]) -> TupleBatch {
    TupleBatch::new(
        batch.arity(),
        filter_rows(device, batch.as_flat(), batch.arity(), filters),
    )
}

/// [`scan_select`] over a [`TupleBatch`].
pub fn scan_select_batch(
    device: &Device,
    batch: &TupleBatch,
    const_filters: &[(usize, u32)],
    eq_filters: &[(usize, usize)],
    keep_cols: &[usize],
) -> TupleBatch {
    batch_from_flat(
        keep_cols.len(),
        scan_select(
            device,
            batch.as_flat(),
            batch.arity(),
            const_filters,
            eq_filters,
            keep_cols,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn project_reorders_and_injects_constants() {
        let d = device();
        let data = [1u32, 2, 3, 4, 5, 6];
        let out = project_rows(
            &d,
            &data,
            3,
            &[
                ColumnSource::Col(2),
                ColumnSource::Const(9),
                ColumnSource::Col(0),
            ],
        );
        assert_eq!(out, vec![3, 9, 1, 6, 9, 4]);
    }

    #[test]
    fn filter_keeps_only_matching_rows() {
        let d = device();
        let data = [1u32, 1, 2, 3, 4, 4, 5, 6];
        let ne = FilterStep {
            left: ColumnSource::Col(0),
            op: CmpOp::Ne,
            right: ColumnSource::Col(1),
        };
        assert_eq!(filter_rows(&d, &data, 2, &[ne]), vec![2, 3, 5, 6]);
        let lt = FilterStep {
            left: ColumnSource::Col(0),
            op: CmpOp::Lt,
            right: ColumnSource::Const(3),
        };
        assert_eq!(filter_rows(&d, &data, 2, &[ne, lt]), vec![2, 3]);
    }

    #[test]
    fn empty_filter_list_is_identity() {
        let d = device();
        let data = [7u32, 8];
        assert_eq!(filter_rows(&d, &data, 2, &[]), data.to_vec());
    }

    #[test]
    fn scan_select_applies_const_and_eq_filters_then_projects() {
        let d = device();
        // rows: (1,1,5) (1,2,5) (2,2,5) (2,2,9)
        let data = [1u32, 1, 5, 1, 2, 5, 2, 2, 5, 2, 2, 9];
        let out = scan_select(&d, &data, 3, &[(2, 5)], &[(0, 1)], &[0, 2]);
        assert_eq!(out, vec![1, 5, 2, 5]);
    }

    #[test]
    fn scan_select_with_no_filters_keeps_all_rows() {
        let d = device();
        let data = [1u32, 2, 3, 4];
        assert_eq!(scan_select(&d, &data, 2, &[], &[], &[1]), vec![2, 4]);
    }
}
