//! Deduplication and set difference — the "Populating Delta" phase.
//!
//! GPUlog keeps delta population as a distinct phase (paper Section 5.1):
//! the freshly derived `new` tuples are deduplicated and then the tuples
//! already present in `full` are removed, yielding the next iteration's
//! delta. Keeping this separate from the merge avoids rescanning the
//! (large) full relation, which is the fused strategy GPUJoin uses.

use gpulog_device::thrust::scan::exclusive_scan_offsets;
use gpulog_device::thrust::sort::lexicographic_sort_indices;
use gpulog_device::thrust::transform::adjacent_unique_flags;
use gpulog_device::Device;
use gpulog_hisa::{Hisa, TupleBatch};

/// Sorts and deduplicates a row-major tuple buffer, returning the distinct
/// rows in lexicographic order.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity`.
pub fn deduplicate_rows(device: &Device, data: &[u32], arity: usize) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(data.len() % arity, 0, "ragged row buffer");
    if data.is_empty() {
        return Vec::new();
    }
    let order: Vec<usize> = (0..arity).collect();
    let sorted = lexicographic_sort_indices(device, data, arity, &order);
    let flags = adjacent_unique_flags(device, data, arity, &sorted);
    let value_counts: Vec<usize> = flags.iter().map(|&f| usize::from(f) * arity).collect();
    let offsets = exclusive_scan_offsets(device, &value_counts);
    let total = *offsets.last().unwrap_or(&0);
    let mut out = vec![0u32; total];
    device
        .executor()
        .scatter_by_offsets(&mut out, &offsets, |p, slots| {
            if slots.is_empty() {
                return;
            }
            let row = sorted[p] as usize;
            slots.copy_from_slice(&data[row * arity..(row + 1) * arity]);
        });
    device.metrics().add_bytes_written((total * 4) as u64);
    out
}

/// Computes `deduplicate(data) \ existing`: the distinct rows of `data` that
/// are not already present in the `existing` relation. This is exactly the
/// delta-population step of semi-naïve evaluation.
///
/// `existing` may be indexed on any key; membership is tested with a range
/// query followed by a full-tuple comparison.
///
/// # Panics
///
/// Panics if arities disagree.
pub fn difference(device: &Device, data: &[u32], arity: usize, existing: &Hisa) -> Vec<u32> {
    assert_eq!(existing.arity(), arity, "arity mismatch in set difference");
    let candidates = deduplicate_rows(device, data, arity);
    if candidates.is_empty() {
        return candidates;
    }
    let rows = candidates.len() / arity;
    device.metrics().add_kernel_launch();
    device
        .metrics()
        .add_bytes_read((candidates.len() * 4) as u64);
    let keep: Vec<usize> = device.executor().map_collect(rows, |r| {
        let row = &candidates[r * arity..(r + 1) * arity];
        usize::from(!existing.contains(row))
    });
    let value_counts: Vec<usize> = keep.iter().map(|&k| k * arity).collect();
    let offsets = exclusive_scan_offsets(device, &value_counts);
    let total = *offsets.last().unwrap_or(&0);
    let mut out = vec![0u32; total];
    device
        .executor()
        .scatter_by_offsets(&mut out, &offsets, |r, slots| {
            if !slots.is_empty() {
                slots.copy_from_slice(&candidates[r * arity..(r + 1) * arity]);
            }
        });
    out
}

/// [`difference`] over a [`TupleBatch`]. The result is sorted and
/// duplicate-free by construction, so the returned batch carries the
/// sorted-unique flag — which is what lets
/// [`crate::relation::RelationStorage::set_delta_batch`] build the delta
/// HISA without re-sorting.
pub fn difference_batch(device: &Device, batch: &TupleBatch, existing: &Hisa) -> TupleBatch {
    TupleBatch::new(
        batch.arity(),
        difference(device, batch.as_flat(), batch.arity(), existing),
    )
    .assert_sorted_unique()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;
    use gpulog_hisa::IndexSpec;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn deduplicate_removes_duplicates_and_sorts() {
        let d = device();
        let data = [3u32, 4, 1, 2, 3, 4, 1, 2, 1, 2];
        assert_eq!(deduplicate_rows(&d, &data, 2), vec![1, 2, 3, 4]);
    }

    #[test]
    fn deduplicate_of_empty_is_empty() {
        assert!(deduplicate_rows(&device(), &[], 2).is_empty());
    }

    #[test]
    fn difference_removes_existing_tuples() {
        let d = device();
        let full = Hisa::build(&d, IndexSpec::new(2, vec![0]), &[1, 2, 3, 4]).unwrap();
        let new = [1u32, 2, 5, 6, 3, 4, 5, 6, 7, 8];
        let delta = difference(&d, &new, 2, &full);
        assert_eq!(delta, vec![5, 6, 7, 8]);
    }

    #[test]
    fn difference_with_nothing_new_is_empty() {
        let d = device();
        let full = Hisa::build(&d, IndexSpec::new(2, vec![0]), &[1, 2]).unwrap();
        assert!(difference(&d, &[1, 2, 1, 2], 2, &full).is_empty());
    }

    #[test]
    fn difference_against_empty_relation_keeps_everything_deduplicated() {
        let d = device();
        let full = Hisa::build(&d, IndexSpec::new(2, vec![0]), &[]).unwrap();
        assert_eq!(
            difference(&d, &[9, 9, 9, 9, 1, 1], 2, &full),
            vec![1, 1, 9, 9]
        );
    }
}
