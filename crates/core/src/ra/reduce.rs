//! Grouped reduction — the kernel behind head aggregates.
//!
//! An aggregate rule's pipeline produces a head-shaped batch in which one
//! column carries the aggregated variable and the remaining columns form
//! the group key. The reduce kernel deduplicates that batch (aggregates
//! are over *distinct* bindings, matching set semantics everywhere else in
//! the engine), sorts it group-key-major so each group is a contiguous
//! segment, and collapses every segment to a single output row with the
//! reduced value in the aggregate column.
//!
//! The kernel keeps the sort → flag → scan → scatter shape of the other
//! device kernels so the simulated metrics stay comparable.

use crate::ast::AggregateOp;
use crate::ra::difference::deduplicate_rows;
use gpulog_device::thrust::scan::exclusive_scan_offsets;
use gpulog_device::thrust::sort::lexicographic_sort_indices;
use gpulog_device::Device;
use gpulog_hisa::TupleBatch;

/// Applies `op` to every distinct value of `agg_column` within each group,
/// where the group key is every other column. Returns one row per group
/// (group columns in place, reduced value at `agg_column`), ordered by
/// group key. Sums and counts saturate at `u32::MAX` rather than wrap.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity` or `agg_column` is
/// out of range.
pub fn group_reduce_rows(
    device: &Device,
    data: &[u32],
    arity: usize,
    agg_column: usize,
    op: AggregateOp,
) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert!(agg_column < arity, "aggregate column out of range");
    assert_eq!(data.len() % arity, 0, "ragged row buffer");
    if data.is_empty() {
        return Vec::new();
    }
    let distinct = deduplicate_rows(device, data, arity);
    let rows = distinct.len() / arity;
    let group_cols: Vec<usize> = (0..arity).filter(|&c| c != agg_column).collect();
    // Group-key-major, value-minor order: every group is one contiguous
    // segment of the sorted permutation.
    let mut order = group_cols.clone();
    order.push(agg_column);
    let sorted = lexicographic_sort_indices(device, &distinct, arity, &order);
    device.metrics().add_kernel_launch();
    device.metrics().add_bytes_read((distinct.len() * 4) as u64);
    let heads: Vec<usize> = device.executor().map_collect(rows, |i| {
        if i == 0 {
            return 1;
        }
        let prev = &distinct[sorted[i - 1] as usize * arity..][..arity];
        let cur = &distinct[sorted[i] as usize * arity..][..arity];
        usize::from(group_cols.iter().any(|&c| prev[c] != cur[c]))
    });
    let value_counts: Vec<usize> = heads.iter().map(|&h| h * arity).collect();
    let offsets = exclusive_scan_offsets(device, &value_counts);
    let total = *offsets.last().unwrap_or(&0);
    device.metrics().add_bytes_written((total * 4) as u64);
    let mut out = vec![0u32; total];
    device
        .executor()
        .scatter_by_offsets(&mut out, &offsets, |i, slots| {
            if slots.is_empty() {
                return;
            }
            // `i` heads a segment; walk it, reducing the aggregate column.
            // Segments are distinct (group, value) pairs, so Count is the
            // segment length and Sum never double-counts a value.
            let mut acc: u64 = match op {
                AggregateOp::Count => 0,
                AggregateOp::Sum => 0,
                AggregateOp::Min | AggregateOp::Max => {
                    u64::from(distinct[sorted[i] as usize * arity + agg_column])
                }
            };
            let mut j = i;
            while j < rows && (j == i || heads[j] == 0) {
                let v = u64::from(distinct[sorted[j] as usize * arity + agg_column]);
                match op {
                    AggregateOp::Count => acc += 1,
                    AggregateOp::Sum => acc = acc.saturating_add(v),
                    AggregateOp::Min => acc = acc.min(v),
                    AggregateOp::Max => acc = acc.max(v),
                }
                j += 1;
            }
            let row = &distinct[sorted[i] as usize * arity..][..arity];
            slots.copy_from_slice(row);
            slots[agg_column] = u32::try_from(acc).unwrap_or(u32::MAX);
        });
    out
}

/// [`group_reduce_rows`] over a [`TupleBatch`].
pub fn group_reduce_batch(
    device: &Device,
    batch: &TupleBatch,
    agg_column: usize,
    op: AggregateOp,
) -> TupleBatch {
    TupleBatch::new(
        batch.arity(),
        group_reduce_rows(device, batch.as_flat(), batch.arity(), agg_column, op),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    /// (x, y, d) triples: group (x, y), aggregate d at column 2.
    const PATHS: [u32; 15] = [
        1, 2, 5, //
        1, 2, 3, //
        1, 2, 5, // duplicate binding: must not affect count/sum
        1, 3, 7, //
        2, 2, 1,
    ];

    #[test]
    fn min_keeps_the_smallest_value_per_group() {
        let out = group_reduce_rows(&device(), &PATHS, 3, 2, AggregateOp::Min);
        assert_eq!(out, vec![1, 2, 3, 1, 3, 7, 2, 2, 1]);
    }

    #[test]
    fn max_keeps_the_largest_value_per_group() {
        let out = group_reduce_rows(&device(), &PATHS, 3, 2, AggregateOp::Max);
        assert_eq!(out, vec![1, 2, 5, 1, 3, 7, 2, 2, 1]);
    }

    #[test]
    fn count_counts_distinct_bindings() {
        let out = group_reduce_rows(&device(), &PATHS, 3, 2, AggregateOp::Count);
        assert_eq!(out, vec![1, 2, 2, 1, 3, 1, 2, 2, 1]);
    }

    #[test]
    fn sum_adds_distinct_values_and_saturates() {
        let out = group_reduce_rows(&device(), &PATHS, 3, 2, AggregateOp::Sum);
        assert_eq!(out, vec![1, 2, 8, 1, 3, 7, 2, 2, 1]);
        let big = [7u32, u32::MAX, 7, u32::MAX - 1];
        let out = group_reduce_rows(&device(), &big, 2, 1, AggregateOp::Sum);
        assert_eq!(out, vec![7, u32::MAX]);
    }

    #[test]
    fn aggregate_column_need_not_be_last() {
        // (d, x): group by x at column 1, aggregate column 0.
        let data = [9u32, 4, 2, 4, 5, 6];
        let out = group_reduce_rows(&device(), &data, 2, 0, AggregateOp::Min);
        assert_eq!(out, vec![2, 4, 5, 6]);
    }

    #[test]
    fn empty_input_reduces_to_nothing() {
        assert!(group_reduce_rows(&device(), &[], 2, 1, AggregateOp::Count).is_empty());
    }

    #[test]
    fn batch_form_preserves_arity() {
        let batch = TupleBatch::new(3, PATHS.to_vec());
        let out = group_reduce_batch(&device(), &batch, 2, AggregateOp::Min);
        assert_eq!(out.arity(), 3);
        assert_eq!(out.as_flat(), &[1, 2, 3, 1, 3, 7, 2, 2, 1]);
    }
}
