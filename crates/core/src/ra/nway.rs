//! N-way join strategies (paper Section 5.2).
//!
//! GPUlog's default strategy is the **temporarily-materialized** join: an
//! n-way join is split into a chain of binary joins, each materialized into
//! a temporary buffer, so every kernel launch redistributes work evenly over
//! the device threads. The alternative — and the ablation baseline — is the
//! **fused nested-loop** join, where one kernel walks the entire join chain
//! per outer tuple; threads whose tuple fans out heavily keep working while
//! their warp-mates idle, which is precisely the imbalance Figure 5 of the
//! paper illustrates. Both strategies are implemented here so the ablation
//! bench (`nway_ablation`) can compare them on identical plans.

use crate::planner::{ColumnSource, EmitSource, FilterStep, JoinStep};
use crate::ra::project::batch_from_flat;
use gpulog_device::thrust::scan::exclusive_scan_offsets;
use gpulog_device::Device;
use gpulog_hisa::{Hisa, TupleBatch};

/// Which n-way join strategy the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NwayStrategy {
    /// Split into binary joins, materializing each intermediate (default).
    #[default]
    TemporarilyMaterialized,
    /// Evaluate the whole chain in one fused nested-loop kernel.
    FusedNestedLoop,
}

/// One fused join level: the plan step plus the HISA it probes.
pub struct FusedLevel<'a> {
    /// The join step (key columns, filters, emit list).
    pub step: &'a JoinStep,
    /// The indexed inner relation for this level.
    pub inner: &'a Hisa,
    /// Filters to apply to the intermediate produced by this level.
    pub filters: &'a [FilterStep],
}

fn resolve(src: ColumnSource, row: &[u32]) -> u32 {
    match src {
        ColumnSource::Col(c) => row[c],
        ColumnSource::Const(v) => v,
    }
}

fn passes(filters: &[FilterStep], row: &[u32]) -> bool {
    filters
        .iter()
        .all(|f| f.op.eval(resolve(f.left, row), resolve(f.right, row)))
}

fn orig_to_reordered(inner: &Hisa) -> Vec<usize> {
    let mut map = vec![0usize; inner.arity()];
    for (pos, &orig) in inner.spec().permutation().iter().enumerate() {
        map[orig] = pos;
    }
    map
}

/// Recursively walks the join chain for one current intermediate row.
/// `sink` is called once per surviving leaf with the final intermediate row.
fn walk_levels(
    levels: &[FusedLevel<'_>],
    col_maps: &[Vec<usize>],
    depth: usize,
    row: &[u32],
    sink: &mut dyn FnMut(&[u32]),
) {
    if depth == levels.len() {
        sink(row);
        return;
    }
    let level = &levels[depth];
    let map = &col_maps[depth];
    let step = level.step;
    let candidates: Vec<u32> = if step.outer_key_cols.is_empty() {
        (0..level.inner.len() as u32).collect()
    } else {
        let key: Vec<u32> = step.outer_key_cols.iter().map(|&c| row[c]).collect();
        level.inner.range_query(&key).collect()
    };
    for inner_row_id in candidates {
        let inner_row = level.inner.row_reordered(inner_row_id as usize);
        let const_ok = step
            .inner_const_filters
            .iter()
            .all(|&(c, v)| inner_row[map[c]] == v);
        let eq_ok = step
            .inner_eq_filters
            .iter()
            .all(|&(a, b)| inner_row[map[a]] == inner_row[map[b]]);
        if !const_ok || !eq_ok {
            continue;
        }
        let next: Vec<u32> = step
            .emit
            .iter()
            .map(|src| match *src {
                EmitSource::Outer(c) => row[c],
                EmitSource::Inner(c) => inner_row[map[c]],
            })
            .collect();
        if !passes(level.filters, &next) {
            continue;
        }
        walk_levels(levels, col_maps, depth + 1, &next, sink);
    }
}

/// Evaluates an entire join chain in one fused pass (two kernel launches:
/// count and write), producing the head tuples directly.
///
/// The `outer` buffer is the already-scanned (and filtered) first body atom;
/// `levels` are the remaining body atoms in plan order; `head_proj` builds
/// the head tuple from the final intermediate.
///
/// # Panics
///
/// Panics if `outer.len()` is not a multiple of `outer_arity`.
pub fn fused_rule_join(
    device: &Device,
    outer: &[u32],
    outer_arity: usize,
    levels: &[FusedLevel<'_>],
    head_proj: &[ColumnSource],
) -> Vec<u32> {
    assert!(outer_arity > 0, "outer arity must be positive");
    assert_eq!(outer.len() % outer_arity, 0, "ragged outer buffer");
    let outer_rows = outer.len() / outer_arity;
    let head_arity = head_proj.len();
    let col_maps: Vec<Vec<usize>> = levels.iter().map(|l| orig_to_reordered(l.inner)).collect();

    // Pass 1: count leaves per outer tuple. The per-thread work here is the
    // imbalanced quantity the materialized strategy smooths out.
    let metrics = device.metrics();
    metrics.add_kernel_launch();
    metrics.add_bytes_read((outer.len() * 4) as u64);
    let mut counts = vec![0usize; outer_rows];
    device.executor().fill(&mut counts, |i| {
        let row = &outer[i * outer_arity..(i + 1) * outer_arity];
        let mut n = 0usize;
        walk_levels(levels, &col_maps, 0, row, &mut |_| n += 1);
        n
    });

    let value_counts: Vec<usize> = counts.iter().map(|c| c * head_arity).collect();
    let offsets = exclusive_scan_offsets(device, &value_counts);
    let total = *offsets.last().unwrap_or(&0);

    // Pass 2: write head tuples.
    metrics.add_kernel_launch();
    metrics.add_bytes_written((total * 4) as u64);
    let mut output = vec![0u32; total];
    device
        .executor()
        .scatter_by_offsets(&mut output, &offsets, |i, slots| {
            let row = &outer[i * outer_arity..(i + 1) * outer_arity];
            let mut cursor = 0usize;
            walk_levels(levels, &col_maps, 0, row, &mut |final_row| {
                for &src in head_proj {
                    slots[cursor] = resolve(src, final_row);
                    cursor += 1;
                }
            });
            debug_assert_eq!(cursor, slots.len());
        });
    output
}

/// [`fused_rule_join`] with the outer relation carried as a [`TupleBatch`].
pub fn fused_rule_join_batch(
    device: &Device,
    outer: &TupleBatch,
    levels: &[FusedLevel<'_>],
    head_proj: &[ColumnSource],
) -> TupleBatch {
    batch_from_flat(
        head_proj.len(),
        fused_rule_join(device, outer.as_flat(), outer.arity(), levels, head_proj),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::planner::VersionSel;
    use gpulog_device::profile::DeviceProfile;
    use gpulog_hisa::IndexSpec;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    fn rows(buffer: &[u32], arity: usize) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = buffer.chunks_exact(arity).map(|c| c.to_vec()).collect();
        out.sort();
        out
    }

    /// Build the SG second-rule join chain by hand:
    /// SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y
    /// planned as scan(SG delta: columns a, b) ⋈ Edge(a, x) ⋈ Edge(b, y).
    #[test]
    fn fused_sg_chain_matches_manual_enumeration() {
        let d = device();
        // Graph from the paper's Figure 1.
        let edges: Vec<u32> = vec![0, 1, 0, 2, 1, 3, 1, 4, 2, 4, 2, 5, 3, 6, 4, 7, 4, 8, 5, 8];
        let edge_by_from = Hisa::build(&d, IndexSpec::new(2, vec![0]), &edges).unwrap();
        // SG delta after iteration 1 (from Figure 1).
        let sg_delta: Vec<u32> = vec![1, 2, 2, 1, 3, 4, 4, 3, 4, 5, 5, 4, 7, 8, 8, 7];
        // Level 1: join on a (outer col 0) with Edge(a, x): emits (a, b, x).
        let step1 = JoinStep {
            relation: 0,
            version: VersionSel::Full,
            outer_key_cols: vec![0],
            inner_key_cols: vec![0],
            inner_const_filters: vec![],
            inner_eq_filters: vec![],
            emit: vec![
                EmitSource::Outer(0),
                EmitSource::Outer(1),
                EmitSource::Inner(1),
            ],
        };
        // Level 2: join on b (outer col 1) with Edge(b, y): emits (a, b, x, y).
        let step2 = JoinStep {
            relation: 0,
            version: VersionSel::Full,
            outer_key_cols: vec![1],
            inner_key_cols: vec![0],
            inner_const_filters: vec![],
            inner_eq_filters: vec![],
            emit: vec![
                EmitSource::Outer(0),
                EmitSource::Outer(1),
                EmitSource::Outer(2),
                EmitSource::Inner(1),
            ],
        };
        let ne = FilterStep {
            left: ColumnSource::Col(2),
            op: CmpOp::Ne,
            right: ColumnSource::Col(3),
        };
        let filters2 = [ne];
        let levels = [
            FusedLevel {
                step: &step1,
                inner: &edge_by_from,
                filters: &[],
            },
            FusedLevel {
                step: &step2,
                inner: &edge_by_from,
                filters: &filters2,
            },
        ];
        let head = [ColumnSource::Col(2), ColumnSource::Col(3)];
        let got = rows(&fused_rule_join(&d, &sg_delta, 2, &levels, &head), 2);
        // Reference by brute force.
        let edge_pairs: Vec<(u32, u32)> = edges.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let mut expected = Vec::new();
        for ab in sg_delta.chunks_exact(2) {
            for &(a, x) in &edge_pairs {
                if a != ab[0] {
                    continue;
                }
                for &(b, y) in &edge_pairs {
                    if b == ab[1] && x != y {
                        expected.push(vec![x, y]);
                    }
                }
            }
        }
        expected.sort();
        expected.dedup();
        let mut got_dedup = got;
        got_dedup.dedup();
        assert_eq!(got_dedup, expected);
    }

    #[test]
    fn fused_join_with_empty_levels_projects_the_outer_directly() {
        let d = device();
        let outer = [4u32, 5, 6, 7];
        let head = [ColumnSource::Col(1), ColumnSource::Col(0)];
        let got = fused_rule_join(&d, &outer, 2, &[], &head);
        assert_eq!(got, vec![5, 4, 7, 6]);
    }

    #[test]
    fn default_strategy_is_temporarily_materialized() {
        assert_eq!(
            NwayStrategy::default(),
            NwayStrategy::TemporarilyMaterialized
        );
    }
}
