//! Anti-join against a completed relation — the kernel behind negated
//! body literals.
//!
//! Stratified evaluation guarantees the negated relation's `full` version
//! is final before any pipeline containing this kernel runs, so the
//! anti-join is a pure filter: build the probe tuple for each intermediate
//! row from `probe` sources (columns of the intermediate or constants from
//! the negated atom) and keep the row only if the probe tuple is *absent*.
//! Because safety validation requires every negated-atom variable to be
//! bound by a positive literal, the probe tuple is always fully ground and
//! membership is a single point lookup, not a range scan.

use crate::planner::ColumnSource;
use gpulog_device::thrust::scan::exclusive_scan_offsets;
use gpulog_device::Device;
use gpulog_hisa::{Hisa, TupleBatch};

/// Resolves a [`ColumnSource`] against one row.
fn resolve(src: ColumnSource, row: &[u32]) -> u32 {
    match src {
        ColumnSource::Col(c) => row[c],
        ColumnSource::Const(v) => v,
    }
}

/// Keeps the rows of a row-major buffer whose probe tuple is absent from
/// `existing`. Row order is preserved, so a sorted input stays sorted.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity`, the probe arity
/// does not match `existing`, or a probe column is out of range.
pub fn anti_join_rows(
    device: &Device,
    data: &[u32],
    arity: usize,
    probe: &[ColumnSource],
    existing: &Hisa,
) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(data.len() % arity, 0, "ragged row buffer");
    assert_eq!(
        existing.arity(),
        probe.len(),
        "probe arity mismatch in anti-join"
    );
    if data.is_empty() {
        return Vec::new();
    }
    let rows = data.len() / arity;
    device.metrics().add_kernel_launch();
    device.metrics().add_bytes_read((data.len() * 4) as u64);
    let keep: Vec<usize> = device.executor().map_collect(rows, |r| {
        let row = &data[r * arity..(r + 1) * arity];
        let tuple: Vec<u32> = probe.iter().map(|&src| resolve(src, row)).collect();
        usize::from(!existing.contains(&tuple))
    });
    let value_counts: Vec<usize> = keep.iter().map(|&k| k * arity).collect();
    let offsets = exclusive_scan_offsets(device, &value_counts);
    let total = *offsets.last().unwrap_or(&0);
    device.metrics().add_bytes_written((total * 4) as u64);
    let mut out = vec![0u32; total];
    device
        .executor()
        .scatter_by_offsets(&mut out, &offsets, |r, slots| {
            if !slots.is_empty() {
                slots.copy_from_slice(&data[r * arity..(r + 1) * arity]);
            }
        });
    out
}

/// [`anti_join_rows`] over a [`TupleBatch`].
pub fn anti_join_batch(
    device: &Device,
    batch: &TupleBatch,
    probe: &[ColumnSource],
    existing: &Hisa,
) -> TupleBatch {
    TupleBatch::new(
        batch.arity(),
        anti_join_rows(device, batch.as_flat(), batch.arity(), probe, existing),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;
    use gpulog_hisa::IndexSpec;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn drops_rows_whose_probe_hits() {
        let d = device();
        // Blocked = {3, 5}, unary.
        let blocked = Hisa::build(&d, IndexSpec::new(1, vec![0]), &[3, 5]).unwrap();
        // Intermediate (x, y): probe !Blocked(y) = Col(1).
        let data = [1u32, 2, 1, 3, 4, 5, 6, 7];
        let out = anti_join_rows(&d, &data, 2, &[ColumnSource::Col(1)], &blocked);
        assert_eq!(out, vec![1, 2, 6, 7]);
    }

    #[test]
    fn constant_probe_components_participate() {
        let d = device();
        // S = {(1, 9)}.
        let s = Hisa::build(&d, IndexSpec::new(2, vec![0]), &[1, 9]).unwrap();
        // Probe !S(x, 9): rows with x == 1 die, everything else survives.
        let data = [1u32, 2u32, 7];
        let probe = [ColumnSource::Col(0), ColumnSource::Const(9)];
        let out = anti_join_rows(&d, &data, 1, &probe, &s);
        assert_eq!(out, vec![2, 7]);
    }

    #[test]
    fn empty_negated_relation_keeps_everything() {
        let d = device();
        let empty = Hisa::build(&d, IndexSpec::new(1, vec![0]), &[]).unwrap();
        let data = [4u32, 4, 2, 2];
        assert_eq!(
            anti_join_rows(&d, &data, 2, &[ColumnSource::Col(0)], &empty),
            data.to_vec()
        );
    }

    #[test]
    fn batch_form_preserves_arity() {
        let d = device();
        let blocked = Hisa::build(&d, IndexSpec::new(1, vec![0]), &[2]).unwrap();
        let batch = TupleBatch::new(2, vec![1, 2, 3, 4]);
        let out = anti_join_batch(&d, &batch, &[ColumnSource::Col(0)], &blocked);
        assert_eq!(out.arity(), 2);
        assert_eq!(out.as_flat(), &[1, 2, 3, 4]);
        let out = anti_join_batch(&d, &batch, &[ColumnSource::Col(1)], &blocked);
        assert_eq!(out.as_flat(), &[3, 4]);
    }
}
