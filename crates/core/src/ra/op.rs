//! The relational-algebra operator IR.
//!
//! The planner compiles every rule into a [`crate::planner::RulePlan`];
//! lowering (see
//! [`crate::planner::lower_rule_plan`]) turns that plan into a flat
//! [`RaPipeline`] — a `Vec<RaOp>` — that a [`crate::backend::Backend`]
//! executes over [`gpulog_hisa::TupleBatch`] intermediates. Keeping the IR
//! explicit (rather than hard-coding the kernel sequence inside the engine)
//! is what lets alternative backends — sharded, async-pipelined,
//! multi-device — slot in behind the same interface.
//!
//! An op consumes the current intermediate batch and produces the next one:
//!
//! ```text
//! Scan ──batch──▶ HashJoin ──batch──▶ ... ──batch──▶ Project ──▶ head `new`
//!        └─────────────── or ───────────────┘
//! Scan ──batch──▶ FusedJoin ──────────────────────────────────▶ head `new`
//! ```
//!
//! [`RaOp::Diff`] is the odd one out: it implements the delta-population
//! phase (dedup `new`, subtract `full`, install the delta), consuming the
//! relation's `new` buffer rather than a pipeline intermediate.

use crate::ast::AggregateOp;
use crate::planner::{AntiJoinStep, ColumnSource, FilterStep, JoinStep, RelId, ScanStep};

/// One relational-algebra operator.
#[derive(Debug, Clone, PartialEq)]
pub enum RaOp {
    /// Scan a relation version, applying the atom's constant/equality
    /// filters and keeping one column per distinct variable; `filters` are
    /// the cross-atom constraints that become checkable right after the
    /// scan.
    Scan {
        /// The scan parameters (relation, version, filters, kept columns).
        step: ScanStep,
        /// Constraint filters applied to the scan's output.
        filters: Vec<FilterStep>,
    },
    /// One binary hash join against an indexed relation version, applying
    /// `filters` to the joined intermediate.
    HashJoin {
        /// The join parameters (inner relation, key columns, emit list).
        step: JoinStep,
        /// Constraint filters applied to the join's output.
        filters: Vec<FilterStep>,
    },
    /// The whole join chain evaluated in one fused nested-loop kernel,
    /// producing head tuples directly (the ablation strategy of paper
    /// Section 5.2).
    FusedJoin {
        /// The join levels in plan order, each with its post-level filters.
        levels: Vec<(JoinStep, Vec<FilterStep>)>,
        /// Projection from the final intermediate onto the head.
        head_proj: Vec<ColumnSource>,
    },
    /// Anti-join from a negated body literal: keep only intermediate rows
    /// whose probe tuple is *absent* from the negated relation. Always
    /// reads the negated relation's `full` version, which stratification
    /// guarantees is complete before this pipeline runs.
    AntiJoin {
        /// The anti-join parameters (negated relation, probe sources).
        step: AntiJoinStep,
    },
    /// Project the final intermediate onto the head relation's columns.
    Project {
        /// One source (column or constant) per head column.
        columns: Vec<ColumnSource>,
    },
    /// Grouped reduce over the head-shaped batch of an aggregate rule:
    /// deduplicate rows, group by every column except `agg_column`, and
    /// reduce `agg_column` with `op`.
    Reduce {
        /// The reduction to apply.
        op: AggregateOp,
        /// The aggregated column; all others form the group key.
        agg_column: usize,
    },
    /// Delta population for one relation: deduplicate its accumulated `new`
    /// buffer, subtract `full`, install the result as the next delta, and
    /// merge it into `full`.
    Diff {
        /// The relation whose `new` buffer is consumed.
        relation: RelId,
    },
}

/// An executable operator pipeline, the lowered form of one rule version
/// (or of one delta-population step).
#[derive(Debug, Clone, PartialEq)]
pub struct RaPipeline {
    /// Relation receiving this pipeline's output tuples.
    pub head: RelId,
    /// Operators in execution order.
    pub ops: Vec<RaOp>,
    /// Human-readable source form (for diagnostics and plan dumps).
    pub text: String,
}

impl RaPipeline {
    /// The delta-population pipeline for one relation: a single
    /// [`RaOp::Diff`].
    pub fn diff(relation: RelId) -> Self {
        RaPipeline {
            head: relation,
            ops: vec![RaOp::Diff { relation }],
            text: format!("diff(relation {relation})"),
        }
    }

    /// Whether this pipeline contains no operators (a trivially-empty rule).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_pipeline_targets_its_relation() {
        let p = RaPipeline::diff(3);
        assert_eq!(p.head, 3);
        assert_eq!(p.ops, vec![RaOp::Diff { relation: 3 }]);
        assert!(!p.is_empty());
        assert!(p.text.contains('3'));
    }
}
