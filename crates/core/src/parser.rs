//! A Soufflé-style text front end for Datalog programs.
//!
//! The accepted syntax is the subset of Soufflé that the paper's benchmark
//! programs (REACH, SG, CSPA) use:
//!
//! ```text
//! .decl Edge(x: number, y: number)
//! .input Edge
//! .decl Reach(x: number, y: number)
//! .output Reach
//! Reach(x, y) :- Edge(x, y).
//! Reach(x, y) :- Edge(x, z), Reach(z, y).
//! SG(x, y)    :- Edge(p, x), Edge(p, y), x != y.
//! ```
//!
//! Comments start with `//` and run to the end of the line. The column
//! types in declarations are parsed and ignored (all values are 32-bit
//! numbers). `_` is accepted as an anonymous variable.

use crate::ast::{Atom, CmpOp, Constraint, Program, RelationDecl, Rule, Term};
use crate::error::{EngineError, EngineResult};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u32),
    Directive(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Turnstile,
    Cmp(CmpOp),
    Underscore,
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    line: usize,
}

fn tokenize(source: &str) -> EngineResult<Vec<Spanned>> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                    }
                } else {
                    return Err(EngineError::Parse {
                        line,
                        message: "unexpected '/'".into(),
                    });
                }
            }
            '(' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::LParen,
                    line,
                });
            }
            ')' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::RParen,
                    line,
                });
            }
            ',' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::Comma,
                    line,
                });
            }
            '.' => {
                chars.next();
                // `.decl` / `.input` / `.output` directives vs. end-of-rule dot.
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphabetic() {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if word.is_empty() {
                    tokens.push(Spanned {
                        token: Token::Dot,
                        line,
                    });
                } else {
                    tokens.push(Spanned {
                        token: Token::Directive(word),
                        line,
                    });
                }
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    chars.next();
                    tokens.push(Spanned {
                        token: Token::Turnstile,
                        line,
                    });
                } else {
                    // A bare ':' appears in declarations (name: type); skip it.
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Spanned {
                        token: Token::Cmp(CmpOp::Ne),
                        line,
                    });
                } else {
                    return Err(EngineError::Parse {
                        line,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '=' => {
                chars.next();
                tokens.push(Spanned {
                    token: Token::Cmp(CmpOp::Eq),
                    line,
                });
            }
            '<' => {
                chars.next();
                let op = if chars.peek() == Some(&'=') {
                    chars.next();
                    CmpOp::Le
                } else {
                    CmpOp::Lt
                };
                tokens.push(Spanned {
                    token: Token::Cmp(op),
                    line,
                });
            }
            '>' => {
                chars.next();
                let op = if chars.peek() == Some(&'=') {
                    chars.next();
                    CmpOp::Ge
                } else {
                    CmpOp::Gt
                };
                tokens.push(Spanned {
                    token: Token::Cmp(op),
                    line,
                });
            }
            '_' => {
                chars.next();
                // Allow identifiers starting with '_' (still anonymous if lone).
                let mut word = String::from("_");
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if word == "_" {
                    tokens.push(Spanned {
                        token: Token::Underscore,
                        line,
                    });
                } else {
                    tokens.push(Spanned {
                        token: Token::Ident(word),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut value = 0u64;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        value = value * 10 + u64::from(c as u8 - b'0');
                        if value > u64::from(u32::MAX) {
                            return Err(EngineError::Parse {
                                line,
                                message: "integer literal exceeds 32 bits".into(),
                            });
                        }
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Spanned {
                    token: Token::Number(value as u32),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        // Allow dotted relation names like `def_used.for_address`.
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                // A trailing dot belongs to the rule terminator, not the name.
                if word.ends_with('.') {
                    word.pop();
                    tokens.push(Spanned {
                        token: Token::Ident(word.clone()),
                        line,
                    });
                    tokens.push(Spanned {
                        token: Token::Dot,
                        line,
                    });
                    word.clear();
                }
                if !word.is_empty() {
                    tokens.push(Spanned {
                        token: Token::Ident(word),
                        line,
                    });
                }
            }
            other => {
                return Err(EngineError::Parse {
                    line,
                    message: format!("unexpected character '{other}'"),
                });
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    anon_counter: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn error(&self, message: impl Into<String>) -> EngineError {
        EngineError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, expected: &Token, what: &str) -> EngineResult<()> {
        match self.next() {
            Some(t) if &t == expected => Ok(()),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> EngineResult<String> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn parse_term(&mut self) -> EngineResult<Term> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(Term::Var(name)),
            Some(Token::Number(n)) => Ok(Term::Const(n)),
            Some(Token::Underscore) => {
                self.anon_counter += 1;
                Ok(Term::Var(format!("_anon{}", self.anon_counter)))
            }
            other => Err(self.error(format!("expected a term, found {other:?}"))),
        }
    }

    fn parse_atom(&mut self, name: String) -> EngineResult<Atom> {
        self.expect(&Token::LParen, "'('")?;
        let mut terms = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                terms.push(self.parse_term()?);
                match self.peek() {
                    Some(Token::Comma) => {
                        self.next();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(Atom::new(name, terms))
    }

    fn parse_decl(&mut self, program: &mut Program) -> EngineResult<()> {
        let name = self.expect_ident("relation name")?;
        self.expect(&Token::LParen, "'('")?;
        let mut arity = 0;
        if self.peek() != Some(&Token::RParen) {
            loop {
                // column name, optional ": type" (the ':' is dropped by the lexer).
                let _col = self.expect_ident("column name")?;
                if let Some(Token::Ident(_ty)) = self.peek() {
                    self.next();
                }
                arity += 1;
                match self.peek() {
                    Some(Token::Comma) => {
                        self.next();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Token::RParen, "')'")?;
        program.relations.push(RelationDecl {
            name,
            arity,
            is_input: false,
            is_output: false,
        });
        Ok(())
    }

    fn parse_rule_or_fact(&mut self, head_name: String, program: &mut Program) -> EngineResult<()> {
        let head = self.parse_atom(head_name)?;
        match self.next() {
            Some(Token::Dot) => {
                // A ground fact written inline: treat it as a rule with an
                // empty body only if all terms are constants.
                if head.terms.iter().all(|t| matches!(t, Term::Const(_))) {
                    program.rules.push(Rule {
                        head,
                        body: Vec::new(),
                        constraints: Vec::new(),
                    });
                    Ok(())
                } else {
                    Err(self.error("a fact must use constant arguments"))
                }
            }
            Some(Token::Turnstile) => {
                let mut body = Vec::new();
                let mut constraints = Vec::new();
                loop {
                    match self.next() {
                        Some(Token::Ident(name)) => {
                            if self.peek() == Some(&Token::LParen) {
                                body.push(self.parse_atom(name)?);
                            } else {
                                // Constraint with a variable left operand.
                                let op = match self.next() {
                                    Some(Token::Cmp(op)) => op,
                                    other => {
                                        return Err(self.error(format!(
                                            "expected comparison operator, found {other:?}"
                                        )))
                                    }
                                };
                                let right = self.parse_term()?;
                                constraints.push(Constraint {
                                    left: Term::Var(name),
                                    op,
                                    right,
                                });
                            }
                        }
                        Some(Token::Number(n)) => {
                            let op = match self.next() {
                                Some(Token::Cmp(op)) => op,
                                other => {
                                    return Err(self.error(format!(
                                        "expected comparison operator, found {other:?}"
                                    )))
                                }
                            };
                            let right = self.parse_term()?;
                            constraints.push(Constraint {
                                left: Term::Const(n),
                                op,
                                right,
                            });
                        }
                        other => {
                            return Err(self.error(format!(
                                "expected a body atom or constraint, found {other:?}"
                            )))
                        }
                    }
                    match self.next() {
                        Some(Token::Comma) => continue,
                        Some(Token::Dot) => break,
                        other => {
                            return Err(self.error(format!("expected ',' or '.', found {other:?}")))
                        }
                    }
                }
                program.rules.push(Rule {
                    head,
                    body,
                    constraints,
                });
                Ok(())
            }
            other => Err(self.error(format!("expected ':-' or '.', found {other:?}"))),
        }
    }
}

/// Parses a Datalog program from Soufflé-style source text.
///
/// # Errors
///
/// Returns [`EngineError::Parse`] describing the first syntax error, with
/// its line number.
pub fn parse_program(source: &str) -> EngineResult<Program> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        anon_counter: 0,
    };
    let mut program = Program::default();
    while let Some(token) = parser.peek().cloned() {
        match token {
            Token::Directive(word) => {
                parser.next();
                match word.as_str() {
                    "decl" => parser.parse_decl(&mut program)?,
                    "input" => {
                        let name = parser.expect_ident("relation name")?;
                        mark_relation(&mut program, &name, true, false, parser.line())?;
                    }
                    "output" => {
                        let name = parser.expect_ident("relation name")?;
                        mark_relation(&mut program, &name, false, true, parser.line())?;
                    }
                    other => {
                        return Err(EngineError::Parse {
                            line: parser.line(),
                            message: format!("unknown directive .{other}"),
                        })
                    }
                }
            }
            Token::Ident(name) => {
                parser.next();
                parser.parse_rule_or_fact(name, &mut program)?;
            }
            other => {
                return Err(EngineError::Parse {
                    line: parser.line(),
                    message: format!("unexpected token {other:?}"),
                })
            }
        }
    }
    Ok(program)
}

fn mark_relation(
    program: &mut Program,
    name: &str,
    input: bool,
    output: bool,
    line: usize,
) -> EngineResult<()> {
    match program.relations.iter_mut().find(|r| r.name == name) {
        Some(decl) => {
            decl.is_input |= input;
            decl.is_output |= output;
            Ok(())
        }
        None => Err(EngineError::Parse {
            line,
            message: format!(".input/.output for undeclared relation {name}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REACH: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl Reach(x: number, y: number)
        .output Reach
        Reach(x, y) :- Edge(x, y).
        Reach(x, y) :- Edge(x, z), Reach(z, y).
    ";

    #[test]
    fn parses_reach_program() {
        let p = parse_program(REACH).unwrap();
        assert_eq!(p.relations.len(), 2);
        assert_eq!(p.rules.len(), 2);
        assert!(p.relation("Edge").unwrap().is_input);
        assert!(p.relation("Reach").unwrap().is_output);
        assert_eq!(p.rules[1].body.len(), 2);
        assert_eq!(p.rules[1].body[1].relation, "Reach");
    }

    #[test]
    fn parses_constraints_and_wildcards() {
        let src = r"
            .decl Edge(x: number, y: number)
            .decl SG(x: number, y: number)
            .input Edge
            .output SG
            SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
            SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].constraints.len(), 1);
        assert_eq!(p.rules[0].constraints[0].op, CmpOp::Ne);
        assert_eq!(p.rules[1].body.len(), 3);
    }

    #[test]
    fn parses_wildcard_as_fresh_variables() {
        let src = r"
            .decl A(x: number, y: number, z: number)
            .decl B(x: number)
            .input A
            .output B
            B(x) :- A(x, _, _).
        ";
        let p = parse_program(src).unwrap();
        let vars: Vec<String> = p.rules[0].body[0]
            .variables()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(vars.len(), 3);
        assert_ne!(vars[1], vars[2], "wildcards must be distinct variables");
    }

    #[test]
    fn parses_constants_and_ground_facts() {
        let src = r"
            .decl E(x: number, y: number)
            .decl R(x: number)
            .output R
            E(1, 2).
            E(2, 3).
            R(x) :- E(x, 3).
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 3);
        assert!(p.rules[0].body.is_empty());
        assert_eq!(p.rules[2].body[0].terms[1], Term::Const(3));
    }

    #[test]
    fn parses_comments_and_comparison_operators() {
        let src = r"
            // the extensional graph
            .decl E(x: number, y: number)
            .decl Small(x: number, y: number)
            .input E
            .output Small
            Small(x, y) :- E(x, y), x < y, y <= 100, x >= 1, 0 < x.
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules[0].constraints.len(), 4);
    }

    #[test]
    fn reports_unknown_directive_with_line() {
        let err = parse_program(".bogus Edge").unwrap_err();
        match err {
            EngineError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("bogus"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn reports_input_for_undeclared_relation() {
        let err = parse_program(".input Edge").unwrap_err();
        assert!(matches!(err, EngineError::Parse { .. }));
    }

    #[test]
    fn reports_missing_rule_terminator() {
        let src = ".decl E(x: number)\nE(1)";
        // `E(1)` without '.' is a truncated fact.
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn parses_dotted_relation_names() {
        let src = r"
            .decl def_used.for_address(ea: number, reg: number, n: number)
            .decl out(ea: number)
            .input def_used.for_address
            .output out
            out(ea) :- def_used.for_address(ea, _, _).
        ";
        let p = parse_program(src).unwrap();
        assert!(p.relation("def_used.for_address").is_some());
        assert_eq!(p.rules[0].body[0].relation, "def_used.for_address");
    }

    #[test]
    fn non_ground_fact_is_rejected() {
        let src = ".decl E(x: number, y: number)\nE(x, 2).";
        assert!(parse_program(src).is_err());
    }
}
