//! A Soufflé-style text front end for Datalog programs.
//!
//! The accepted syntax is the subset of Soufflé that the paper's benchmark
//! programs (REACH, SG, CSPA) use, extended with stratified negation and
//! head aggregates:
//!
//! ```text
//! .decl Edge(x: number, y: number)
//! .input Edge
//! .decl Reach(x: number, y: number)
//! .output Reach
//! Reach(x, y) :- Edge(x, y).
//! Reach(x, y) :- Edge(x, z), Reach(z, y).
//! SG(x, y)    :- Edge(p, x), Edge(p, y), x != y.
//! Safe(x, y)  :- Reach(x, y), !Blocked(y).
//! SP(x, y, min(d)) :- PathLen(x, y, d).
//! ```
//!
//! A `!` before a body atom negates it (stratified negation-as-failure);
//! in a head-term position, `count(v)` / `min(v)` / `max(v)` / `sum(v)`
//! declares the rule's aggregate. Comments start with `//` and run to the
//! end of the line. The column types in declarations are parsed and
//! ignored (all values are 32-bit numbers). `_` is accepted as an
//! anonymous variable.
//!
//! Parse errors carry the 1-based line *and column* of the offending
//! token, plus its lexeme, so a bad `!` literal or aggregate is
//! pinpointable ([`EngineError::Parse`]).

use crate::ast::{
    Aggregate, AggregateOp, Atom, CmpOp, Constraint, Literal, Program, Query, RelationDecl, Rule,
    Span, Term,
};
use crate::error::{EngineError, EngineResult};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u32),
    Directive(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Turnstile,
    /// `?-` — introduces the program's goal.
    Query,
    Cmp(CmpOp),
    Bang,
    Underscore,
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    line: usize,
    column: usize,
    lexeme: String,
}

/// Character source that tracks the 1-based line/column of the cursor.
struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl Lexer<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        match c {
            Some('\n') => {
                self.line += 1;
                self.column = 1;
            }
            Some(_) => self.column += 1,
            None => {}
        }
        c
    }
}

fn parse_err(
    line: usize,
    column: usize,
    token: impl Into<String>,
    message: impl Into<String>,
) -> EngineError {
    EngineError::Parse {
        line,
        column,
        token: token.into(),
        message: message.into(),
    }
}

fn tokenize(source: &str) -> EngineResult<Vec<Spanned>> {
    let mut tokens = Vec::new();
    let mut lx = Lexer {
        chars: source.chars().peekable(),
        line: 1,
        column: 1,
    };
    while let Some(c) = lx.peek() {
        let (line, column) = (lx.line, lx.column);
        let mut push = |token: Token, lexeme: String| {
            tokens.push(Spanned {
                token,
                line,
                column,
                lexeme,
            });
        };
        match c {
            c if c.is_whitespace() => {
                lx.bump();
            }
            '/' => {
                lx.bump();
                if lx.peek() == Some('/') {
                    while let Some(c) = lx.peek() {
                        if c == '\n' {
                            break;
                        }
                        lx.bump();
                    }
                } else {
                    return Err(parse_err(line, column, "/", "unexpected '/'"));
                }
            }
            '(' => {
                lx.bump();
                push(Token::LParen, "(".into());
            }
            ')' => {
                lx.bump();
                push(Token::RParen, ")".into());
            }
            ',' => {
                lx.bump();
                push(Token::Comma, ",".into());
            }
            '.' => {
                lx.bump();
                // `.decl` / `.input` / `.output` directives vs. end-of-rule dot.
                let mut word = String::new();
                while let Some(c) = lx.peek() {
                    if c.is_ascii_alphabetic() {
                        word.push(c);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                if word.is_empty() {
                    push(Token::Dot, ".".into());
                } else {
                    push(Token::Directive(word.clone()), format!(".{word}"));
                }
            }
            ':' => {
                lx.bump();
                if lx.peek() == Some('-') {
                    lx.bump();
                    push(Token::Turnstile, ":-".into());
                } else {
                    // A bare ':' appears in declarations (name: type); skip it.
                }
            }
            '!' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    push(Token::Cmp(CmpOp::Ne), "!=".into());
                } else {
                    push(Token::Bang, "!".into());
                }
            }
            '?' => {
                lx.bump();
                if lx.peek() == Some('-') {
                    lx.bump();
                    push(Token::Query, "?-".into());
                } else {
                    return Err(parse_err(line, column, "?", "expected '?-' to open a goal"));
                }
            }
            '=' => {
                lx.bump();
                push(Token::Cmp(CmpOp::Eq), "=".into());
            }
            '<' => {
                lx.bump();
                let (op, lexeme) = if lx.peek() == Some('=') {
                    lx.bump();
                    (CmpOp::Le, "<=")
                } else {
                    (CmpOp::Lt, "<")
                };
                push(Token::Cmp(op), lexeme.into());
            }
            '>' => {
                lx.bump();
                let (op, lexeme) = if lx.peek() == Some('=') {
                    lx.bump();
                    (CmpOp::Ge, ">=")
                } else {
                    (CmpOp::Gt, ">")
                };
                push(Token::Cmp(op), lexeme.into());
            }
            '_' => {
                lx.bump();
                // Allow identifiers starting with '_' (still anonymous if lone).
                let mut word = String::from("_");
                while let Some(c) = lx.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        word.push(c);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                if word == "_" {
                    push(Token::Underscore, word);
                } else {
                    push(Token::Ident(word.clone()), word);
                }
            }
            c if c.is_ascii_digit() => {
                let mut value = 0u64;
                let mut lexeme = String::new();
                while let Some(c) = lx.peek() {
                    if c.is_ascii_digit() {
                        lexeme.push(c);
                        value = value * 10 + u64::from(c as u8 - b'0');
                        if value > u64::from(u32::MAX) {
                            return Err(parse_err(
                                line,
                                column,
                                lexeme,
                                "integer literal exceeds 32 bits",
                            ));
                        }
                        lx.bump();
                    } else {
                        break;
                    }
                }
                push(Token::Number(value as u32), lexeme);
            }
            c if c.is_ascii_alphabetic() => {
                let mut word = String::new();
                while let Some(c) = lx.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        // Allow dotted relation names like `def_used.for_address`.
                        word.push(c);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                // A trailing dot belongs to the rule terminator, not the name.
                if word.ends_with('.') {
                    word.pop();
                    let dot_column = column + word.chars().count();
                    push(Token::Ident(word.clone()), word.clone());
                    tokens.push(Spanned {
                        token: Token::Dot,
                        line,
                        column: dot_column,
                        lexeme: ".".into(),
                    });
                } else {
                    push(Token::Ident(word.clone()), word);
                }
            }
            other => {
                return Err(parse_err(
                    line,
                    column,
                    other.to_string(),
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    anon_counter: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn err_at(&self, idx: usize, message: String) -> EngineError {
        match self.tokens.get(idx) {
            Some(s) => parse_err(s.line, s.column, s.lexeme.clone(), message),
            None => {
                // Past the end: point just after the last token.
                let (line, column) = self
                    .tokens
                    .last()
                    .map(|s| (s.line, s.column + s.lexeme.chars().count()))
                    .unwrap_or((1, 1));
                parse_err(line, column, "", message)
            }
        }
    }

    /// Error pinned to the most recently consumed token.
    fn error(&self, message: impl Into<String>) -> EngineError {
        self.err_at(self.pos.saturating_sub(1), message.into())
    }

    /// Error pinned to the token the parser is currently looking at.
    fn error_here(&self, message: impl Into<String>) -> EngineError {
        self.err_at(self.pos, message.into())
    }

    /// Source span of the token at `idx` ([`Span::NONE`] past the end).
    fn span_at(&self, idx: usize) -> Span {
        self.tokens
            .get(idx)
            .map(|s| Span::new(s.line, s.column))
            .unwrap_or(Span::NONE)
    }

    /// Span of the most recently consumed token (a just-parsed name).
    fn last_span(&self) -> Span {
        self.span_at(self.pos.saturating_sub(1))
    }

    fn expect(&mut self, expected: &Token, what: &str) -> EngineResult<()> {
        match self.next() {
            Some(t) if &t == expected => Ok(()),
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> EngineResult<String> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn parse_term(&mut self) -> EngineResult<Term> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(Term::Var(name)),
            Some(Token::Number(n)) => Ok(Term::Const(n)),
            Some(Token::Underscore) => {
                self.anon_counter += 1;
                Ok(Term::Var(format!("_anon{}", self.anon_counter)))
            }
            _ => Err(self.error("expected a term")),
        }
    }

    fn parse_atom(&mut self, name: String) -> EngineResult<Atom> {
        // The relation-name token was consumed by the caller just before
        // this call, so its span is the atom's source position.
        let span = self.last_span();
        self.expect(&Token::LParen, "'('")?;
        let mut terms = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                terms.push(self.parse_term()?);
                match self.peek() {
                    Some(Token::Comma) => {
                        self.next();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(Atom::new(name, terms).with_span(span))
    }

    /// Parses a rule head: like an atom, except a term position may hold
    /// an aggregate `count(v)` / `min(v)` / `max(v)` / `sum(v)`.
    fn parse_head(&mut self, name: String) -> EngineResult<(Atom, Option<Aggregate>)> {
        let span = self.last_span();
        self.expect(&Token::LParen, "'('")?;
        let mut terms = Vec::new();
        let mut aggregate: Option<Aggregate> = None;
        if self.peek() != Some(&Token::RParen) {
            loop {
                let agg_op = match (self.peek(), self.peek2()) {
                    (Some(Token::Ident(word)), Some(Token::LParen)) => AggregateOp::from_name(word),
                    _ => None,
                };
                if let Some(op) = agg_op {
                    if aggregate.is_some() {
                        return Err(self.error_here("at most one aggregate per rule head"));
                    }
                    self.next(); // the operator name
                    self.next(); // '('
                    let var = match self.next() {
                        Some(Token::Ident(v)) => v,
                        _ => {
                            return Err(
                                self.error(format!("expected a variable inside {}(..)", op.name()))
                            )
                        }
                    };
                    self.expect(&Token::RParen, "')'")?;
                    aggregate = Some(Aggregate {
                        op,
                        var: var.clone(),
                        column: terms.len(),
                    });
                    terms.push(Term::Var(var));
                } else {
                    terms.push(self.parse_term()?);
                }
                match self.peek() {
                    Some(Token::Comma) => {
                        self.next();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok((Atom::new(name, terms).with_span(span), aggregate))
    }

    fn parse_rule_or_fact(&mut self, head_name: String, program: &mut Program) -> EngineResult<()> {
        let (head, aggregate) = self.parse_head(head_name)?;
        match self.next() {
            Some(Token::Dot) => {
                // A ground fact written inline: treat it as a rule with an
                // empty body only if all terms are constants.
                if aggregate.is_some() {
                    return Err(self.error("a ground fact cannot carry an aggregate"));
                }
                if head.terms.iter().all(|t| matches!(t, Term::Const(_))) {
                    let span = head.span;
                    program.rules.push(Rule {
                        head,
                        aggregate: None,
                        body: Vec::new(),
                        constraints: Vec::new(),
                        span,
                    });
                    Ok(())
                } else {
                    Err(self.error("a fact must use constant arguments"))
                }
            }
            Some(Token::Turnstile) => {
                let mut body = Vec::new();
                let mut constraints = Vec::new();
                loop {
                    match self.next() {
                        Some(Token::Bang) => {
                            let name = self.expect_ident("a relation name after '!'")?;
                            if self.peek() != Some(&Token::LParen) {
                                return Err(
                                    self.error_here("expected '(' after the negated relation name")
                                );
                            }
                            body.push(Literal::Neg(self.parse_atom(name)?));
                        }
                        Some(Token::Ident(name)) => {
                            if self.peek() == Some(&Token::LParen) {
                                body.push(Literal::Pos(self.parse_atom(name)?));
                            } else {
                                // Constraint with a variable left operand.
                                let op = match self.next() {
                                    Some(Token::Cmp(op)) => op,
                                    _ => return Err(self.error("expected a comparison operator")),
                                };
                                let right = self.parse_term()?;
                                constraints.push(Constraint {
                                    left: Term::Var(name),
                                    op,
                                    right,
                                });
                            }
                        }
                        Some(Token::Number(n)) => {
                            let op = match self.next() {
                                Some(Token::Cmp(op)) => op,
                                _ => return Err(self.error("expected a comparison operator")),
                            };
                            let right = self.parse_term()?;
                            constraints.push(Constraint {
                                left: Term::Const(n),
                                op,
                                right,
                            });
                        }
                        _ => return Err(self.error("expected a body literal or constraint")),
                    }
                    match self.next() {
                        Some(Token::Comma) => continue,
                        Some(Token::Dot) => break,
                        _ => return Err(self.error("expected ',' or '.'")),
                    }
                }
                let span = head.span;
                program.rules.push(Rule {
                    head,
                    aggregate,
                    body,
                    constraints,
                    span,
                });
                Ok(())
            }
            _ => Err(self.error("expected ':-' or '.'")),
        }
    }
}

/// Parses a Datalog program from Soufflé-style source text.
///
/// # Errors
///
/// Returns [`EngineError::Parse`] describing the first syntax error, with
/// its 1-based line/column and the offending token's lexeme.
pub fn parse_program(source: &str) -> EngineResult<Program> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        anon_counter: 0,
    };
    let mut program = Program::default();
    while let Some(token) = parser.peek().cloned() {
        match token {
            Token::Directive(word) => {
                parser.next();
                match word.as_str() {
                    "decl" => parser.parse_decl(&mut program)?,
                    "input" => {
                        let name = parser.expect_ident("a relation name")?;
                        mark_relation(&parser, &mut program, &name, true, false)?;
                    }
                    "output" => {
                        let name = parser.expect_ident("a relation name")?;
                        mark_relation(&parser, &mut program, &name, false, true)?;
                    }
                    other => {
                        return Err(parser.error(format!("unknown directive .{other}")));
                    }
                }
            }
            Token::Ident(name) => {
                parser.next();
                parser.parse_rule_or_fact(name, &mut program)?;
            }
            Token::Query => {
                let query_idx = parser.pos;
                parser.next();
                if program.query.is_some() {
                    return Err(
                        parser.err_at(query_idx, "a program carries at most one ?- goal".into())
                    );
                }
                // The relation-name span travels with the goal so
                // query-shape errors raised later (unknown relation, arity
                // mismatch) can point back at the source.
                let name_idx = parser.pos;
                let name = parser.expect_ident("a relation name after '?-'")?;
                let atom = parser.parse_atom(name)?;
                parser.expect(&Token::Dot, "'.' after the goal")?;
                let (line, column) = parser
                    .tokens
                    .get(name_idx)
                    .map(|s| (s.line, s.column))
                    .unwrap_or((0, 0));
                program.query = Some(Query { atom, line, column });
            }
            _ => {
                return Err(parser.error_here("expected a directive or a rule"));
            }
        }
    }
    Ok(program)
}

impl Parser {
    fn parse_decl(&mut self, program: &mut Program) -> EngineResult<()> {
        let name = self.expect_ident("a relation name")?;
        self.expect(&Token::LParen, "'('")?;
        let mut arity = 0;
        if self.peek() != Some(&Token::RParen) {
            loop {
                // column name, optional ": type" (the ':' is dropped by the lexer).
                let _col = self.expect_ident("a column name")?;
                if let Some(Token::Ident(_ty)) = self.peek() {
                    self.next();
                }
                arity += 1;
                match self.peek() {
                    Some(Token::Comma) => {
                        self.next();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Token::RParen, "')'")?;
        program.relations.push(RelationDecl {
            name,
            arity,
            is_input: false,
            is_output: false,
        });
        Ok(())
    }
}

fn mark_relation(
    parser: &Parser,
    program: &mut Program,
    name: &str,
    input: bool,
    output: bool,
) -> EngineResult<()> {
    match program.relations.iter_mut().find(|r| r.name == name) {
        Some(decl) => {
            // A repeated marking is a typo worth rejecting loudly: the
            // second `.input R` / `.output R` used to be silently absorbed.
            if input && decl.is_input {
                return Err(parser.error(format!("duplicate .input declaration for {name}")));
            }
            if output && decl.is_output {
                return Err(parser.error(format!("duplicate .output declaration for {name}")));
            }
            decl.is_input |= input;
            decl.is_output |= output;
            Ok(())
        }
        None => Err(parser.error(format!(".input/.output for undeclared relation {name}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REACH: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl Reach(x: number, y: number)
        .output Reach
        Reach(x, y) :- Edge(x, y).
        Reach(x, y) :- Edge(x, z), Reach(z, y).
    ";

    #[test]
    fn parses_reach_program() {
        let p = parse_program(REACH).unwrap();
        assert_eq!(p.relations.len(), 2);
        assert_eq!(p.rules.len(), 2);
        assert!(p.relation("Edge").unwrap().is_input);
        assert!(p.relation("Reach").unwrap().is_output);
        assert_eq!(p.rules[1].body.len(), 2);
        assert_eq!(p.rules[1].body[1].atom().relation, "Reach");
        assert!(p.rules[1].body.iter().all(Literal::is_positive));
    }

    #[test]
    fn rejects_duplicate_io_declarations_with_spans() {
        let src = "\
.decl Edge(x: number, y: number)\n\
.input Edge\n\
.input Edge\n";
        match parse_program(src).unwrap_err() {
            EngineError::Parse { line, message, .. } => {
                assert_eq!(line, 3);
                assert!(message.contains("duplicate .input declaration for Edge"));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        let src = "\
.decl Edge(x: number, y: number)\n\
.output Edge\n\
.output Edge\n";
        match parse_program(src).unwrap_err() {
            EngineError::Parse { line, message, .. } => {
                assert_eq!(line, 3);
                assert!(message.contains("duplicate .output declaration for Edge"));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
        // Marking one relation as both .input and .output stays legal.
        let p =
            parse_program(".decl Edge(x: number, y: number)\n.input Edge\n.output Edge\n").unwrap();
        let decl = p.relation("Edge").unwrap();
        assert!(decl.is_input && decl.is_output);
    }

    #[test]
    fn parses_negated_body_literals() {
        let src = r"
            .decl Edge(x: number, y: number)
            .decl Blocked(x: number)
            .decl Reach(x: number, y: number)
            .input Edge
            .input Blocked
            .output Reach
            Reach(x, y) :- Edge(x, y), !Blocked(y).
            Reach(x, y) :- Reach(x, z), Edge(z, y), !Blocked(y).
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        for rule in &p.rules {
            let neg: Vec<&Atom> = rule.negative_atoms().collect();
            assert_eq!(neg.len(), 1);
            assert_eq!(neg[0].relation, "Blocked");
            assert_eq!(neg[0].terms, vec![Term::var("y")]);
        }
        // `!=` still lexes as a comparison, not a negation.
        assert!(p.rules[0].constraints.is_empty());
    }

    #[test]
    fn parses_head_aggregates() {
        let src = r"
            .decl PathLen(x: number, y: number, d: number)
            .decl SP(x: number, y: number, d: number)
            .input PathLen
            .output SP
            SP(x, y, min(d)) :- PathLen(x, y, d).
        ";
        let p = parse_program(src).unwrap();
        let rule = &p.rules[0];
        let agg = rule.aggregate.as_ref().unwrap();
        assert_eq!(agg.op, AggregateOp::Min);
        assert_eq!(agg.var, "d");
        assert_eq!(agg.column, 2);
        assert_eq!(rule.head.terms[2], Term::var("d"));
        // Round-trips through Display.
        assert_eq!(rule.to_string(), "SP(x, y, min(d)) :- PathLen(x, y, d).");
    }

    #[test]
    fn aggregate_names_are_plain_variables_without_parens() {
        // `min` used as an ordinary variable must not trigger aggregate
        // parsing.
        let src = r"
            .decl E(min: number, y: number)
            .decl R(x: number, y: number)
            .input E
            .output R
            R(min, y) :- E(min, y).
        ";
        let p = parse_program(src).unwrap();
        assert!(p.rules[0].aggregate.is_none());
        assert_eq!(p.rules[0].head.terms[0], Term::var("min"));
    }

    #[test]
    fn rejects_two_aggregates_in_one_head() {
        let src = ".decl E(x: number, y: number)\n.decl R(x: number, y: number)\nR(min(x), max(y)) :- E(x, y).";
        let err = parse_program(src).unwrap_err();
        match err {
            EngineError::Parse {
                line,
                token,
                message,
                ..
            } => {
                assert_eq!(line, 3);
                assert_eq!(token, "max");
                assert!(message.contains("at most one aggregate"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn bang_without_atom_is_pinpointed() {
        let src = ".decl E(x: number)\n.decl R(x: number)\nR(x) :- E(x), !x.";
        let err = parse_program(src).unwrap_err();
        match err {
            EngineError::Parse {
                line,
                column,
                token,
                ..
            } => {
                assert_eq!(line, 3);
                assert_eq!(token, ".");
                assert!(column > 1);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_column_and_token() {
        // The stray '=' after `x` (as `x = = 3` is malformed at the second '=')
        let src = "R(x) :- E(x), x < .";
        let err = parse_program(src).unwrap_err();
        match err {
            EngineError::Parse {
                line,
                column,
                token,
                message,
            } => {
                assert_eq!(line, 1);
                assert_eq!(column, 19);
                assert_eq!(token, ".");
                assert!(message.contains("expected a term"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let rendered = parse_program(src).unwrap_err().to_string();
        assert!(rendered.contains("line 1, column 19"));
        assert!(rendered.contains("near `.`"));
    }

    #[test]
    fn end_of_input_error_has_empty_token() {
        let err = parse_program("R(x) :- ").unwrap_err();
        match err {
            EngineError::Parse { token, .. } => assert!(token.is_empty()),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parses_constraints_and_wildcards() {
        let src = r"
            .decl Edge(x: number, y: number)
            .decl SG(x: number, y: number)
            .input Edge
            .output SG
            SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
            SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].constraints.len(), 1);
        assert_eq!(p.rules[0].constraints[0].op, CmpOp::Ne);
        assert_eq!(p.rules[1].body.len(), 3);
    }

    #[test]
    fn parses_wildcard_as_fresh_variables() {
        let src = r"
            .decl A(x: number, y: number, z: number)
            .decl B(x: number)
            .input A
            .output B
            B(x) :- A(x, _, _).
        ";
        let p = parse_program(src).unwrap();
        let vars: Vec<String> = p.rules[0].body[0]
            .atom()
            .variables()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(vars.len(), 3);
        assert_ne!(vars[1], vars[2], "wildcards must be distinct variables");
    }

    #[test]
    fn parses_constants_and_ground_facts() {
        let src = r"
            .decl E(x: number, y: number)
            .decl R(x: number)
            .output R
            E(1, 2).
            E(2, 3).
            R(x) :- E(x, 3).
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 3);
        assert!(p.rules[0].body.is_empty());
        assert_eq!(p.rules[2].body[0].atom().terms[1], Term::Const(3));
    }

    #[test]
    fn parses_comments_and_comparison_operators() {
        let src = r"
            // the extensional graph
            .decl E(x: number, y: number)
            .decl Small(x: number, y: number)
            .input E
            .output Small
            Small(x, y) :- E(x, y), x < y, y <= 100, x >= 1, 0 < x.
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules[0].constraints.len(), 4);
    }

    #[test]
    fn reports_unknown_directive_with_line() {
        let err = parse_program(".bogus Edge").unwrap_err();
        match err {
            EngineError::Parse {
                line,
                column,
                message,
                ..
            } => {
                assert_eq!(line, 1);
                assert_eq!(column, 1);
                assert!(message.contains("bogus"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn reports_input_for_undeclared_relation() {
        let err = parse_program(".input Edge").unwrap_err();
        assert!(matches!(err, EngineError::Parse { .. }));
    }

    #[test]
    fn reports_missing_rule_terminator() {
        let src = ".decl E(x: number)\nE(1)";
        // `E(1)` without '.' is a truncated fact.
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn parses_dotted_relation_names() {
        let src = r"
            .decl def_used.for_address(ea: number, reg: number, n: number)
            .decl out(ea: number)
            .input def_used.for_address
            .output out
            out(ea) :- def_used.for_address(ea, _, _).
        ";
        let p = parse_program(src).unwrap();
        assert!(p.relation("def_used.for_address").is_some());
        assert_eq!(p.rules[0].body[0].atom().relation, "def_used.for_address");
    }

    #[test]
    fn parses_a_goal_with_its_source_span() {
        let src = ".decl Edge(x: number, y: number)\n.input Edge\n.decl Reach(x: number, y: number)\n.output Reach\nReach(x, y) :- Edge(x, y).\n?- Reach(3, y).";
        let p = parse_program(src).unwrap();
        let q = p.query.as_ref().unwrap();
        assert_eq!(q.atom.relation, "Reach");
        assert_eq!(q.atom.terms, vec![Term::Const(3), Term::var("y")]);
        assert_eq!(q.adornment(), vec![true, false]);
        assert_eq!(q.bound_constants(), vec![3]);
        assert_eq!((q.line, q.column), (6, 4), "span of the relation name");
    }

    #[test]
    fn goal_wildcards_are_free_positions() {
        let src = ".decl E(x: number, y: number)\n.input E\n?- E(_, 7).";
        let q = parse_program(src).unwrap().query.unwrap();
        assert_eq!(q.adornment(), vec![false, true]);
        assert_eq!(q.bound_constants(), vec![7]);
    }

    #[test]
    fn second_goal_is_rejected_at_its_turnstile() {
        let src = ".decl E(x: number)\n?- E(1).\n?- E(2).";
        let err = parse_program(src).unwrap_err();
        match err {
            EngineError::Parse {
                line,
                column,
                token,
                message,
            } => {
                assert_eq!((line, column), (3, 1));
                assert_eq!(token, "?-");
                assert!(message.contains("at most one"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn lone_question_mark_is_rejected() {
        let err = parse_program("?Edge(1).").unwrap_err();
        assert!(err.to_string().contains("expected '?-'"));
    }

    #[test]
    fn goal_without_terminator_is_rejected() {
        assert!(parse_program(".decl E(x: number)\n?- E(1)").is_err());
    }

    #[test]
    fn non_ground_fact_is_rejected() {
        let src = ".decl E(x: number, y: number)\nE(x, 2).";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn aggregate_in_ground_fact_is_rejected() {
        let src = ".decl R(x: number)\nR(min(x)).";
        let err = parse_program(src).unwrap_err();
        assert!(err.to_string().contains("aggregate"));
    }
}
