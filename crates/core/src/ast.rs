//! Abstract syntax for Datalog programs.
//!
//! A [`Program`] is a set of relation declarations plus Horn-clause rules.
//! Programs can be written in Soufflé-style text and parsed with
//! [`crate::parser::parse_program`], or assembled programmatically with
//! [`ProgramBuilder`]; either way they are compiled by
//! [`crate::planner`] into the relational-algebra plans the engine executes.

use std::fmt;

/// A term appearing in an atom or constraint: a named variable or a
/// 32-bit constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A logic variable, e.g. `x`.
    Var(String),
    /// An integer constant.
    Const(u32),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A predicate applied to terms, e.g. `Edge(x, y)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms; the length is the relation's arity.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Iterates over the variable names used by this atom.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(Term::as_var)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators usable in rule-body constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two concrete values.
    pub fn eval(self, left: u32, right: u32) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A comparison constraint in a rule body, e.g. `x != y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left operand.
    pub left: Term,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Term,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A Horn clause: `head :- body atoms, constraints.`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// Positive body atoms, in source order.
    pub body: Vec<Atom>,
    /// Comparison constraints.
    pub constraints: Vec<Constraint>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        let mut first = true;
        for atom in &self.body {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{atom}")?;
            first = false;
        }
        for c in &self.constraints {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, ".")
    }
}

/// A relation declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDecl {
    /// Relation name.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// Whether facts are loaded from the extensional database.
    pub is_input: bool,
    /// Whether the relation is part of the program's output.
    pub is_output: bool,
}

/// A complete Datalog program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Declared relations.
    pub relations: Vec<RelationDecl>,
    /// Rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Looks up a relation declaration by name.
    pub fn relation(&self, name: &str) -> Option<&RelationDecl> {
        self.relations.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.relations {
            writeln!(
                f,
                ".decl {}({})",
                r.name,
                (0..r.arity)
                    .map(|i| format!("c{i}: number"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
            if r.is_input {
                writeln!(f, ".input {}", r.name)?;
            }
            if r.is_output {
                writeln!(f, ".output {}", r.name)?;
            }
        }
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

/// Fluent builder for assembling [`Program`]s in code.
///
/// # Examples
///
/// ```
/// use gpulog::ast::{ProgramBuilder, Term};
///
/// let program = ProgramBuilder::new()
///     .input_relation("Edge", 2)
///     .output_relation("Reach", 2)
///     .rule("Reach", vec![Term::var("x"), Term::var("y")])
///     .body("Edge", vec![Term::var("x"), Term::var("y")])
///     .end_rule()
///     .rule("Reach", vec![Term::var("x"), Term::var("y")])
///     .body("Edge", vec![Term::var("x"), Term::var("z")])
///     .body("Reach", vec![Term::var("z"), Term::var("y")])
///     .end_rule()
///     .build();
/// assert_eq!(program.rules.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    current_rule: Option<Rule>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an extensional (input) relation.
    pub fn input_relation(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.program.relations.push(RelationDecl {
            name: name.into(),
            arity,
            is_input: true,
            is_output: false,
        });
        self
    }

    /// Declares an intensional relation that is part of the output.
    pub fn output_relation(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.program.relations.push(RelationDecl {
            name: name.into(),
            arity,
            is_input: false,
            is_output: true,
        });
        self
    }

    /// Declares an intermediate (neither input nor output) relation.
    pub fn relation(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.program.relations.push(RelationDecl {
            name: name.into(),
            arity,
            is_input: false,
            is_output: false,
        });
        self
    }

    /// Starts a rule with the given head.
    ///
    /// # Panics
    ///
    /// Panics if a rule is already open (finish it with
    /// [`ProgramBuilder::end_rule`] first).
    pub fn rule(mut self, head_relation: impl Into<String>, head_terms: Vec<Term>) -> Self {
        assert!(
            self.current_rule.is_none(),
            "finish the previous rule first"
        );
        self.current_rule = Some(Rule {
            head: Atom::new(head_relation, head_terms),
            body: Vec::new(),
            constraints: Vec::new(),
        });
        self
    }

    /// Adds a body atom to the open rule.
    ///
    /// # Panics
    ///
    /// Panics if no rule is open.
    pub fn body(mut self, relation: impl Into<String>, terms: Vec<Term>) -> Self {
        self.current_rule
            .as_mut()
            .expect("no open rule")
            .body
            .push(Atom::new(relation, terms));
        self
    }

    /// Adds a comparison constraint to the open rule.
    ///
    /// # Panics
    ///
    /// Panics if no rule is open.
    pub fn constraint(mut self, left: Term, op: CmpOp, right: Term) -> Self {
        self.current_rule
            .as_mut()
            .expect("no open rule")
            .constraints
            .push(Constraint { left, op, right });
        self
    }

    /// Closes the open rule.
    ///
    /// # Panics
    ///
    /// Panics if no rule is open.
    pub fn end_rule(mut self) -> Self {
        let rule = self.current_rule.take().expect("no open rule");
        self.program.rules.push(rule);
        self
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics if a rule is still open.
    pub fn build(self) -> Program {
        assert!(self.current_rule.is_none(), "a rule is still open");
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_reach_program() {
        let program = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("Reach", 2)
            .rule("Reach", vec![Term::var("x"), Term::var("y")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .end_rule()
            .rule("Reach", vec![Term::var("x"), Term::var("y")])
            .body("Edge", vec![Term::var("x"), Term::var("z")])
            .body("Reach", vec![Term::var("z"), Term::var("y")])
            .end_rule()
            .build();
        assert_eq!(program.relations.len(), 2);
        assert_eq!(program.rules.len(), 2);
        assert!(program.relation("Edge").unwrap().is_input);
        assert!(program.relation("Reach").unwrap().is_output);
        assert!(program.relation("Missing").is_none());
    }

    #[test]
    fn display_round_trip_is_parseable_shape() {
        let program = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("SG", 2)
            .rule("SG", vec![Term::var("x"), Term::var("y")])
            .body("Edge", vec![Term::var("p"), Term::var("x")])
            .body("Edge", vec![Term::var("p"), Term::var("y")])
            .constraint(Term::var("x"), CmpOp::Ne, Term::var("y"))
            .end_rule()
            .build();
        let text = program.to_string();
        assert!(text.contains("SG(x, y) :- Edge(p, x), Edge(p, y), x != y."));
        assert!(text.contains(".decl Edge"));
    }

    #[test]
    fn cmp_op_eval_covers_all_operators() {
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ne.eval(3, 4));
        assert!(CmpOp::Lt.eval(3, 4));
        assert!(CmpOp::Le.eval(4, 4));
        assert!(CmpOp::Gt.eval(5, 4));
        assert!(CmpOp::Ge.eval(4, 4));
        assert!(!CmpOp::Lt.eval(4, 4));
    }

    #[test]
    fn atom_variables_skips_constants() {
        let atom = Atom::new("R", vec![Term::var("a"), Term::Const(3), Term::var("b")]);
        let vars: Vec<&str> = atom.variables().collect();
        assert_eq!(vars, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "no open rule")]
    fn body_without_rule_panics() {
        let _ = ProgramBuilder::new().body("Edge", vec![]);
    }
}
