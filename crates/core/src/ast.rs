//! Abstract syntax for Datalog programs.
//!
//! A [`Program`] is a set of relation declarations plus Horn-clause rules.
//! Programs can be written in Soufflé-style text and parsed with
//! [`crate::parser::parse_program`], or assembled programmatically with
//! [`ProgramBuilder`]; either way they are compiled by
//! [`crate::planner`] into the relational-algebra plans the engine executes.
//!
//! Rule bodies are sequences of [`Literal`]s — positive atoms joined as
//! usual, negated atoms (`!Atom(..)`) evaluated under stratified
//! negation-as-failure. A rule head may carry a single [`Aggregate`]
//! (`count`/`min`/`max`/`sum` over one head column), reduced after the
//! rule's stratum completes.

use crate::error::{EngineError, EngineResult};
use std::fmt;

/// A 1-based source position attached to rules and atoms by the parser.
///
/// `Span::NONE` (line and column 0) marks nodes assembled programmatically
/// — diagnostics and errors omit the position in that case, mirroring the
/// convention [`Query::new`] already uses for goals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based source line (0 = no source position).
    pub line: usize,
    /// 1-based source column (0 = no source position).
    pub column: usize,
}

impl Span {
    /// The "no source position" marker carried by programmatic nodes.
    pub const NONE: Span = Span { line: 0, column: 0 };

    /// Creates a span from a 1-based line and column.
    pub fn new(line: usize, column: usize) -> Span {
        Span { line, column }
    }

    /// Whether this span points at real source (line > 0).
    pub fn is_known(self) -> bool {
        self.line > 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// A term appearing in an atom or constraint: a named variable or a
/// 32-bit constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A logic variable, e.g. `x`.
    Var(String),
    /// An integer constant.
    Const(u32),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// The variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A predicate applied to terms, e.g. `Edge(x, y)`.
///
/// Equality ignores the [`Span`]: two atoms with the same relation and
/// terms compare equal whether they were parsed or built in code.
#[derive(Debug, Clone, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms; the length is the relation's arity.
    pub terms: Vec<Term>,
    /// Source position of the relation name ([`Span::NONE`] when the atom
    /// was assembled programmatically). Not part of equality.
    pub span: Span,
}

impl PartialEq for Atom {
    fn eq(&self, other: &Self) -> bool {
        self.relation == other.relation && self.terms == other.terms
    }
}

impl Atom {
    /// Creates an atom with no source position.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.into(),
            terms,
            span: Span::NONE,
        }
    }

    /// Attaches a source position (parser surface).
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Atom {
        self.span = span;
        self
    }

    /// Iterates over the variable names used by this atom.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(Term::as_var)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: an atom used positively (joined) or negatively
/// (anti-joined against the completed lower stratum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Literal {
    /// A positive occurrence, e.g. `Edge(x, y)`.
    Pos(Atom),
    /// A negated occurrence, e.g. `!Blocked(y)`. Under stratified
    /// semantics the negated relation must be fully computed before any
    /// rule reading it negatively runs, and every variable of the atom
    /// must be bound by a positive literal of the same body.
    Neg(Atom),
}

impl Literal {
    /// The underlying atom, regardless of polarity.
    pub fn atom(&self) -> &Atom {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a,
        }
    }

    /// Whether this literal is positive.
    pub fn is_positive(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }

    /// Whether this literal is negated.
    pub fn is_negative(&self) -> bool {
        matches!(self, Literal::Neg(_))
    }

    /// The positive atom, if this literal is positive.
    pub fn as_pos(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) => Some(a),
            Literal::Neg(_) => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "!{a}"),
        }
    }
}

/// Comparison operators usable in rule-body constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two concrete values.
    pub fn eval(self, left: u32, right: u32) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A comparison constraint in a rule body, e.g. `x != y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left operand.
    pub left: Term,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub right: Term,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// The reduction applied by a head [`Aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateOp {
    /// Number of distinct aggregated values per group.
    Count,
    /// Minimum aggregated value per group.
    Min,
    /// Maximum aggregated value per group.
    Max,
    /// Saturating sum of distinct aggregated values per group.
    Sum,
}

impl AggregateOp {
    /// The surface-syntax name (`count`, `min`, `max`, `sum`).
    pub fn name(self) -> &'static str {
        match self {
            AggregateOp::Count => "count",
            AggregateOp::Min => "min",
            AggregateOp::Max => "max",
            AggregateOp::Sum => "sum",
        }
    }

    /// Parses a surface-syntax name back into the operator.
    pub fn from_name(name: &str) -> Option<AggregateOp> {
        match name {
            "count" => Some(AggregateOp::Count),
            "min" => Some(AggregateOp::Min),
            "max" => Some(AggregateOp::Max),
            "sum" => Some(AggregateOp::Sum),
            _ => None,
        }
    }
}

impl fmt::Display for AggregateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A head aggregate, e.g. the `min(d)` in `SP(x, y, min(d)) :- ...`.
///
/// The head term at `column` is `Term::Var(var)`; the remaining head
/// columns form the group key. The reduction runs over the *distinct*
/// (group key, `var`) projections of the rule's body bindings, after the
/// rule's stratum reaches fixpoint — so `count` is set cardinality and
/// `sum` never double-counts a binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregate {
    /// The reduction to apply.
    pub op: AggregateOp,
    /// The aggregated body variable.
    pub var: String,
    /// Head column holding the aggregated value.
    pub column: usize,
}

/// A Horn clause: `head :- body literals, constraints.`
///
/// Equality ignores the [`Span`], like [`Atom`] equality does.
#[derive(Debug, Clone, Eq)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// Optional head aggregate; when present, `head.terms[aggregate.column]`
    /// is `Term::Var(aggregate.var)` and the rule reduces instead of
    /// projecting that column directly.
    pub aggregate: Option<Aggregate>,
    /// Body literals, in source order.
    pub body: Vec<Literal>,
    /// Comparison constraints.
    pub constraints: Vec<Constraint>,
    /// Source position of the head's relation name ([`Span::NONE`] for
    /// rules assembled programmatically). Not part of equality.
    pub span: Span,
}

impl PartialEq for Rule {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head
            && self.aggregate == other.aggregate
            && self.body == other.body
            && self.constraints == other.constraints
    }
}

impl Rule {
    /// Creates a rule with the given head, an empty body, and no source
    /// position; push literals and constraints directly afterwards.
    pub fn new(head: Atom) -> Rule {
        Rule {
            head,
            aggregate: None,
            body: Vec::new(),
            constraints: Vec::new(),
            span: Span::NONE,
        }
    }

    /// Iterates over the positive body atoms, in source order.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(Literal::as_pos)
    }

    /// Iterates over the negated body atoms, in source order.
    pub fn negative_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            Literal::Neg(a) => Some(a),
            Literal::Pos(_) => None,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head.relation)?;
        for (i, t) in self.head.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match &self.aggregate {
                Some(agg) if agg.column == i => write!(f, "{}({})", agg.op, agg.var)?,
                _ => write!(f, "{t}")?,
            }
        }
        write!(f, ") :- ")?;
        let mut first = true;
        for literal in &self.body {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{literal}")?;
            first = false;
        }
        for c in &self.constraints {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, ".")
    }
}

/// A goal (point query) attached to a program: `?- Reach(0, y).`
///
/// The goal's constant arguments are the *bound* positions of the
/// adornment the magic-sets rewrite derives
/// ([`crate::analysis::magic_rewrite`]); variable arguments are free.
/// `line`/`column` locate the goal's relation name in the source so
/// query-shape errors ([`EngineError::UnknownQueryRelation`],
/// [`EngineError::QueryArityMismatch`]) can point back at it; goals built
/// programmatically carry `0, 0`, which the error display omits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The goal atom; constants bind, variables stay free.
    pub atom: Atom,
    /// 1-based source line of the goal's relation name (0 = no source).
    pub line: usize,
    /// 1-based source column of the goal's relation name (0 = no source).
    pub column: usize,
}

impl Query {
    /// Creates a goal with no source position (builder surface).
    pub fn new(atom: Atom) -> Query {
        Query {
            atom,
            line: 0,
            column: 0,
        }
    }

    /// The bound/free adornment: `true` for each constant argument.
    pub fn adornment(&self) -> Vec<bool> {
        self.atom
            .terms
            .iter()
            .map(|t| matches!(t, Term::Const(_)))
            .collect()
    }

    /// The goal's constants, in bound-position order — the seed tuple of
    /// the magic relation.
    pub fn bound_constants(&self) -> Vec<u32> {
        self.atom
            .terms
            .iter()
            .filter_map(|t| match t {
                Term::Const(c) => Some(*c),
                Term::Var(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?- {}.", self.atom)
    }
}

/// A relation declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDecl {
    /// Relation name.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// Whether facts are loaded from the extensional database.
    pub is_input: bool,
    /// Whether the relation is part of the program's output.
    pub is_output: bool,
}

/// A complete Datalog program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Declared relations.
    pub relations: Vec<RelationDecl>,
    /// Rules, in source order.
    pub rules: Vec<Rule>,
    /// Optional goal (`?- Atom.`) driving goal-directed evaluation via
    /// [`crate::engine::GpulogEngine::run_query`]. A program with a goal
    /// still evaluates the full fixpoint under `run()`.
    pub query: Option<Query>,
}

impl Program {
    /// Looks up a relation declaration by name.
    pub fn relation(&self, name: &str) -> Option<&RelationDecl> {
        self.relations.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.relations {
            writeln!(
                f,
                ".decl {}({})",
                r.name,
                (0..r.arity)
                    .map(|i| format!("c{i}: number"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
            if r.is_input {
                writeln!(f, ".input {}", r.name)?;
            }
            if r.is_output {
                writeln!(f, ".output {}", r.name)?;
            }
        }
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        if let Some(query) = &self.query {
            writeln!(f, "{query}")?;
        }
        Ok(())
    }
}

/// Scoped rule body builder used by [`ProgramBuilder::rule_with`].
///
/// Unlike the chained `rule`/`body`/`end_rule` surface, a `RuleBuilder`
/// only exists while its rule is open, so "body without rule" and
/// "unfinished rule" states are unrepresentable.
#[derive(Debug)]
pub struct RuleBuilder {
    rule: Rule,
}

impl RuleBuilder {
    /// Adds a positive body atom.
    pub fn body(&mut self, relation: impl Into<String>, terms: Vec<Term>) -> &mut Self {
        self.rule
            .body
            .push(Literal::Pos(Atom::new(relation, terms)));
        self
    }

    /// Adds a negated body atom (`!relation(terms)`).
    pub fn body_not(&mut self, relation: impl Into<String>, terms: Vec<Term>) -> &mut Self {
        self.rule
            .body
            .push(Literal::Neg(Atom::new(relation, terms)));
        self
    }

    /// Adds a comparison constraint.
    pub fn constraint(&mut self, left: Term, op: CmpOp, right: Term) -> &mut Self {
        self.rule.constraints.push(Constraint { left, op, right });
        self
    }

    /// Declares the head aggregate: reduce the head column holding
    /// `Term::Var(var)` with `op`.
    ///
    /// # Panics
    ///
    /// Panics if no head term is `Term::Var(var)`.
    pub fn aggregate(&mut self, op: AggregateOp, var: impl Into<String>) -> &mut Self {
        let var = var.into();
        let column = self
            .rule
            .head
            .terms
            .iter()
            .position(|t| t.as_var() == Some(var.as_str()))
            .expect("aggregate variable must appear in the rule head");
        self.rule.aggregate = Some(Aggregate { op, var, column });
        self
    }
}

/// Fluent builder for assembling [`Program`]s in code.
///
/// # Examples
///
/// The chained surface mirrors rule syntax directly; [`ProgramBuilder::build`]
/// reports an unfinished rule as a typed error instead of panicking:
///
/// ```
/// use gpulog::ast::{ProgramBuilder, Term};
///
/// let program = ProgramBuilder::new()
///     .input_relation("Edge", 2)
///     .output_relation("Reach", 2)
///     .rule("Reach", vec![Term::var("x"), Term::var("y")])
///     .body("Edge", vec![Term::var("x"), Term::var("y")])
///     .end_rule()
///     .rule("Reach", vec![Term::var("x"), Term::var("y")])
///     .body("Edge", vec![Term::var("x"), Term::var("z")])
///     .body("Reach", vec![Term::var("z"), Term::var("y")])
///     .end_rule()
///     .build()
///     .unwrap();
/// assert_eq!(program.rules.len(), 2);
/// ```
///
/// Or scope each rule with [`ProgramBuilder::rule_with`], which closes the
/// rule when the closure returns — negation and aggregates included:
///
/// ```
/// use gpulog::ast::{AggregateOp, ProgramBuilder, Term};
///
/// let program = ProgramBuilder::new()
///     .input_relation("Edge", 2)
///     .input_relation("Blocked", 1)
///     .output_relation("Reach", 2)
///     .rule_with("Reach", vec![Term::var("x"), Term::var("y")], |r| {
///         r.body("Edge", vec![Term::var("x"), Term::var("y")])
///             .body_not("Blocked", vec![Term::var("y")]);
///     })
///     .build()
///     .unwrap();
/// assert!(program.rules[0].body[1].is_negative());
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
    current_rule: Option<Rule>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an extensional (input) relation.
    pub fn input_relation(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.program.relations.push(RelationDecl {
            name: name.into(),
            arity,
            is_input: true,
            is_output: false,
        });
        self
    }

    /// Declares an intensional relation that is part of the output.
    pub fn output_relation(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.program.relations.push(RelationDecl {
            name: name.into(),
            arity,
            is_input: false,
            is_output: true,
        });
        self
    }

    /// Declares an intermediate (neither input nor output) relation.
    pub fn relation(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.program.relations.push(RelationDecl {
            name: name.into(),
            arity,
            is_input: false,
            is_output: false,
        });
        self
    }

    /// Adds a complete rule through a scoped [`RuleBuilder`] closure; the
    /// rule is closed when the closure returns, so no unfinished-rule
    /// state can escape.
    ///
    /// # Panics
    ///
    /// Panics if a chained rule is already open (finish it with
    /// [`ProgramBuilder::end_rule`] first).
    pub fn rule_with(
        mut self,
        head_relation: impl Into<String>,
        head_terms: Vec<Term>,
        f: impl FnOnce(&mut RuleBuilder),
    ) -> Self {
        assert!(
            self.current_rule.is_none(),
            "finish the previous rule first"
        );
        let mut rb = RuleBuilder {
            rule: Rule::new(Atom::new(head_relation, head_terms)),
        };
        f(&mut rb);
        self.program.rules.push(rb.rule);
        self
    }

    /// Starts a rule with the given head.
    ///
    /// # Panics
    ///
    /// Panics if a rule is already open (finish it with
    /// [`ProgramBuilder::end_rule`] first).
    pub fn rule(mut self, head_relation: impl Into<String>, head_terms: Vec<Term>) -> Self {
        assert!(
            self.current_rule.is_none(),
            "finish the previous rule first"
        );
        self.current_rule = Some(Rule::new(Atom::new(head_relation, head_terms)));
        self
    }

    /// Adds a positive body atom to the open rule.
    ///
    /// # Panics
    ///
    /// Panics if no rule is open.
    pub fn body(mut self, relation: impl Into<String>, terms: Vec<Term>) -> Self {
        self.current_rule
            .as_mut()
            .expect("no open rule")
            .body
            .push(Literal::Pos(Atom::new(relation, terms)));
        self
    }

    /// Adds a negated body atom (`!relation(terms)`) to the open rule.
    ///
    /// # Panics
    ///
    /// Panics if no rule is open.
    pub fn body_not(mut self, relation: impl Into<String>, terms: Vec<Term>) -> Self {
        self.current_rule
            .as_mut()
            .expect("no open rule")
            .body
            .push(Literal::Neg(Atom::new(relation, terms)));
        self
    }

    /// Declares the head aggregate of the open rule: reduce the head
    /// column holding `Term::Var(var)` with `op`.
    ///
    /// # Panics
    ///
    /// Panics if no rule is open, or no head term is `Term::Var(var)`.
    pub fn aggregate(mut self, op: AggregateOp, var: impl Into<String>) -> Self {
        let rule = self.current_rule.as_mut().expect("no open rule");
        let var = var.into();
        let column = rule
            .head
            .terms
            .iter()
            .position(|t| t.as_var() == Some(var.as_str()))
            .expect("aggregate variable must appear in the rule head");
        rule.aggregate = Some(Aggregate { op, var, column });
        self
    }

    /// Adds a comparison constraint to the open rule.
    ///
    /// # Panics
    ///
    /// Panics if no rule is open.
    pub fn constraint(mut self, left: Term, op: CmpOp, right: Term) -> Self {
        self.current_rule
            .as_mut()
            .expect("no open rule")
            .constraints
            .push(Constraint { left, op, right });
        self
    }

    /// Attaches the program's goal: `?- relation(terms).` Constant terms
    /// bind the corresponding columns; variable terms stay free. The
    /// query's shape is validated against the declarations when the
    /// program is rewritten (or run), not here, so builder order does not
    /// matter. A later call replaces an earlier goal.
    pub fn query(mut self, relation: impl Into<String>, terms: Vec<Term>) -> Self {
        self.program.query = Some(Query::new(Atom::new(relation, terms)));
        self
    }

    /// Closes the open rule.
    ///
    /// # Panics
    ///
    /// Panics if no rule is open.
    pub fn end_rule(mut self) -> Self {
        let rule = self.current_rule.take().expect("no open rule");
        self.program.rules.push(rule);
        self
    }

    /// Finishes the program, reporting an unfinished chained rule as a
    /// typed [`EngineError::Validation`] instead of panicking.
    pub fn build(self) -> EngineResult<Program> {
        if let Some(rule) = &self.current_rule {
            return Err(EngineError::Validation {
                message: format!(
                    "a rule for {} is still open: close it with end_rule() before build()",
                    rule.head.relation
                ),
            });
        }
        Ok(self.program)
    }

    /// Finishes the program, panicking on an unfinished rule.
    ///
    /// Escape hatch for call sites that predate the fallible
    /// [`ProgramBuilder::build`].
    ///
    /// # Panics
    ///
    /// Panics if a rule is still open.
    pub fn build_unchecked(self) -> Program {
        assert!(self.current_rule.is_none(), "a rule is still open");
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_reach_program() {
        let program = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("Reach", 2)
            .rule("Reach", vec![Term::var("x"), Term::var("y")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .end_rule()
            .rule("Reach", vec![Term::var("x"), Term::var("y")])
            .body("Edge", vec![Term::var("x"), Term::var("z")])
            .body("Reach", vec![Term::var("z"), Term::var("y")])
            .end_rule()
            .build()
            .unwrap();
        assert_eq!(program.relations.len(), 2);
        assert_eq!(program.rules.len(), 2);
        assert!(program.relation("Edge").unwrap().is_input);
        assert!(program.relation("Reach").unwrap().is_output);
        assert!(program.relation("Missing").is_none());
        assert!(program
            .rules
            .iter()
            .all(|r| r.body.iter().all(Literal::is_positive)));
    }

    #[test]
    fn rule_with_builds_negation_and_aggregates() {
        let program = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .input_relation("Blocked", 1)
            .output_relation("Deg", 2)
            .rule_with("Deg", vec![Term::var("x"), Term::var("y")], |r| {
                r.body("Edge", vec![Term::var("x"), Term::var("y")])
                    .body_not("Blocked", vec![Term::var("y")])
                    .aggregate(AggregateOp::Count, "y");
            })
            .build()
            .unwrap();
        let rule = &program.rules[0];
        assert!(rule.body[0].is_positive());
        assert!(rule.body[1].is_negative());
        assert_eq!(rule.body[1].atom().relation, "Blocked");
        let agg = rule.aggregate.as_ref().unwrap();
        assert_eq!(agg.op, AggregateOp::Count);
        assert_eq!(agg.var, "y");
        assert_eq!(agg.column, 1);
    }

    #[test]
    fn build_reports_open_rule_as_typed_error() {
        let err = ProgramBuilder::new()
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Validation { .. }));
        assert!(err.to_string().contains("still open"));
    }

    #[test]
    fn display_round_trip_is_parseable_shape() {
        let program = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("SG", 2)
            .rule("SG", vec![Term::var("x"), Term::var("y")])
            .body("Edge", vec![Term::var("p"), Term::var("x")])
            .body("Edge", vec![Term::var("p"), Term::var("y")])
            .constraint(Term::var("x"), CmpOp::Ne, Term::var("y"))
            .end_rule()
            .build()
            .unwrap();
        let text = program.to_string();
        assert!(text.contains("SG(x, y) :- Edge(p, x), Edge(p, y), x != y."));
        assert!(text.contains(".decl Edge"));
    }

    #[test]
    fn display_prints_negation_and_aggregates() {
        let program = ProgramBuilder::new()
            .input_relation("PathLen", 3)
            .output_relation("SP", 3)
            .rule_with(
                "SP",
                vec![Term::var("x"), Term::var("y"), Term::var("d")],
                |r| {
                    r.body(
                        "PathLen",
                        vec![Term::var("x"), Term::var("y"), Term::var("d")],
                    )
                    .aggregate(AggregateOp::Min, "d");
                },
            )
            .build()
            .unwrap();
        let text = program.rules[0].to_string();
        assert_eq!(text, "SP(x, y, min(d)) :- PathLen(x, y, d).");

        let neg = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .input_relation("Blocked", 1)
            .output_relation("Reach", 2)
            .rule_with("Reach", vec![Term::var("x"), Term::var("y")], |r| {
                r.body("Edge", vec![Term::var("x"), Term::var("y")])
                    .body_not("Blocked", vec![Term::var("y")]);
            })
            .build()
            .unwrap();
        assert_eq!(
            neg.rules[0].to_string(),
            "Reach(x, y) :- Edge(x, y), !Blocked(y)."
        );
    }

    #[test]
    fn builder_attaches_a_goal_and_display_prints_it() {
        let program = ProgramBuilder::new()
            .input_relation("Edge", 2)
            .output_relation("Reach", 2)
            .rule("Reach", vec![Term::var("x"), Term::var("y")])
            .body("Edge", vec![Term::var("x"), Term::var("y")])
            .end_rule()
            .query("Reach", vec![Term::Const(3), Term::var("y")])
            .build()
            .unwrap();
        let query = program.query.as_ref().unwrap();
        assert_eq!(query.adornment(), vec![true, false]);
        assert_eq!(query.bound_constants(), vec![3]);
        assert_eq!((query.line, query.column), (0, 0));
        assert!(program.to_string().contains("?- Reach(3, y)."));
    }

    #[test]
    fn aggregate_op_names_round_trip() {
        for op in [
            AggregateOp::Count,
            AggregateOp::Min,
            AggregateOp::Max,
            AggregateOp::Sum,
        ] {
            assert_eq!(AggregateOp::from_name(op.name()), Some(op));
        }
        assert_eq!(AggregateOp::from_name("avg"), None);
    }

    #[test]
    fn cmp_op_eval_covers_all_operators() {
        assert!(CmpOp::Eq.eval(3, 3));
        assert!(CmpOp::Ne.eval(3, 4));
        assert!(CmpOp::Lt.eval(3, 4));
        assert!(CmpOp::Le.eval(4, 4));
        assert!(CmpOp::Gt.eval(5, 4));
        assert!(CmpOp::Ge.eval(4, 4));
        assert!(!CmpOp::Lt.eval(4, 4));
    }

    #[test]
    fn atom_variables_skips_constants() {
        let atom = Atom::new("R", vec![Term::var("a"), Term::Const(3), Term::var("b")]);
        let vars: Vec<&str> = atom.variables().collect();
        assert_eq!(vars, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "no open rule")]
    fn body_without_rule_panics() {
        let _ = ProgramBuilder::new().body("Edge", vec![]);
    }

    #[test]
    #[should_panic(expected = "a rule is still open")]
    fn build_unchecked_panics_on_open_rule() {
        let _ = ProgramBuilder::new()
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .build_unchecked();
    }
}
