//! # GPUlog: a data-parallel Datalog engine over the Hash-Indexed Sorted Array
//!
//! This crate is the core of the reproduction of *"Optimizing Datalog for
//! the GPU"* (ASPLOS 2025). It implements a complete Datalog engine — a
//! Soufflé-style front end, a rule planner, and a semi-naïve fixpoint
//! evaluator — whose relational-algebra kernels run on the simulated GPU
//! substrate of [`gpulog_device`] and store relations in the HISA data
//! structure of [`gpulog_hisa`].
//!
//! The three engine-level contributions of the paper are all here:
//!
//! * **HISA-backed iterated relational algebra** — joins enter the inner
//!   relation through a hash table and scan a sorted index array
//!   ([`ra::join`]).
//! * **Temporarily-materialized n-way joins** — rule bodies are decomposed
//!   into chains of binary joins materialized into temporaries; the fused
//!   nested-loop alternative is provided for ablation ([`ra::nway`]).
//! * **Eager buffer management** — merge buffers are retained across
//!   iterations and over-allocated by a tunable factor ([`ebm`]).
//!
//! ## Quick start
//!
//! ```
//! use gpulog::Gpulog;
//! use gpulog_device::{Device, profile::DeviceProfile};
//!
//! # fn main() -> Result<(), gpulog::EngineError> {
//! let device = Device::new(DeviceProfile::nvidia_h100());
//! let mut reach = Gpulog::from_source(&device, r"
//!     .decl Edge(x: number, y: number)
//!     .input Edge
//!     .decl Reach(x: number, y: number)
//!     .output Reach
//!     Reach(x, y) :- Edge(x, y).
//!     Reach(x, y) :- Edge(x, z), Reach(z, y).
//! ")?;
//! reach.add_facts("Edge", [[0, 1], [1, 2], [2, 3]])?;
//! let stats = reach.run()?;
//! assert_eq!(reach.len("Reach"), Some(6));
//! println!("fixpoint in {} iterations", stats.iterations);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod ast;
pub mod ebm;
pub mod engine;
pub mod error;
pub mod parser;
pub mod planner;
pub mod program;
pub mod ra;
pub mod relation;
pub mod stats;

pub use ast::{Atom, CmpOp, Constraint, Program, ProgramBuilder, RelationDecl, Rule, Term};
pub use ebm::EbmConfig;
pub use engine::{EngineConfig, GpulogEngine};
pub use error::{EngineError, EngineResult};
pub use parser::parse_program;
pub use planner::{compile, CompiledProgram};
pub use program::Gpulog;
pub use ra::NwayStrategy;
pub use stats::{IterationRecord, Phase, RunStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<GpulogEngine>();
        assert_send::<Gpulog>();
        assert_send::<RunStats>();
        assert_send::<EngineConfig>();
    }
}
