//! # GPUlog: a data-parallel Datalog engine over the Hash-Indexed Sorted Array
//!
//! This crate is the core of the reproduction of *"Optimizing Datalog for
//! the GPU"* (ASPLOS 2025). It implements a complete Datalog engine — a
//! Soufflé-style front end, a rule planner, and a semi-naïve fixpoint
//! evaluator — whose relational-algebra kernels run on the simulated GPU
//! substrate of [`gpulog_device`] and store relations in the HISA data
//! structure of [`gpulog_hisa`].
//!
//! The three engine-level contributions of the paper are all here:
//!
//! * **HISA-backed iterated relational algebra** — joins enter the inner
//!   relation through a hash table and scan a sorted index array
//!   ([`ra::join`]).
//! * **Temporarily-materialized n-way joins** — rule bodies are decomposed
//!   into chains of binary joins materialized into temporaries; the fused
//!   nested-loop alternative is provided for ablation ([`ra::nway`]).
//! * **Eager buffer management** — merge buffers are retained across
//!   iterations and over-allocated by a tunable factor ([`ebm`]).
//!
//! ## Architecture: Batch → Op → Backend
//!
//! Evaluation is layered (see `docs/architecture.md` in the repository for
//! the full picture):
//!
//! 1. **Data** — tuples move between operators as
//!    [`gpulog_hisa::TupleBatch`]es: owned, arity-tagged, row-major
//!    buffers whose *sorted + unique* flag turns fast paths (such as the
//!    sort/dedup-free delta HISA build) from call-site conventions into
//!    type-driven dispatch.
//! 2. **Operators** — the planner compiles each rule into a [`planner::RulePlan`]
//!    and lowers it to an [`ra::RaPipeline`] of [`ra::RaOp`]s
//!    (`Scan`, `HashJoin`, `FusedJoin`, `AntiJoin`, `Project`, `Reduce`,
//!    `Diff`).
//! 3. **Backend** — a [`backend::Backend`] executes pipelines against an
//!    [`backend::EvalContext`]; the stock [`backend::SerialBackend`] runs
//!    operator-at-a-time on one simulated device,
//!    [`backend::ShardedBackend`] hash-partitions relations by join key
//!    and fans each join / delta-population op across the persistent
//!    worker pool as one epoch of per-shard tasks, and
//!    [`backend::MultiGpuBackend`] pins those shards to the modeled
//!    devices of a [`DeviceTopology`]
//!    ([`EngineConfig::with_device_topology`]), attributing per-shard
//!    work to per-device counters and charging the delta exchange to the
//!    topology's link model ([`RunStats::topology`]).
//!    [`backend::PipelinedBackend`] breaks the per-iteration barrier on
//!    top of sharded execution: delta merges are double-buffered and run
//!    on the device's background lane so iteration *k+1*'s joins overlap
//!    iteration *k*'s merge ([`EngineConfig::with_pipelined`] or the
//!    builder's `.pipelined(..)`; overlap is reported through
//!    [`RunStats`]'s `overlap_nanos` / `pipeline_stall_nanos` /
//!    `epochs_in_flight`, and the bench harness selects it with a
//!    `pipelined:N` backend spec) — all with fixpoints byte-identical to
//!    the serial backend's. Select sharding with
//!    [`EngineConfig::with_shard_count`] or the builder's
//!    `.shard_count(..)` knob:
//!
//! ```
//! use gpulog::{EngineConfig, GpulogEngine};
//! use gpulog_device::{Device, profile::DeviceProfile};
//!
//! # fn main() -> Result<(), gpulog::EngineError> {
//! let device = Device::new(DeviceProfile::nvidia_h100());
//! let src = r"
//!     .decl Edge(x: number, y: number)
//!     .input Edge
//!     .decl Reach(x: number, y: number)
//!     .output Reach
//!     Reach(x, y) :- Edge(x, y).
//!     Reach(x, y) :- Edge(x, z), Reach(z, y).
//! ";
//! let engine = GpulogEngine::builder(&device)
//!     .program(src)
//!     .shard_count(4) // hash-partition relations 4 ways
//!     .build()?;
//! assert_eq!(engine.backend().name(), "sharded");
//! assert_eq!(engine.config().shard_count, 4);
//! // Or overlap iterations: delta merges run in the background while the
//! // next iteration's joins execute.
//! let overlapped = GpulogEngine::builder(&device)
//!     .program(src)
//!     .pipelined(4)
//!     .build()?;
//! assert_eq!(overlapped.backend().name(), "pipelined");
//! # Ok(())
//! # }
//! ```
//!
//! ## Quick start
//!
//! Build an engine with [`GpulogEngine::builder`], load facts, run to
//! fixpoint, and read the results back:
//!
//! ```
//! use gpulog::GpulogEngine;
//! use gpulog_device::{Device, profile::DeviceProfile};
//!
//! # fn main() -> Result<(), gpulog::EngineError> {
//! let device = Device::new(DeviceProfile::nvidia_h100());
//! let mut reach = GpulogEngine::builder(&device)
//!     .program(r"
//!         .decl Edge(x: number, y: number)
//!         .input Edge
//!         .decl Reach(x: number, y: number)
//!         .output Reach
//!         Reach(x, y) :- Edge(x, y).
//!         Reach(x, y) :- Edge(x, z), Reach(z, y).
//!     ")
//!     .build()?;
//! reach.add_facts("Edge", [[0, 1], [1, 2], [2, 3]])?;
//! let stats = reach.run()?;
//! assert_eq!(reach.relation_size("Reach"), Some(6));
//! // Results are available as borrowed rows or owned batches.
//! assert!(reach.relation_tuples_iter("Reach").unwrap().count() == 6);
//! assert_eq!(reach.relation_batch("Reach").unwrap().len(), 6);
//! println!("fixpoint in {} iterations", stats.iterations);
//! # Ok(())
//! # }
//! ```
//!
//! The [`Gpulog`] facade remains for the one-liner workflow, and
//! [`GpulogEngine::from_source`] for constructing with an explicit
//! [`EngineConfig`].
//!
//! ## Linting and optimizing the program before it runs
//!
//! Between parsing and planning, every program passes through
//! [`analysis::passes`]: [`lint_program`] reports span-carrying
//! diagnostics with stable `GLnnn` codes (unused relations, unreachable
//! rules, singleton variables, duplicate literals, always-false rules,
//! cross-rule constant mismatches, subsumed rules), and
//! [`optimize_program`] applies semantics-preserving rewrites — dead-rule
//! elimination, constant propagation, duplicate-literal and
//! subsumed-rule removal — before the planner lowers the program. The
//! default [`LintLevel::Warn`] collects findings behind
//! [`GpulogEngine::diagnostics`]; [`EngineConfig::with_lint`] with
//! [`LintLevel::Deny`] turns any finding into a build error:
//!
//! ```
//! use gpulog::{EngineError, GpulogEngine, LintCode, LintLevel};
//! use gpulog_device::{Device, profile::DeviceProfile};
//!
//! let device = Device::new(DeviceProfile::nvidia_h100());
//! let src = r"
//!     .decl Edge(x: number, y: number)
//!     .input Edge
//!     .decl Reach(x: number, y: number)
//!     .output Reach
//!     Reach(x, y) :- Edge(x, y), Edge(x, stray).
//!     Reach(x, y) :- Edge(x, z), Reach(z, y).
//! ";
//! // Warn (the default): the engine builds, findings are queryable.
//! let engine = GpulogEngine::builder(&device).program(src).build().unwrap();
//! assert!(engine.diagnostics().has(LintCode::SingletonVariable));
//! for finding in engine.diagnostics() {
//!     println!("{finding}"); // warning[GL003]: ... at line 6, column 1
//! }
//! // Deny: the same program refuses to build.
//! let err = GpulogEngine::builder(&device)
//!     .program(src)
//!     .lint(LintLevel::Deny)
//!     .build()
//!     .unwrap_err();
//! assert!(matches!(err, EngineError::LintDenied { count: 1, .. }));
//! ```
//!
//! The same passes drive the `gpulog-lint` command-line tool in the
//! bench crate, which CI runs over every embedded workspace program with
//! `--deny-warnings`.
//!
//! ## Point queries without the full closure
//!
//! When the caller asks one question — "what is reachable from *this*
//! node?" — materializing the whole fixpoint is wasted work. Attach a
//! `?-` goal (or call [`GpulogEngine::run_query_with`] ad hoc) and the
//! engine rewrites the program with magic sets
//! ([`analysis::magic_rewrite`]): rules are specialized to the goal's
//! bound/free adornment, a magic relation seeded from the goal constants
//! restricts derivation to demanded bindings, and the rewritten program
//! runs through the same planner and backends as any other. The answers
//! are byte-identical to filtering the full closure, but only the
//! demanded cone is materialized ([`engine::QueryResult`] reports how
//! much):
//!
//! ```
//! use gpulog::GpulogEngine;
//! use gpulog_device::{Device, profile::DeviceProfile};
//!
//! # fn main() -> Result<(), gpulog::EngineError> {
//! let device = Device::new(DeviceProfile::nvidia_h100());
//! let mut reach = GpulogEngine::builder(&device)
//!     .program(r"
//!         .decl Edge(x: number, y: number)
//!         .input Edge
//!         .decl Reach(x: number, y: number)
//!         .output Reach
//!         Reach(x, y) :- Edge(x, y).
//!         Reach(x, z) :- Reach(x, y), Edge(y, z).
//!         ?- Reach(0, y).
//!     ")
//!     .build()?;
//! reach.add_facts("Edge", [[0, 1], [1, 2], [7, 8], [8, 9]])?;
//! let result = reach.run_query()?; // runs the ?- goal, not the closure
//! assert_eq!(result.answers.as_flat(), &[0, 1, 0, 2]);
//! // The 7→8→9 component was never demanded, so it was never derived.
//! assert!(result.tuples_materialized < 6);
//! # Ok(())
//! # }
//! ```
//!
//! ## Stratified negation and aggregates
//!
//! Rule bodies are lists of [`ast::Literal`]s — positive or negated atoms
//! (`!Blocked(y)` in source, [`ast::RuleBuilder::body_not`] in the
//! builder) — and heads may carry one aggregate (`count`/`min`/`max`/`sum`
//! over a body-bound variable). The engine stratifies the program
//! ([`analysis::stratify_program`]): each stratum runs its own semi-naïve
//! fixpoint, negation lowers to [`ra::RaOp::AntiJoin`] against the
//! completed lower stratum, and aggregates to a trailing
//! [`ra::RaOp::Reduce`]. Recursion through negation or aggregation is
//! rejected with the typed [`EngineError::CyclicNegation`]:
//!
//! ```
//! use gpulog::GpulogEngine;
//! use gpulog_device::{Device, profile::DeviceProfile};
//!
//! # fn main() -> Result<(), gpulog::EngineError> {
//! let device = Device::new(DeviceProfile::nvidia_h100());
//! let mut engine = GpulogEngine::builder(&device)
//!     .program(r"
//!         .decl Edge(x: number, y: number)
//!         .input Edge
//!         .decl Blocked(x: number)
//!         .input Blocked
//!         .decl Reach(x: number, y: number)
//!         .output Reach
//!         Reach(x, y) :- Edge(x, y), !Blocked(y).
//!         Reach(x, y) :- Reach(x, z), Edge(z, y), !Blocked(y).
//!         .decl PathLen(x: number, y: number, d: number)
//!         .input PathLen
//!         .decl SP(x: number, y: number, d: number)
//!         .output SP
//!         SP(x, y, min(d)) :- PathLen(x, y, d).
//!     ")
//!     .build()?;
//! engine.add_facts("Edge", [[0, 1], [1, 2], [2, 3]])?;
//! engine.add_facts("Blocked", [[2]])?;
//! engine.add_facts("PathLen", [[0, 3, 7], [0, 3, 4]])?;
//! engine.run()?;
//! // Nothing reaches through the blocked node 2.
//! assert_eq!(engine.relation_size("Reach"), Some(2));
//! assert!(!engine.contains("Reach", &[0, 2]));
//! // The min aggregate keeps one row per (x, y) group.
//! assert_eq!(engine.relation_tuples("SP"), Some(vec![vec![0, 3, 4]]));
//! # Ok(())
//! # }
//! ```
//!
//! ## Serving a fixpoint
//!
//! A completed fixpoint publishes as an immutable, cheaply-clonable
//! [`FixpointSnapshot`] via [`GpulogEngine::snapshot`] (a typed
//! [`EngineError::NoFixpoint`] before the first run). Snapshots share the
//! engine's relation storage by `Arc`; the engine's *next* run
//! copy-on-write-detaches anything a live snapshot still holds, so a
//! snapshot is byte-stable forever:
//!
//! ```
//! # use gpulog::GpulogEngine;
//! # use gpulog_device::{Device, profile::DeviceProfile};
//! # fn main() -> Result<(), gpulog::EngineError> {
//! # let device = Device::new(DeviceProfile::nvidia_h100());
//! # let mut reach = GpulogEngine::builder(&device)
//! #     .program(r"
//! #         .decl Edge(x: number, y: number)
//! #         .input Edge
//! #         .decl Reach(x: number, y: number)
//! #         .output Reach
//! #         Reach(x, y) :- Edge(x, y).
//! #         Reach(x, y) :- Edge(x, z), Reach(z, y).
//! #     ")
//! #     .build()?;
//! # reach.add_facts("Edge", [[0, 1], [1, 2], [2, 3]])?;
//! # reach.run()?;
//! let snapshot = reach.snapshot()?; // generation 1
//! assert!(snapshot.contains("Reach", &[0, 3]));
//! assert_eq!(
//!     snapshot.lookup("Reach", &[1]).unwrap(), // prefix = point lookup
//!     vec![vec![1, 2], vec![1, 3]],
//! );
//! // Grow the EDB and re-run: the old snapshot still serves generation 1.
//! reach.insert_facts_batch("Edge", &gpulog::TupleBatch::from_rows(2, [[3u32, 4]]))?;
//! reach.run()?;
//! assert_eq!(snapshot.relation_size("Reach"), Some(6));
//! assert_eq!(reach.snapshot()?.relation_size("Reach"), Some(10));
//! # Ok(())
//! # }
//! ```
//!
//! The `gpulog-serve` crate wraps this into a concurrent serving layer —
//! a `ServeWriter` owns the engine and publishes each fixpoint, while any
//! number of reader threads query through clonable `ServeHandle`s:
//!
//! ```rust,ignore
//! use gpulog_serve::ServeWriter;
//!
//! let mut writer = ServeWriter::new(engine)?;   // runs + publishes gen 1
//! let handle = writer.handle();                  // clone one per reader
//! std::thread::spawn(move || handle.point_lookup("Reach", &[0]));
//! writer.insert_facts_batch("Edge", &batch)?;    // stage the next EDB
//! writer.refresh()?;                             // re-run, swap atomically
//! ```

pub mod analysis;
pub mod ast;
pub mod backend;
pub mod ebm;
pub mod engine;
pub mod error;
pub mod parser;
pub mod planner;
pub mod program;
pub mod ra;
pub mod relation;
pub mod snapshot;
pub mod stats;

pub use analysis::passes::{
    lint_program, optimize_program, Diagnostic, DiagnosticLevel, LintCode, LintLevel,
    OptimizeReport, ProgramDiagnostics,
};
pub use analysis::{magic_rewrite, stratify_program, MagicProgram};
pub use ast::{
    Aggregate, AggregateOp, Atom, CmpOp, Constraint, Literal, Program, ProgramBuilder, Query,
    RelationDecl, Rule, RuleBuilder, Span, Term,
};
pub use backend::{
    Backend, EvalContext, MultiGpuBackend, PipelineOutcome, PipelinedBackend, SerialBackend,
    ShardedBackend,
};
pub use ebm::EbmConfig;
pub use engine::{EngineBuilder, EngineConfig, GpulogEngine, QueryResult};
pub use error::{EngineError, EngineResult};
pub use parser::parse_program;
pub use planner::{compile, lower_program, lower_rule_plan, CompiledProgram, LoweredStratum};
pub use program::Gpulog;
pub use ra::{NwayStrategy, RaOp, RaPipeline};
pub use snapshot::FixpointSnapshot;

pub use gpulog_device::topology::{DeviceTopology, LinkProfile, TopologyReport};
pub use gpulog_hisa::TupleBatch;
pub use stats::{IterationRecord, Phase, RunStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<GpulogEngine>();
        assert_send::<Gpulog>();
        assert_send::<RunStats>();
        assert_send::<EngineConfig>();
        assert_send::<TupleBatch>();
        assert_send::<RaPipeline>();
        assert_send::<SerialBackend>();
        assert_send::<PipelinedBackend>();
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FixpointSnapshot>();
    }
}
