//! Runtime storage for one relation: the full / delta / new triple of
//! semi-naïve evaluation (paper Section 2 and Figure 3), each version backed
//! by HISA indices built on demand for the join keys the plans require.

use crate::ebm::EbmConfig;
use crate::error::EngineResult;
use gpulog_device::Device;
use gpulog_hisa::{
    partition_flat_by_key_hash, rows_are_sorted_unique, Hisa, IndexSpec, TupleBatch,
};
use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::Arc;

/// One version (full or delta) of a relation, with its indices.
#[derive(Debug)]
pub struct RelationVersion {
    arity: usize,
    /// Canonical index over all columns in original order. Because the full
    /// key's permutation is the identity, its data array holds tuples in the
    /// relation's declared column order, which makes it the authoritative
    /// tuple store for this version.
    canonical: Hisa,
    /// Secondary indices keyed by specific column sets, built lazily.
    by_key: HashMap<Vec<usize>, Hisa>,
    /// Hash-sharded indices, keyed by `(key columns, shard count)`: shard
    /// `i` holds exactly the tuples whose key values satisfy
    /// [`gpulog_hisa::shard_of`]`(key, shards) == i`, each shard indexed on the key
    /// columns. Built lazily by the sharded backend; kept consistent across
    /// delta merges like the flat secondary indices.
    sharded: HashMap<(Vec<usize>, usize), Vec<Hisa>>,
    load_factor: f64,
}

impl RelationVersion {
    pub(crate) fn empty(device: &Device, arity: usize, load_factor: f64) -> EngineResult<Self> {
        Ok(RelationVersion {
            arity,
            canonical: Hisa::build_with_load_factor(
                device,
                IndexSpec::full_key(arity),
                &[],
                load_factor,
            )?,
            by_key: HashMap::new(),
            sharded: HashMap::new(),
            load_factor,
        })
    }

    fn from_tuples(
        device: &Device,
        arity: usize,
        tuples: &[u32],
        load_factor: f64,
    ) -> EngineResult<Self> {
        Ok(RelationVersion {
            arity,
            canonical: Hisa::build_with_load_factor(
                device,
                IndexSpec::full_key(arity),
                tuples,
                load_factor,
            )?,
            by_key: HashMap::new(),
            sharded: HashMap::new(),
            load_factor,
        })
    }

    /// [`RelationVersion::from_tuples`] for tuples that are already
    /// lexicographically sorted and duplicate-free (the shape the
    /// delta-population phase produces): the canonical index is built with
    /// the HISA fast path, skipping its sort and dedup entirely.
    fn from_sorted_unique_tuples(
        device: &Device,
        arity: usize,
        tuples: &[u32],
        load_factor: f64,
    ) -> EngineResult<Self> {
        Ok(RelationVersion {
            arity,
            canonical: Hisa::build_from_sorted_unique(
                device,
                IndexSpec::full_key(arity),
                tuples,
                load_factor,
            )?,
            by_key: HashMap::new(),
            sharded: HashMap::new(),
            load_factor,
        })
    }

    /// Builds a version from a [`TupleBatch`], letting the batch's
    /// sorted-unique flag pick between the general build and the
    /// sort/dedup-free fast path — the type-driven replacement for choosing
    /// between [`RelationVersion::from_tuples`] and
    /// [`RelationVersion::from_sorted_unique_tuples`] by hand.
    fn from_batch(device: &Device, batch: &TupleBatch, load_factor: f64) -> EngineResult<Self> {
        Ok(RelationVersion {
            arity: batch.arity(),
            canonical: Hisa::build_from_batch(
                device,
                IndexSpec::full_key(batch.arity()),
                batch,
                load_factor,
            )?,
            by_key: HashMap::new(),
            sharded: HashMap::new(),
            load_factor,
        })
    }

    /// Number of tuples in this version.
    pub fn len(&self) -> usize {
        self.canonical.len()
    }

    /// Whether the version holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.canonical.is_empty()
    }

    /// The canonical (all-columns) index.
    pub fn canonical(&self) -> &Hisa {
        &self.canonical
    }

    /// Dense row-major tuples in declared column order.
    pub fn tuples_flat(&self) -> &[u32] {
        self.canonical.data()
    }

    /// Returns the HISA indexed on `key_cols`, building it if necessary.
    /// An empty key set returns the canonical index (used by cross products).
    ///
    /// # Errors
    ///
    /// Returns a device error if building the index exhausts device memory.
    pub fn index_on(&mut self, device: &Device, key_cols: &[usize]) -> EngineResult<&Hisa> {
        // The canonical index covers plain scans (empty key) and the
        // identity full key. A *permuted* full key (e.g. [1, 0]) changes
        // the sort order, so it gets a real secondary index below.
        if is_canonical_key(key_cols, self.arity) {
            return Ok(&self.canonical);
        }
        if !self.by_key.contains_key(key_cols) {
            let spec = IndexSpec::new(self.arity, key_cols.to_vec());
            let hisa = Hisa::build_with_load_factor(
                device,
                spec,
                self.canonical.data(),
                self.load_factor,
            )?;
            self.by_key.insert(key_cols.to_vec(), hisa);
        }
        Ok(&self.by_key[key_cols])
    }

    /// Returns an already-built index on `key_cols` without building one.
    /// An empty or identity key returns the canonical index.
    pub fn existing_index(&self, key_cols: &[usize]) -> Option<&Hisa> {
        if is_canonical_key(key_cols, self.arity) {
            return Some(&self.canonical);
        }
        self.by_key.get(key_cols)
    }

    /// Returns the hash-sharded indices on `key_cols` for the given shard
    /// count, building them if necessary: the version's tuples are
    /// partitioned with [`gpulog_hisa::shard_of`] over their key values and each
    /// partition becomes its own HISA indexed on `key_cols`. All shard
    /// builds are dispatched to the worker pool as a single epoch, so the
    /// cost of a sharded index build is one pool hand-off regardless of the
    /// shard count.
    ///
    /// # Errors
    ///
    /// Returns a device error if building any shard exhausts device memory.
    ///
    /// # Panics
    ///
    /// Panics if `key_cols` is empty (there is no key to shard on); a zero
    /// shard count is unrepresentable ([`NonZeroUsize`]).
    pub fn sharded_index_on(
        &mut self,
        device: &Device,
        key_cols: &[usize],
        shards: NonZeroUsize,
    ) -> EngineResult<&[Hisa]> {
        assert!(!key_cols.is_empty(), "sharding requires a join key");
        let cache_key = (key_cols.to_vec(), shards.get());
        if !self.sharded.contains_key(&cache_key) {
            let parts =
                partition_flat_by_key_hash(self.canonical.data(), self.arity, key_cols, shards);
            let arity = self.arity;
            let load_factor = self.load_factor;
            // A delta version's canonical data array is sorted and
            // duplicate-free (both delta construction paths guarantee it),
            // and each hash partition is a subsequence of it — so every
            // shard qualifies for the sort/dedup-free re-index build. A
            // full version loses that shape on its first merge (merges
            // concatenate data arrays), hence the linear check rather than
            // an assumption.
            let sorted_unique = rows_are_sorted_unique(self.canonical.data(), self.arity);
            let mut slots: Vec<Option<EngineResult<Hisa>>> =
                (0..shards.get()).map(|_| None).collect();
            let jobs: Vec<(Vec<u32>, &mut Option<EngineResult<Hisa>>)> =
                parts.into_iter().zip(slots.iter_mut()).collect();
            device.executor().run_tasks(jobs, |_, (data, slot)| {
                let spec = IndexSpec::new(arity, key_cols.to_vec());
                let built = if sorted_unique {
                    Hisa::build_reindexed_from_sorted_unique(device, spec, &data, load_factor)
                } else {
                    Hisa::build_with_load_factor(device, spec, &data, load_factor)
                };
                *slot = Some(built.map_err(Into::into));
            });
            let built: Vec<Hisa> = slots
                .into_iter()
                .map(|slot| slot.expect("every shard build ran"))
                .collect::<EngineResult<_>>()?;
            self.sharded.insert(cache_key.clone(), built);
        }
        Ok(&self.sharded[&cache_key])
    }

    /// Returns already-built sharded indices without building them.
    pub fn existing_sharded_index(
        &self,
        key_cols: &[usize],
        shards: NonZeroUsize,
    ) -> Option<&[Hisa]> {
        self.sharded
            .get(&(key_cols.to_vec(), shards.get()))
            .map(Vec::as_slice)
    }

    /// The `(key columns, shard count)` specs of every cached shard map on
    /// this version — the partitionings a delta exchange must feed (each
    /// cached map's shard `i` needs exactly the delta rows whose key hashes
    /// to `i`).
    pub fn sharded_index_specs(&self) -> Vec<(Vec<usize>, usize)> {
        self.sharded.keys().cloned().collect()
    }

    /// Device bytes attributable to this version (canonical plus secondary
    /// and sharded indices).
    pub fn device_bytes(&self) -> usize {
        self.canonical.device_bytes()
            + self.by_key.values().map(Hisa::device_bytes).sum::<usize>()
            + self
                .sharded
                .values()
                .flatten()
                .map(Hisa::device_bytes)
                .sum::<usize>()
    }

    /// Drops all secondary and sharded indices (they will be rebuilt
    /// lazily).
    pub fn clear_secondary_indices(&mut self) {
        self.by_key.clear();
        self.sharded.clear();
    }

    /// Deep-copies the version — canonical index, secondary indices, and
    /// cached shard maps — onto fresh device buffers. This is the
    /// copy-on-write detach behind snapshot publication: once a full
    /// version has been shared with readers (see
    /// [`RelationStorage::share_full`]), the writer clones it before the
    /// next merge instead of mutating the published data.
    ///
    /// # Errors
    ///
    /// Returns a device error if the device cannot hold a second copy.
    pub(crate) fn try_clone(&self) -> EngineResult<Self> {
        let canonical = self.canonical.try_clone()?;
        let mut by_key = HashMap::with_capacity(self.by_key.len());
        for (key, hisa) in &self.by_key {
            by_key.insert(key.clone(), hisa.try_clone()?);
        }
        let mut sharded = HashMap::with_capacity(self.sharded.len());
        for (key, hisas) in &self.sharded {
            let copies: Vec<Hisa> = hisas
                .iter()
                .map(|h| h.try_clone().map_err(Into::into))
                .collect::<EngineResult<_>>()?;
            sharded.insert(key.clone(), copies);
        }
        Ok(RelationVersion {
            arity: self.arity,
            canonical,
            by_key,
            sharded,
            load_factor: self.load_factor,
        })
    }

    /// Merges `delta` (sorted, duplicate-free, disjoint from this version)
    /// into this **full** version, honouring the eager-buffer-management
    /// policy — the version-level body of
    /// [`RelationStorage::merge_delta_into_full`], which detaches any
    /// published snapshot first and then delegates here. Secondary indices
    /// and cached shard maps are kept consistent (shard-locally, one
    /// worker-pool epoch) exactly as documented on the storage method.
    ///
    /// # Errors
    ///
    /// Returns a device error if the merged relation does not fit.
    pub(crate) fn merge_delta(
        &mut self,
        device: &Device,
        delta: &RelationVersion,
        ebm: &EbmConfig,
    ) -> EngineResult<()> {
        let delta_rows = delta.len();
        if delta_rows == 0 {
            return Ok(());
        }
        let reserve = ebm.reserve_rows(delta_rows);
        if reserve > 0 {
            self.canonical.reserve_additional_rows(reserve)?;
        }
        self.canonical.merge_from(delta.canonical())?;
        // Keep secondary indices consistent: merge the delta (re-indexed on
        // each secondary key) into every existing secondary index. The
        // delta's canonical data array is always sorted and duplicate-free
        // (both delta construction paths guarantee it), so each re-index is
        // a key-column-only permutation sort — no dedup, no full rebuild.
        let keys: Vec<Vec<usize>> = self.by_key.keys().cloned().collect();
        for key in keys {
            let delta_indexed = Hisa::build_reindexed_from_sorted_unique(
                device,
                IndexSpec::new(self.arity, key.clone()),
                delta.tuples_flat(),
                self.load_factor,
            )?;
            let target = self.by_key.get_mut(&key).expect("index exists");
            if reserve > 0 {
                target.reserve_additional_rows(reserve)?;
            }
            target.merge_from(&delta_indexed)?;
        }
        // Sharded indices stay consistent the same way, but shard-locally:
        // the delta is partitioned with the same key hash as each cached
        // entry, so shard i of the delta merges into shard i of the full
        // representation — independent merges dispatched to the worker pool
        // as one epoch. Because each delta partition is a subsequence of the
        // (sorted, duplicate-free) delta data array, every piece keeps the
        // sorted-unique re-index fast path. Unlike the canonical and
        // secondary indices above (which each absorb the whole delta), a
        // shard only absorbs its own slice, so its EBM slack is sized from
        // the slice — not the full delta — or S shards would reserve S
        // times the intended headroom.
        let arity = self.arity;
        let load_factor = self.load_factor;
        let delta_flat = delta.canonical.data();
        let mut jobs: Vec<(&mut Hisa, Vec<u32>, Vec<usize>, usize)> = Vec::new();
        for ((key_cols, shards), shard_hisas) in &mut self.sharded {
            let shards = NonZeroUsize::new(*shards).expect("cached shard maps are non-empty");
            let parts = partition_flat_by_key_hash(delta_flat, arity, key_cols, shards);
            for (target, rows) in shard_hisas.iter_mut().zip(parts) {
                if !rows.is_empty() {
                    let shard_reserve = ebm.reserve_rows(rows.len() / arity);
                    jobs.push((target, rows, key_cols.clone(), shard_reserve));
                }
            }
        }
        if !jobs.is_empty() {
            let mut results: Vec<EngineResult<()>> = jobs.iter().map(|_| Ok(())).collect();
            let jobs: Vec<_> = jobs.into_iter().zip(results.iter_mut()).collect();
            device.executor().run_tasks(
                jobs,
                |_, ((target, rows, key_cols, shard_reserve), result)| {
                    *result = (|| -> EngineResult<()> {
                        let indexed = Hisa::build_reindexed_from_sorted_unique(
                            device,
                            IndexSpec::new(arity, key_cols),
                            &rows,
                            load_factor,
                        )?;
                        if shard_reserve > 0 {
                            target.reserve_additional_rows(shard_reserve)?;
                        }
                        target.merge_from(&indexed)?;
                        Ok(())
                    })();
                },
            );
            results.into_iter().collect::<EngineResult<()>>()?;
        }
        if !ebm.enabled {
            self.canonical.shrink_to_fit();
            for idx in self.by_key.values_mut() {
                idx.shrink_to_fit();
            }
            for idx in self.sharded.values_mut().flatten() {
                idx.shrink_to_fit();
            }
        }
        Ok(())
    }

    /// Merges a batch of deferred delta runs (each sorted-unique, pairwise
    /// disjoint, and disjoint from this version) into this **full** version
    /// in one pass — the coalesced sibling of
    /// [`RelationStorage::merge_delta_into_full`], used by the pipelined
    /// backend to drain its double buffer. For every maintained layer
    /// (canonical, each secondary index, each cached shard map) the runs
    /// are combined with [`Hisa::build_from_sorted_unique_runs`] and merged
    /// with a single [`Hisa::merge_from`], so the O(|full|) sorted-index
    /// and inverse-permutation streaming passes are paid once per drain
    /// instead of once per delta. Merge associativity (the runs' rows are
    /// globally distinct) keeps the result byte-identical to merging the
    /// runs one at a time.
    ///
    /// This takes `&mut self` on the version — not the storage — so the
    /// backend can move the full version onto the device's background lane
    /// while the foreground keeps evaluating.
    ///
    /// # Errors
    ///
    /// Returns a device error if the merged relation does not fit.
    ///
    /// # Panics
    ///
    /// Panics if any run's arity differs or a run does not carry the
    /// sorted-unique flag.
    pub(crate) fn merge_sorted_unique_runs(
        &mut self,
        device: &Device,
        runs: &[TupleBatch],
        ebm: &EbmConfig,
    ) -> EngineResult<()> {
        for run in runs {
            assert_eq!(run.arity(), self.arity, "delta run arity mismatch");
            assert!(
                run.is_sorted_unique(),
                "merge_sorted_unique_runs requires sorted-unique runs"
            );
        }
        let total_rows: usize = runs.iter().map(TupleBatch::len).sum();
        if total_rows == 0 {
            return Ok(());
        }
        let arity = self.arity;
        let load_factor = self.load_factor;
        let flats: Vec<&[u32]> = runs.iter().map(TupleBatch::as_flat).collect();
        let reserve = ebm.reserve_rows(total_rows);
        let combined = Hisa::build_from_sorted_unique_runs(
            device,
            IndexSpec::full_key(arity),
            &flats,
            load_factor,
        )?;
        if reserve > 0 {
            self.canonical.reserve_additional_rows(reserve)?;
        }
        self.canonical.merge_from(&combined)?;
        let keys: Vec<Vec<usize>> = self.by_key.keys().cloned().collect();
        for key in keys {
            let combined = Hisa::build_from_sorted_unique_runs(
                device,
                IndexSpec::new(arity, key.clone()),
                &flats,
                load_factor,
            )?;
            let target = self.by_key.get_mut(&key).expect("index exists");
            if reserve > 0 {
                target.reserve_additional_rows(reserve)?;
            }
            target.merge_from(&combined)?;
        }
        // Shard maps drain shard-locally, exactly like
        // `merge_delta_into_full`: every run partitions by the cached
        // entry's key hash, so shard i absorbs only its own slices of the
        // runs — one worker-pool epoch over all (entry, shard) pairs.
        let mut jobs: Vec<ShardMergeJob<'_>> = Vec::new();
        for ((key_cols, shards), shard_hisas) in &mut self.sharded {
            let shards = NonZeroUsize::new(*shards).expect("cached shard maps are non-empty");
            let mut per_shard: Vec<Vec<Vec<u32>>> = (0..shards.get()).map(|_| Vec::new()).collect();
            for flat in &flats {
                let parts = partition_flat_by_key_hash(flat, arity, key_cols, shards);
                for (shard, rows) in parts.into_iter().enumerate() {
                    if !rows.is_empty() {
                        per_shard[shard].push(rows);
                    }
                }
            }
            for (target, slices) in shard_hisas.iter_mut().zip(per_shard) {
                if !slices.is_empty() {
                    let slice_rows: usize = slices.iter().map(|s| s.len() / arity).sum();
                    let shard_reserve = ebm.reserve_rows(slice_rows);
                    jobs.push((target, slices, key_cols.clone(), shard_reserve));
                }
            }
        }
        if !jobs.is_empty() {
            let mut results: Vec<EngineResult<()>> = jobs.iter().map(|_| Ok(())).collect();
            let jobs: Vec<_> = jobs.into_iter().zip(results.iter_mut()).collect();
            device.executor().run_tasks(
                jobs,
                |_, ((target, slices, key_cols, shard_reserve), result)| {
                    *result = (|| -> EngineResult<()> {
                        let slice_refs: Vec<&[u32]> = slices.iter().map(Vec::as_slice).collect();
                        let combined = Hisa::build_from_sorted_unique_runs(
                            device,
                            IndexSpec::new(arity, key_cols),
                            &slice_refs,
                            load_factor,
                        )?;
                        if shard_reserve > 0 {
                            target.reserve_additional_rows(shard_reserve)?;
                        }
                        target.merge_from(&combined)?;
                        Ok(())
                    })();
                },
            );
            results.into_iter().collect::<EngineResult<()>>()?;
        }
        if !ebm.enabled {
            self.canonical.shrink_to_fit();
            for idx in self.by_key.values_mut() {
                idx.shrink_to_fit();
            }
            for idx in self.sharded.values_mut().flatten() {
                idx.shrink_to_fit();
            }
        }
        Ok(())
    }
}

/// One shard-map drain job: the target shard HISA, the run slices routed
/// to it, the map's key columns, and the rows to pre-reserve.
type ShardMergeJob<'a> = (&'a mut Hisa, Vec<Vec<u32>>, Vec<usize>, usize);

/// Whether `key_cols` is served by the canonical (identity full-key)
/// index: an empty key (plain scan) or exactly `[0, 1, ..., arity - 1]`.
fn is_canonical_key(key_cols: &[usize], arity: usize) -> bool {
    key_cols.is_empty() || key_cols.iter().copied().eq(0..arity)
}

/// Storage for one relation across the semi-naïve loop.
///
/// The `full` version is held behind an [`Arc`] so a completed fixpoint can
/// be *published* — shared with concurrent readers at zero copy cost via
/// [`RelationStorage::share_full`] — while the writer keeps evaluating.
/// Every mutating path goes through [`RelationStorage::full_mut`] (or the
/// crate-internal `take_full`), which detach (deep-copy) the version
/// first if a published snapshot still holds a reference, so readers never
/// observe a torn merge.
#[derive(Debug)]
pub struct RelationStorage {
    /// Relation name (for reporting).
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// The accumulated `full` version, shared with published snapshots.
    full: Arc<RelationVersion>,
    /// The previous iteration's `delta` version.
    pub delta: RelationVersion,
    /// Raw tuples derived in the current iteration (`new`), accumulated
    /// across rule plans before deduplication.
    pub new_tuples: Vec<u32>,
    device: Device,
    load_factor: f64,
}

impl RelationStorage {
    /// Creates empty storage for a relation.
    ///
    /// # Errors
    ///
    /// Returns a device error if even the empty indices cannot be allocated.
    pub fn new(device: &Device, name: &str, arity: usize, load_factor: f64) -> EngineResult<Self> {
        Ok(RelationStorage {
            name: name.to_string(),
            arity,
            full: Arc::new(RelationVersion::empty(device, arity, load_factor)?),
            delta: RelationVersion::empty(device, arity, load_factor)?,
            new_tuples: Vec::new(),
            device: device.clone(),
            load_factor,
        })
    }

    /// Read access to the full version.
    pub fn full(&self) -> &RelationVersion {
        &self.full
    }

    /// A shared handle on the full version — the snapshot publish
    /// primitive. Cloning the [`Arc`] is O(1); the engine bundles one per
    /// relation into a `FixpointSnapshot` after [`crate::backend::Backend::fence`]
    /// has settled every deferred merge.
    pub fn share_full(&self) -> Arc<RelationVersion> {
        Arc::clone(&self.full)
    }

    /// Whether the full version is currently shared with a published
    /// snapshot (so the next mutation will copy-on-write detach).
    pub fn full_is_shared(&self) -> bool {
        Arc::strong_count(&self.full) > 1
    }

    /// Mutable access to the full version, detaching it from any published
    /// snapshot first: if a snapshot still holds the [`Arc`], the version
    /// is deep-copied so the mutation cannot tear the published fixpoint.
    ///
    /// # Errors
    ///
    /// Returns a device error if the detach copy does not fit on the
    /// device.
    pub fn full_mut(&mut self) -> EngineResult<&mut RelationVersion> {
        self.detach_full()?;
        Ok(Arc::get_mut(&mut self.full).expect("full version is unique after detach"))
    }

    /// Ensures `self.full` is uniquely owned, copy-on-write detaching it
    /// from any published snapshot.
    fn detach_full(&mut self) -> EngineResult<()> {
        if Arc::get_mut(&mut self.full).is_none() {
            let copy = self.full.try_clone()?;
            self.full = Arc::new(copy);
        }
        Ok(())
    }

    /// Replaces the full version wholesale (the pipelined backend installs
    /// a background-merged version through this).
    pub(crate) fn install_full(&mut self, version: RelationVersion) {
        self.full = Arc::new(version);
    }

    /// Moves the full version out, leaving an empty placeholder — the
    /// pipelined backend's swap for background merges. A version still
    /// shared with a snapshot is deep-copied instead of moved, so the
    /// snapshot keeps its data.
    ///
    /// # Errors
    ///
    /// Returns a device error if the placeholder (or a detach copy) cannot
    /// be allocated.
    pub(crate) fn take_full(&mut self) -> EngineResult<RelationVersion> {
        let placeholder = Arc::new(RelationVersion::empty(
            &self.device,
            self.arity,
            self.load_factor,
        )?);
        let taken = std::mem::replace(&mut self.full, placeholder);
        match Arc::try_unwrap(taken) {
            Ok(version) => Ok(version),
            Err(shared) => shared.try_clone(),
        }
    }

    /// Number of tuples in the full relation.
    pub fn len(&self) -> usize {
        self.full().len()
    }

    /// Whether the full relation is empty.
    pub fn is_empty(&self) -> bool {
        self.full().is_empty()
    }

    /// Iterates the full relation's tuples as borrowed row slices in
    /// declared column order, without allocating per row.
    pub fn tuples_iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.full().tuples_flat().chunks_exact(self.arity.max(1))
    }

    /// Whether the full relation contains `tuple`.
    pub fn contains(&self, tuple: &[u32]) -> bool {
        self.full().canonical().contains(tuple)
    }

    /// The full relation's tuples as an owned [`TupleBatch`]. The rows are
    /// duplicate-free (HISA set semantics) but in *storage* order — merges
    /// concatenate data arrays and keep sortedness in the sorted index — so
    /// the batch does not carry the sorted-unique flag.
    pub fn tuples_batch(&self) -> TupleBatch {
        TupleBatch::new(self.arity, self.full().tuples_flat().to_vec())
    }

    /// Appends raw derived tuples to the `new` buffer.
    pub fn push_new(&mut self, tuples: &[u32]) {
        debug_assert_eq!(tuples.len() % self.arity, 0, "ragged new-tuple buffer");
        self.new_tuples.extend_from_slice(tuples);
    }

    /// Appends a derived batch to the `new` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the batch's arity differs from the relation's.
    pub fn push_new_batch(&mut self, batch: &TupleBatch) {
        assert_eq!(batch.arity(), self.arity, "batch arity mismatch");
        self.new_tuples.extend_from_slice(batch.as_flat());
    }

    /// Replaces the full relation's contents with `tuples` (used when
    /// loading extensional facts).
    ///
    /// # Errors
    ///
    /// Returns a device error if the relation does not fit.
    pub fn load_full(&mut self, tuples: &[u32]) -> EngineResult<()> {
        self.full = Arc::new(RelationVersion::from_tuples(
            &self.device,
            self.arity,
            tuples,
            self.load_factor,
        )?);
        Ok(())
    }

    /// Replaces the delta version with the given (already deduplicated and
    /// full-disjoint) tuples.
    ///
    /// # Errors
    ///
    /// Returns a device error if the delta does not fit.
    pub fn set_delta(&mut self, tuples: &[u32]) -> EngineResult<()> {
        self.delta =
            RelationVersion::from_tuples(&self.device, self.arity, tuples, self.load_factor)?;
        Ok(())
    }

    /// [`RelationStorage::set_delta`] for tuples that are additionally
    /// already sorted lexicographically — exactly what
    /// [`crate::ra::difference()`] emits. The delta HISA is built without
    /// re-sorting or re-deduplicating.
    ///
    /// # Errors
    ///
    /// Returns a device error if the delta does not fit.
    pub fn set_delta_sorted_unique(&mut self, tuples: &[u32]) -> EngineResult<()> {
        self.delta = RelationVersion::from_sorted_unique_tuples(
            &self.device,
            self.arity,
            tuples,
            self.load_factor,
        )?;
        Ok(())
    }

    /// Installs a [`TupleBatch`] as the delta version. The batch's
    /// sorted-unique flag — not a comment at the call site — decides whether
    /// the HISA build skips its sort/dedup passes.
    ///
    /// # Errors
    ///
    /// Returns a device error if the delta does not fit.
    ///
    /// # Panics
    ///
    /// Panics if the batch's arity differs from the relation's.
    pub fn set_delta_batch(&mut self, batch: &TupleBatch) -> EngineResult<()> {
        assert_eq!(batch.arity(), self.arity, "batch arity mismatch");
        self.delta = RelationVersion::from_batch(&self.device, batch, self.load_factor)?;
        Ok(())
    }

    /// Replaces the full relation's contents with a [`TupleBatch`] (the
    /// batch-typed sibling of [`RelationStorage::load_full`]).
    ///
    /// # Errors
    ///
    /// Returns a device error if the relation does not fit.
    ///
    /// # Panics
    ///
    /// Panics if the batch's arity differs from the relation's.
    pub fn load_full_batch(&mut self, batch: &TupleBatch) -> EngineResult<()> {
        assert_eq!(batch.arity(), self.arity, "batch arity mismatch");
        self.full = Arc::new(RelationVersion::from_batch(
            &self.device,
            batch,
            self.load_factor,
        )?);
        Ok(())
    }

    /// Resets delta to empty.
    ///
    /// # Errors
    ///
    /// Returns a device error if the empty index cannot be allocated.
    pub fn clear_delta(&mut self) -> EngineResult<()> {
        self.delta = RelationVersion::empty(&self.device, self.arity, self.load_factor)?;
        Ok(())
    }

    /// Merges the current delta into full, honouring the eager-buffer-
    /// management policy: with EBM on, the canonical full buffer reserves
    /// `k x |delta|` rows of slack before the merge — which, since
    /// [`Hisa::reserve_additional_rows`] also pre-reserves hash-layer
    /// capacity, keeps every following [`Hisa::merge_from`] on the
    /// incremental index-maintenance path (delta-key inserts only, zero
    /// hash rebuilds); with EBM off, slack is trimmed after every merge
    /// (exact-size allocation behaviour).
    ///
    /// Secondary full indices are merged in place with the same delta so the
    /// next iteration's joins see a consistent full relation. They and the
    /// sharded shard-local merges below go through the same `merge_from`,
    /// so they inherit incremental maintenance automatically.
    ///
    /// # Errors
    ///
    /// Returns a device error if the merged relation does not fit.
    pub fn merge_delta_into_full(&mut self, ebm: &EbmConfig) -> EngineResult<()> {
        if self.delta.is_empty() {
            return Ok(());
        }
        // Copy-on-write: a full version shared with a published snapshot is
        // deep-copied before the merge, so readers keep the old fixpoint.
        self.detach_full()?;
        let full = Arc::get_mut(&mut self.full).expect("full version is unique after detach");
        full.merge_delta(&self.device, &self.delta, ebm)
    }

    /// Takes (and clears) the accumulated new-tuple buffer. With EBM
    /// disabled the buffer's capacity is also released, modelling the
    /// allocate/free-every-iteration discipline.
    pub fn take_new(&mut self, ebm: &EbmConfig) -> Vec<u32> {
        if ebm.enabled {
            let mut out = Vec::with_capacity(self.new_tuples.len());
            std::mem::swap(&mut out, &mut self.new_tuples);
            out
        } else {
            std::mem::take(&mut self.new_tuples)
        }
    }

    /// Device bytes attributable to this relation (full + delta versions).
    pub fn device_bytes(&self) -> usize {
        self.full().device_bytes() + self.delta.device_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;
    use gpulog_hisa::DEFAULT_LOAD_FACTOR;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    fn storage(d: &Device) -> RelationStorage {
        RelationStorage::new(d, "Edge", 2, DEFAULT_LOAD_FACTOR).unwrap()
    }

    #[test]
    fn load_full_and_query() {
        let d = device();
        let mut s = storage(&d);
        s.load_full(&[1, 2, 3, 4, 1, 2]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&[3, 4]));
        assert!(!s.contains(&[4, 3]));
        assert_eq!(s.tuples_iter().count(), 2);
        assert_eq!(
            s.tuples_iter().next(),
            Some(&[1u32, 2][..]),
            "rows are borrowed slices in declared column order"
        );
    }

    #[test]
    fn index_on_builds_and_caches_secondary_indices() {
        let d = device();
        let mut s = storage(&d);
        s.load_full(&[1, 2, 3, 2, 5, 6]).unwrap();
        let hits = s
            .full_mut()
            .unwrap()
            .index_on(&d, &[1])
            .unwrap()
            .range_query(&[2])
            .count();
        assert_eq!(hits, 2);
        // Second call hits the cache (no new index).
        let bytes_before = s.full().device_bytes();
        let _ = s.full_mut().unwrap().index_on(&d, &[1]).unwrap();
        assert_eq!(s.full().device_bytes(), bytes_before);
        // Canonical key returns the canonical index without building.
        let _ = s.full_mut().unwrap().index_on(&d, &[0, 1]).unwrap();
        assert_eq!(s.full().device_bytes(), bytes_before);
    }

    #[test]
    fn permuted_full_key_builds_a_real_secondary_index() {
        let d = device();
        let mut s = storage(&d);
        s.load_full(&[1, 2, 3, 4]).unwrap();
        let bytes_before = s.full().device_bytes();
        {
            let idx = s.full_mut().unwrap().index_on(&d, &[1, 0]).unwrap();
            assert_eq!(idx.spec().key_columns(), &[1, 0]);
            // Key order is (column 1, column 0): look up tuple (1, 2) as (2, 1).
            assert_eq!(idx.range_query(&[2, 1]).count(), 1);
            assert_eq!(idx.range_query(&[1, 2]).count(), 0);
        }
        assert!(
            s.full().device_bytes() > bytes_before,
            "a permuted full key must build a real index, not alias the canonical one"
        );
        // The identity full key still returns the canonical index for free.
        let bytes_with_permuted = s.full().device_bytes();
        let _ = s.full_mut().unwrap().index_on(&d, &[0, 1]).unwrap();
        let _ = s.full_mut().unwrap().index_on(&d, &[]).unwrap();
        assert_eq!(s.full().device_bytes(), bytes_with_permuted);
    }

    #[test]
    fn sorted_unique_delta_path_matches_general_path() {
        let d = device();
        let mut a = storage(&d);
        let mut b = storage(&d);
        for s in [&mut a, &mut b] {
            s.load_full(&[1, 2]).unwrap();
            let _ = s.full_mut().unwrap().index_on(&d, &[1]).unwrap();
        }
        // Sorted, deduplicated, disjoint from full — the difference() shape.
        let delta = [0u32, 2, 3, 2, 4, 5];
        a.set_delta(&delta).unwrap();
        b.set_delta_sorted_unique(&delta).unwrap();
        a.merge_delta_into_full(&EbmConfig::default()).unwrap();
        b.merge_delta_into_full(&EbmConfig::default()).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.full_mut()
                .unwrap()
                .index_on(&d, &[1])
                .unwrap()
                .to_sorted_tuples(),
            b.full_mut()
                .unwrap()
                .index_on(&d, &[1])
                .unwrap()
                .to_sorted_tuples()
        );
    }

    #[test]
    fn merge_moves_delta_into_full_and_keeps_indices_consistent() {
        let d = device();
        let mut s = storage(&d);
        s.load_full(&[1, 2]).unwrap();
        // Materialize a secondary index before merging.
        assert_eq!(
            s.full_mut()
                .unwrap()
                .index_on(&d, &[1])
                .unwrap()
                .range_query(&[2])
                .count(),
            1
        );
        s.set_delta(&[3, 2, 4, 5]).unwrap();
        s.merge_delta_into_full(&EbmConfig::default()).unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.contains(&[3, 2]));
        // The secondary index must see the merged tuples too.
        assert_eq!(
            s.full_mut()
                .unwrap()
                .index_on(&d, &[1])
                .unwrap()
                .range_query(&[2])
                .count(),
            2
        );
    }

    #[test]
    fn merge_with_ebm_disabled_trims_capacity() {
        let d = device();
        let mut s = storage(&d);
        s.load_full(&[1, 2]).unwrap();
        s.set_delta(&[3, 4]).unwrap();
        s.merge_delta_into_full(&EbmConfig::disabled()).unwrap();
        assert_eq!(s.len(), 2);
        let d2 = device();
        let mut s2 = storage(&d2);
        s2.load_full(&[1, 2]).unwrap();
        s2.set_delta(&[3, 4]).unwrap();
        s2.merge_delta_into_full(&EbmConfig::with_growth_factor(16.0))
            .unwrap();
        assert_eq!(s2.len(), 2);
        // The EBM run holds at least as much device memory as the trimmed run.
        assert!(d2.tracker().in_use() >= d.tracker().in_use());
    }

    #[test]
    fn push_and_take_new_round_trips() {
        let d = device();
        let mut s = storage(&d);
        s.push_new(&[1, 2]);
        s.push_new(&[3, 4]);
        let taken = s.take_new(&EbmConfig::default());
        assert_eq!(taken, vec![1, 2, 3, 4]);
        assert!(s.take_new(&EbmConfig::default()).is_empty());
    }

    #[test]
    fn batch_paths_agree_with_slice_paths() {
        let d = device();
        let mut a = storage(&d);
        let mut b = storage(&d);
        a.load_full(&[5, 6, 1, 2]).unwrap();
        b.load_full_batch(&TupleBatch::new(2, vec![5, 6, 1, 2]))
            .unwrap();
        assert_eq!(a.tuples_batch(), b.tuples_batch());
        // A sorted-unique batch drives the delta fast path; an unflagged one
        // drives the general path. Both must land on the same delta.
        let sorted = TupleBatch::from_sorted_unique_flat(2, vec![0, 9, 3, 3]);
        let messy = TupleBatch::new(2, vec![3, 3, 0, 9]);
        a.set_delta_batch(&sorted).unwrap();
        b.set_delta_batch(&messy).unwrap();
        assert_eq!(
            a.delta.canonical().to_sorted_tuples(),
            b.delta.canonical().to_sorted_tuples()
        );
        a.push_new_batch(&TupleBatch::from_rows(2, [[7u32, 7]]));
        assert_eq!(a.take_new(&EbmConfig::default()), vec![7, 7]);
    }

    #[test]
    fn coalesced_run_merge_is_byte_identical_to_per_delta_merges() {
        let d = device();
        // Serial reference: merge two deltas one at a time, maintaining a
        // secondary index and a cached shard map throughout.
        let mut serial = storage(&d);
        serial.load_full(&[1, 2, 8, 0]).unwrap();
        let _ = serial.full_mut().unwrap().index_on(&d, &[1]).unwrap();
        let _ = serial
            .full_mut()
            .unwrap()
            .sharded_index_on(&d, &[0], NonZeroUsize::new(3).unwrap())
            .unwrap();
        let d1: &[u32] = &[0, 7, 3, 3, 9, 1];
        let d2: &[u32] = &[2, 2, 4, 8];
        for delta in [d1, d2] {
            serial.set_delta_sorted_unique(delta).unwrap();
            serial.merge_delta_into_full(&EbmConfig::default()).unwrap();
        }
        // Coalesced: same deltas as one deferred drain.
        let mut coalesced = storage(&d);
        coalesced.load_full(&[1, 2, 8, 0]).unwrap();
        let _ = coalesced.full_mut().unwrap().index_on(&d, &[1]).unwrap();
        let _ = coalesced
            .full_mut()
            .unwrap()
            .sharded_index_on(&d, &[0], NonZeroUsize::new(3).unwrap())
            .unwrap();
        let runs = vec![
            TupleBatch::from_sorted_unique_flat(2, d1.to_vec()),
            TupleBatch::from_sorted_unique_flat(2, d2.to_vec()),
        ];
        coalesced
            .full_mut()
            .unwrap()
            .merge_sorted_unique_runs(&d, &runs, &EbmConfig::default())
            .unwrap();
        assert_eq!(serial.full().tuples_flat(), coalesced.full().tuples_flat());
        assert_eq!(
            serial.full().canonical().sorted_index(),
            coalesced.full().canonical().sorted_index()
        );
        let s_idx = serial.full().existing_index(&[1]).unwrap();
        let c_idx = coalesced.full().existing_index(&[1]).unwrap();
        assert_eq!(s_idx.data(), c_idx.data());
        assert_eq!(s_idx.sorted_index(), c_idx.sorted_index());
        let shards = NonZeroUsize::new(3).unwrap();
        let s_map = serial.full().existing_sharded_index(&[0], shards).unwrap();
        let c_map = coalesced
            .full()
            .existing_sharded_index(&[0], shards)
            .unwrap();
        for (s, c) in s_map.iter().zip(c_map) {
            assert_eq!(s.data(), c.data());
            assert_eq!(s.sorted_index(), c.sorted_index());
        }
        // An all-empty drain is a no-op.
        coalesced
            .full_mut()
            .unwrap()
            .merge_sorted_unique_runs(&d, &[TupleBatch::empty(2)], &EbmConfig::default())
            .unwrap();
        assert_eq!(serial.full().tuples_flat(), coalesced.full().tuples_flat());
    }

    #[test]
    fn shared_full_detaches_on_merge_and_keeps_the_snapshot_intact() {
        let d = device();
        let mut s = storage(&d);
        s.load_full(&[1, 2, 3, 4]).unwrap();
        let _ = s.full_mut().unwrap().index_on(&d, &[1]).unwrap();
        // Publish: a snapshot holds the full version.
        let published = s.share_full();
        assert!(s.full_is_shared());
        let published_rows = published.tuples_flat().to_vec();
        // Writer merges the next delta — must copy-on-write, not tear.
        s.set_delta_sorted_unique(&[5, 6, 7, 8]).unwrap();
        s.merge_delta_into_full(&EbmConfig::default()).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(
            published.tuples_flat(),
            published_rows.as_slice(),
            "the published snapshot must keep the pre-merge fixpoint"
        );
        assert_eq!(published.len(), 2);
        assert!(!s.full_is_shared(), "the merge detached the writer's copy");
        // The detached copy carried the secondary index along.
        assert_eq!(
            s.full()
                .existing_index(&[1])
                .unwrap()
                .range_query(&[6])
                .count(),
            1
        );
        // take_full on a shared version deep-copies instead of moving.
        let republished = s.share_full();
        let taken = s.take_full().unwrap();
        assert_eq!(taken.tuples_flat(), republished.tuples_flat());
        assert!(s.full().is_empty(), "take_full leaves a placeholder");
    }

    #[test]
    fn clear_delta_empties_the_delta_version() {
        let d = device();
        let mut s = storage(&d);
        s.set_delta(&[1, 2]).unwrap();
        assert_eq!(s.delta.len(), 1);
        s.clear_delta().unwrap();
        assert!(s.delta.is_empty());
    }
}
