//! Run statistics: per-phase timings, iteration records, memory, and modeled
//! device time. These are the quantities the paper reports in Table 1
//! (iterations, runtime, memory), Figure 6 (phase breakdown), and the
//! speedup columns of Tables 2-5.

use gpulog_device::topology::TopologyReport;
use gpulog_device::CostEstimate;
use std::collections::HashMap;
use std::time::Duration;

/// The evaluation phases of the semi-naïve pipeline (paper Figure 3 and the
/// buckets of Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Relational-algebra join kernels.
    Join,
    /// Deduplicating `new` and subtracting `full` (delta population).
    Deduplication,
    /// Building indices over the delta relation.
    IndexDelta,
    /// Building or extending indices over the full relation.
    IndexFull,
    /// Merging delta into full.
    Merge,
    /// Everything else (fact loading, projection glue, bookkeeping).
    Other,
}

impl Phase {
    /// All phases, in the order Figure 6 stacks them.
    pub fn all() -> [Phase; 6] {
        [
            Phase::Deduplication,
            Phase::IndexDelta,
            Phase::IndexFull,
            Phase::Merge,
            Phase::Join,
            Phase::Other,
        ]
    }

    /// Reporting label.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Join => "Join",
            Phase::Deduplication => "Deduplication",
            Phase::IndexDelta => "Indexing Delta",
            Phase::IndexFull => "Indexing Full",
            Phase::Merge => "Merge Delta/Full",
            Phase::Other => "Other",
        }
    }
}

/// One fixpoint iteration of one stratum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationRecord {
    /// Which stratum (in evaluation order) this iteration belongs to.
    pub stratum: usize,
    /// Iteration number within the stratum (1-based).
    pub iteration: usize,
    /// Raw tuples produced by the join kernels this iteration.
    pub new_tuples: usize,
    /// Distinct, genuinely new tuples (the next delta).
    pub delta_tuples: usize,
}

/// Statistics for one engine run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Total fixpoint iterations across all recursive strata.
    pub iterations: usize,
    /// Per-iteration records.
    pub iteration_records: Vec<IterationRecord>,
    /// Wall-clock seconds per phase.
    pub phase_seconds: HashMap<Phase, f64>,
    /// Total wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// Modeled device time for the work performed during the run.
    pub modeled: CostEstimate,
    /// Peak device memory over the run, in bytes.
    pub peak_device_bytes: usize,
    /// Device allocations performed during the run.
    pub allocations: u64,
    /// Allocations served from the pooled recycle bin.
    pub pool_reuses: u64,
    /// Final sizes of all relations.
    pub relation_sizes: HashMap<String, usize>,
    /// Multi-device modeling report — per-device modeled compute,
    /// cross-device exchange traffic, and the modeled critical path — when
    /// the run executed on a topology-aware backend
    /// ([`crate::backend::MultiGpuBackend`]); `None` on single-device
    /// backends.
    pub topology: Option<TopologyReport>,
    /// Peak number of background merge jobs outstanding at once during the
    /// run. Zero on bulk-synchronous backends; at most one per relation on
    /// [`crate::backend::PipelinedBackend`].
    pub epochs_in_flight: u64,
    /// Nanoseconds of background-merge outstanding windows (submission to
    /// drain start): the time deferred merges spent overlapped behind
    /// foreground evaluation. Zero on bulk-synchronous backends.
    pub overlap_nanos: u64,
    /// Nanoseconds the foreground spent blocked waiting for an in-flight
    /// background merge to finish. The pipeline hid its merges completely
    /// when this is small relative to [`RunStats::overlap_nanos`].
    pub pipeline_stall_nanos: u64,
    /// Times the pipelined backend's adaptive merge policy deferred a drain
    /// past its base batch size because the pending delta rows were small
    /// relative to |full|. Zero on every other backend.
    pub adaptive_merge_batches: u64,
}

impl RunStats {
    /// Adds `elapsed` to a phase bucket.
    pub fn add_phase(&mut self, phase: Phase, elapsed: Duration) {
        *self.phase_seconds.entry(phase).or_insert(0.0) += elapsed.as_secs_f64();
    }

    /// Seconds recorded for one phase.
    pub fn phase(&self, phase: Phase) -> f64 {
        self.phase_seconds.get(&phase).copied().unwrap_or(0.0)
    }

    /// Sum of all phase buckets.
    pub fn phase_total(&self) -> f64 {
        self.phase_seconds.values().sum()
    }

    /// Fraction of the phase total spent in `phase` (0 when nothing was
    /// recorded), as a percentage — the quantity plotted in Figure 6.
    pub fn phase_percent(&self, phase: Phase) -> f64 {
        let total = self.phase_total();
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.phase(phase) / total
        }
    }

    /// Number of *tail iterations*: iterations whose delta is smaller than
    /// `threshold_fraction` (the paper uses 1%) of the final derived size of
    /// the recursive relations (paper Table 1).
    pub fn tail_iterations(&self, final_total_tuples: usize, threshold_fraction: f64) -> usize {
        if final_total_tuples == 0 {
            return 0;
        }
        let threshold = (final_total_tuples as f64 * threshold_fraction).max(1.0);
        self.iteration_records
            .iter()
            .filter(|r| (r.delta_tuples as f64) < threshold)
            .count()
    }

    /// Modeled device seconds (total of the roofline components).
    pub fn modeled_seconds(&self) -> f64 {
        self.modeled.total_sec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_percentages_sum_to_100() {
        let mut s = RunStats::default();
        s.add_phase(Phase::Join, Duration::from_millis(30));
        s.add_phase(Phase::Merge, Duration::from_millis(50));
        s.add_phase(Phase::Join, Duration::from_millis(20));
        assert!((s.phase(Phase::Join) - 0.05).abs() < 1e-9);
        let sum: f64 = Phase::all().iter().map(|p| s.phase_percent(*p)).sum();
        assert!((sum - 100.0).abs() < 1e-6);
        assert_eq!(s.phase_percent(Phase::Join).round() as i64, 50);
    }

    #[test]
    fn empty_stats_report_zero_percentages() {
        let s = RunStats::default();
        assert_eq!(s.phase_percent(Phase::Join), 0.0);
        assert_eq!(s.phase_total(), 0.0);
    }

    #[test]
    fn tail_iterations_counts_small_deltas() {
        let mut s = RunStats::default();
        for (i, delta) in [500usize, 300, 50, 5, 3, 1].iter().enumerate() {
            s.iteration_records.push(IterationRecord {
                stratum: 0,
                iteration: i + 1,
                new_tuples: *delta * 2,
                delta_tuples: *delta,
            });
        }
        // final total 1000, 1% threshold = 10 -> iterations with delta < 10.
        assert_eq!(s.tail_iterations(1000, 0.01), 3);
        assert_eq!(s.tail_iterations(0, 0.01), 0);
    }

    #[test]
    fn phase_labels_are_figure6_vocabulary() {
        let labels: Vec<&str> = Phase::all().iter().map(|p| p.label()).collect();
        assert!(labels.contains(&"Indexing Delta"));
        assert!(labels.contains(&"Merge Delta/Full"));
    }
}
