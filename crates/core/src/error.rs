//! Error types for the GPUlog engine.

use gpulog_device::DeviceError;
use std::fmt;

/// Errors produced while parsing, planning, or evaluating a Datalog program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The Datalog source text could not be parsed.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// The offending token's lexeme (empty at end of input).
        token: String,
        /// Description of what went wrong.
        message: String,
    },
    /// The program is structurally invalid (unknown relation, arity
    /// mismatch, unsafe rule, ...).
    Validation {
        /// Description of the problem.
        message: String,
    },
    /// A rule is not range-restricted: a head, constraint, negated-atom,
    /// or aggregate variable is not bound by any positive body literal.
    UnboundVariable {
        /// The offending rule, rendered as source text.
        rule: String,
        /// The unbound variable.
        variable: String,
        /// Where the variable appears (`head`, `constraint`,
        /// `negated atom R`, `aggregate`).
        context: String,
        /// 1-based source line of the atom containing the variable (the
        /// rule head's line for constraint/aggregate contexts; 0 when the
        /// rule was built programmatically).
        line: usize,
        /// 1-based source column matching `line` (0 = no source position).
        column: usize,
    },
    /// The program was rejected by the lint gate
    /// ([`crate::analysis::passes::LintLevel::Deny`]): at least one
    /// diagnostic fired at engine build time.
    LintDenied {
        /// Number of diagnostics that fired.
        count: usize,
        /// The first diagnostic, rendered (`warning[GL...]: ...`).
        first: String,
    },
    /// The program recurses through negation or aggregation, so no
    /// stratification exists.
    CyclicNegation {
        /// The offending rule, rendered as source text.
        rule: String,
        /// The relation read through negation/aggregation inside its own
        /// recursive component.
        relation: String,
    },
    /// Facts were supplied for a relation that does not exist or with the
    /// wrong arity.
    BadFacts {
        /// Relation the facts were destined for.
        relation: String,
        /// Description of the problem.
        message: String,
    },
    /// A flat fact buffer's length is not a multiple of the relation's
    /// arity: accepting it would let a ragged tail slip into the
    /// extensional database.
    RaggedFacts {
        /// Relation the facts were destined for.
        relation: String,
        /// Length of the rejected buffer.
        len: usize,
        /// The relation's arity.
        arity: usize,
    },
    /// A shard count outside the valid range was configured: sharded
    /// evaluation needs at least one shard.
    InvalidShardCount {
        /// The rejected shard count.
        shards: usize,
    },
    /// A `?-` goal names a relation the program does not declare.
    UnknownQueryRelation {
        /// The undeclared relation named by the goal.
        relation: String,
        /// 1-based source line of the goal's relation name (0 when the
        /// goal was built programmatically).
        line: usize,
        /// 1-based source column of the goal's relation name (0 when the
        /// goal was built programmatically).
        column: usize,
    },
    /// A `?-` goal supplies the wrong number of arguments for its
    /// relation.
    QueryArityMismatch {
        /// The goal's relation.
        relation: String,
        /// The relation's declared arity.
        expected: usize,
        /// The number of arguments the goal supplied.
        got: usize,
        /// 1-based source line of the goal's relation name (0 when the
        /// goal was built programmatically).
        line: usize,
        /// 1-based source column of the goal's relation name (0 when the
        /// goal was built programmatically).
        column: usize,
    },
    /// A goal-directed run was requested but the program carries no `?-`
    /// goal (and none was supplied programmatically).
    MissingQuery,
    /// A snapshot was requested before any fixpoint had been materialized:
    /// there is nothing consistent to publish yet.
    NoFixpoint,
    /// The simulated device ran out of memory or rejected an operation.
    Device(DeviceError),
    /// Evaluation exceeded the configured iteration budget.
    IterationLimit {
        /// The configured limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse {
                line,
                column,
                token,
                message,
            } => {
                if token.is_empty() {
                    write!(f, "parse error at line {line}, column {column}: {message}")
                } else {
                    write!(
                        f,
                        "parse error at line {line}, column {column} near `{token}`: {message}"
                    )
                }
            }
            EngineError::Validation { message } => write!(f, "invalid program: {message}"),
            EngineError::UnboundVariable {
                rule,
                variable,
                context,
                line,
                column,
            } => {
                write!(f, "unsafe rule")?;
                if *line > 0 {
                    write!(f, " at line {line}, column {column}")?;
                }
                write!(
                    f,
                    " `{rule}`: variable {variable} in {context} \
                     is not bound by any positive body literal"
                )
            }
            EngineError::LintDenied { count, first } => {
                write!(
                    f,
                    "program rejected by lint (deny level, {count} finding{}): {first}",
                    if *count == 1 { "" } else { "s" }
                )
            }
            EngineError::CyclicNegation { rule, relation } => {
                write!(
                    f,
                    "program is not stratifiable: rule `{rule}` reads {relation} \
                     through negation or aggregation inside its own recursive component"
                )
            }
            EngineError::BadFacts { relation, message } => {
                write!(f, "bad facts for relation {relation}: {message}")
            }
            EngineError::RaggedFacts {
                relation,
                len,
                arity,
            } => {
                write!(
                    f,
                    "ragged facts for relation {relation}: buffer length {len} \
                     is not a multiple of arity {arity}"
                )
            }
            EngineError::InvalidShardCount { shards } => {
                write!(f, "invalid shard count {shards}: must be at least 1")
            }
            EngineError::UnknownQueryRelation {
                relation,
                line,
                column,
            } => {
                write!(f, "goal error")?;
                if *line > 0 {
                    write!(f, " at line {line}, column {column}")?;
                }
                write!(f, ": ?- goal names unknown relation {relation}")
            }
            EngineError::QueryArityMismatch {
                relation,
                expected,
                got,
                line,
                column,
            } => {
                write!(f, "goal error")?;
                if *line > 0 {
                    write!(f, " at line {line}, column {column}")?;
                }
                write!(
                    f,
                    ": ?- goal supplies {got} arguments to {relation}, \
                     which has arity {expected}"
                )
            }
            EngineError::MissingQuery => {
                write!(
                    f,
                    "goal-directed run requested but the program has no ?- goal: \
                     add one in source or with ProgramBuilder::query(..)"
                )
            }
            EngineError::NoFixpoint => {
                write!(
                    f,
                    "snapshot requested before any fixpoint was materialized: \
                     run the engine once before calling snapshot()"
                )
            }
            EngineError::Device(err) => write!(f, "device error: {err}"),
            EngineError::IterationLimit { limit } => {
                write!(f, "fixpoint not reached within {limit} iterations")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Device(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DeviceError> for EngineError {
    fn from(err: DeviceError) -> Self {
        EngineError::Device(err)
    }
}

/// Result alias used throughout the engine.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        let parse = EngineError::Parse {
            line: 3,
            column: 7,
            token: "!".into(),
            message: "unexpected token".into(),
        };
        assert!(parse.to_string().contains("line 3"));
        assert!(parse.to_string().contains("column 7"));
        assert!(parse.to_string().contains("`!`"));
        let parse_eof = EngineError::Parse {
            line: 1,
            column: 9,
            token: String::new(),
            message: "unexpected end of input".into(),
        };
        assert!(!parse_eof.to_string().contains("near"));
        let unbound = EngineError::UnboundVariable {
            rule: "R(x) :- !S(x).".into(),
            variable: "x".into(),
            context: "negated atom S".into(),
            line: 2,
            column: 11,
        };
        assert!(unbound.to_string().contains("variable x"));
        assert!(unbound.to_string().contains("negated atom S"));
        assert!(unbound.to_string().contains("line 2, column 11"));
        let unbound_programmatic = EngineError::UnboundVariable {
            rule: "R(x) :- !S(x).".into(),
            variable: "x".into(),
            context: "negated atom S".into(),
            line: 0,
            column: 0,
        };
        assert!(
            !unbound_programmatic.to_string().contains("line"),
            "builder-origin rules carry no source span"
        );
        let denied = EngineError::LintDenied {
            count: 2,
            first: "warning[GL003]: singleton variable z".into(),
        };
        assert!(denied.to_string().contains("2 findings"));
        assert!(denied.to_string().contains("GL003"));
        let cyclic = EngineError::CyclicNegation {
            rule: "R(x) :- S(x), !R(x).".into(),
            relation: "R".into(),
        };
        assert!(cyclic.to_string().contains("not stratifiable"));
        assert!(cyclic.to_string().contains("reads R"));
        let validation = EngineError::Validation {
            message: "unknown relation Foo".into(),
        };
        assert!(validation.to_string().contains("Foo"));
        let limit = EngineError::IterationLimit { limit: 10 };
        assert!(limit.to_string().contains("10"));
        let ragged = EngineError::RaggedFacts {
            relation: "Edge".into(),
            len: 5,
            arity: 2,
        };
        assert!(ragged.to_string().contains("Edge"));
        assert!(ragged.to_string().contains("not a multiple"));
        let shards = EngineError::InvalidShardCount { shards: 0 };
        assert!(shards.to_string().contains("invalid shard count 0"));
        let no_fixpoint = EngineError::NoFixpoint;
        assert!(no_fixpoint.to_string().contains("before any fixpoint"));
        let unknown = EngineError::UnknownQueryRelation {
            relation: "Ghost".into(),
            line: 4,
            column: 4,
        };
        assert!(unknown.to_string().contains("line 4, column 4"));
        assert!(unknown.to_string().contains("unknown relation Ghost"));
        let unknown_programmatic = EngineError::UnknownQueryRelation {
            relation: "Ghost".into(),
            line: 0,
            column: 0,
        };
        assert!(
            !unknown_programmatic.to_string().contains("line"),
            "builder-origin goals carry no source span"
        );
        let arity = EngineError::QueryArityMismatch {
            relation: "Reach".into(),
            expected: 2,
            got: 3,
            line: 6,
            column: 4,
        };
        assert!(arity.to_string().contains("line 6, column 4"));
        assert!(arity.to_string().contains("3 arguments"));
        assert!(arity.to_string().contains("arity 2"));
        let missing = EngineError::MissingQuery;
        assert!(missing.to_string().contains("no ?- goal"));
    }

    #[test]
    fn device_error_converts_and_exposes_source() {
        let err: EngineError = DeviceError::OutOfMemory {
            requested: 1,
            in_use: 2,
            capacity: 3,
        }
        .into();
        assert!(matches!(err, EngineError::Device(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<EngineError>();
    }
}
