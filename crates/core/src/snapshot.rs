//! Immutable fixpoint snapshots — the read side of the serving layer.
//!
//! A [`FixpointSnapshot`] is a cheaply-clonable, immutable view of every
//! relation's full version as it stood when a fixpoint settled. The engine
//! publishes one through [`crate::GpulogEngine::snapshot`] after a run (the
//! publish point is the end of [`crate::GpulogEngine::run`], which fences
//! the backend first, so every deferred merge is folded in); the relation
//! versions inside are shared via `Arc` with the engine's storage, and the
//! writer's next merge copy-on-writes its own full version instead of
//! mutating the shared one (see [`crate::relation::RelationStorage`]).
//! Cloning a snapshot — or handing it to another thread — therefore costs
//! two reference-count bumps per relation, never a data copy.
//!
//! Queries answer from the relations' canonical (full-key) HISA indices:
//! membership probes hit the open-addressing hash table, and point lookups
//! and key-range scans binary-search the canonical sorted index (see
//! [`gpulog_hisa::Hisa::sorted_prefix_range`]). No query allocates device
//! memory or mutates anything, so any number of reader threads can share
//! one snapshot.

use crate::relation::RelationVersion;
use std::collections::HashMap;
use std::sync::Arc;

/// An immutable, shareable view of one completed fixpoint.
///
/// See the [module docs](self) for the publish protocol. Obtained from
/// [`crate::GpulogEngine::snapshot`]; all accessors take `&self` and the
/// type is `Send + Sync`, so readers on other threads query it freely while
/// the engine materializes the next fixpoint.
#[derive(Debug, Clone)]
pub struct FixpointSnapshot {
    inner: Arc<SnapshotInner>,
}

#[derive(Debug)]
struct SnapshotInner {
    generation: u64,
    names: Vec<String>,
    ids: HashMap<String, usize>,
    arities: Vec<usize>,
    relations: Vec<Arc<RelationVersion>>,
}

impl FixpointSnapshot {
    pub(crate) fn new(
        generation: u64,
        names: Vec<String>,
        arities: Vec<usize>,
        relations: Vec<Arc<RelationVersion>>,
    ) -> Self {
        let ids = names
            .iter()
            .enumerate()
            .map(|(id, name)| (name.clone(), id))
            .collect();
        FixpointSnapshot {
            inner: Arc::new(SnapshotInner {
                generation,
                names,
                ids,
                arities,
                relations,
            }),
        }
    }

    /// Which completed fixpoint this snapshot captures (1 for the first
    /// run, incremented per completed run).
    pub fn generation(&self) -> u64 {
        self.inner.generation
    }

    /// The names of all relations, in declaration order.
    pub fn relation_names(&self) -> &[String] {
        &self.inner.names
    }

    fn relation(&self, name: &str) -> Option<&RelationVersion> {
        self.inner
            .ids
            .get(name)
            .map(|&id| self.inner.relations[id].as_ref())
    }

    /// A relation's arity, or `None` for unknown relations.
    pub fn arity(&self, relation: &str) -> Option<usize> {
        self.inner
            .ids
            .get(relation)
            .map(|&id| self.inner.arities[id])
    }

    /// Number of tuples in a relation, or `None` for unknown relations.
    pub fn relation_size(&self, relation: &str) -> Option<usize> {
        self.relation(relation).map(RelationVersion::len)
    }

    /// Membership probe: whether the relation contains exactly `tuple`.
    /// `false` for unknown relations or wrong arities.
    pub fn contains(&self, relation: &str, tuple: &[u32]) -> bool {
        self.relation(relation)
            .is_some_and(|version| version.canonical().contains(tuple))
    }

    /// Point (or prefix) lookup: every tuple whose leading columns equal
    /// `prefix`, in canonical (lexicographic) order. An empty prefix
    /// returns the whole relation; `None` for unknown relations.
    pub fn lookup(&self, relation: &str, prefix: &[u32]) -> Option<Vec<Vec<u32>>> {
        let canonical = self.relation(relation)?.canonical();
        let span = canonical.sorted_prefix_range(prefix);
        Some(canonical.sorted_rows(span).collect())
    }

    /// Key-range scan: every tuple in `lo..hi` (lexicographic on the full
    /// tuple, `lo` inclusive, `hi` exclusive), in canonical order. `None`
    /// for unknown relations.
    pub fn scan_range(&self, relation: &str, lo: &[u32], hi: &[u32]) -> Option<Vec<Vec<u32>>> {
        let canonical = self.relation(relation)?.canonical();
        let span = canonical.sorted_span(lo, hi);
        Some(canonical.sorted_rows(span).collect())
    }

    /// All tuples of a relation in canonical (lexicographic) order,
    /// flattened row-major. Identical fixpoints produce identical buffers
    /// regardless of the backend or merge schedule that computed them, so
    /// this is the byte-comparable form of a relation.
    pub fn sorted_tuples_flat(&self, relation: &str) -> Option<Vec<u32>> {
        let canonical = self.relation(relation)?.canonical();
        let span = 0..canonical.len();
        Some(canonical.sorted_rows(span).flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, GpulogEngine};
    use gpulog_device::profile::DeviceProfile;
    use gpulog_device::Device;

    const REACH: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl Reach(x: number, y: number)
        .output Reach
        Reach(x, y) :- Edge(x, y).
        Reach(x, y) :- Edge(x, z), Reach(z, y).
    ";

    fn engine() -> GpulogEngine {
        let d = Device::with_workers(DeviceProfile::nvidia_h100(), 4);
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        e.add_facts("Edge", [[0u32, 1], [1, 2], [2, 3]]).unwrap();
        e.run().unwrap();
        e
    }

    #[test]
    fn snapshot_is_send_sync_and_cheap_to_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<FixpointSnapshot>();
        let e = engine();
        let snap = e.snapshot().unwrap();
        let copy = snap.clone();
        assert!(Arc::ptr_eq(&snap.inner, &copy.inner));
    }

    #[test]
    fn queries_answer_from_the_canonical_index() {
        let e = engine();
        let snap = e.snapshot().unwrap();
        assert_eq!(snap.generation(), 1);
        assert_eq!(snap.arity("Reach"), Some(2));
        assert_eq!(snap.relation_size("Reach"), Some(6));
        assert_eq!(snap.relation_size("Nope"), None);
        assert!(snap.contains("Reach", &[0, 3]));
        assert!(!snap.contains("Reach", &[3, 0]));
        // Point lookup on the leading column.
        assert_eq!(
            snap.lookup("Reach", &[0]).unwrap(),
            vec![vec![0, 1], vec![0, 2], vec![0, 3]]
        );
        assert_eq!(snap.lookup("Reach", &[7]).unwrap(), Vec::<Vec<u32>>::new());
        assert!(snap.lookup("Nope", &[0]).is_none());
        // Range scan across leading keys 1..3.
        assert_eq!(
            snap.scan_range("Reach", &[1], &[3]).unwrap(),
            vec![vec![1, 2], vec![1, 3], vec![2, 3]]
        );
        // The byte-comparable form is fully sorted.
        let flat = snap.sorted_tuples_flat("Reach").unwrap();
        assert_eq!(flat, vec![0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3]);
        assert_eq!(snap.relation_names().len(), 2);
    }
}
