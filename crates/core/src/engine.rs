//! The semi-naïve fixpoint engine (paper Sections 2 and 5, Figure 3).
//!
//! Evaluation proceeds stratum by stratum. Within a recursive stratum the
//! engine runs the classic semi-naïve loop: evaluate every delta-version
//! rule pipeline, deduplicate the resulting `new` tuples and subtract
//! `full` (populating the next `delta`), merge `delta` into `full`, and
//! repeat until every delta is empty. Each phase is timed into the buckets
//! the paper's Figure 6 reports, and memory behaviour follows the
//! configured eager-buffer-management policy.
//!
//! The engine itself runs no relational-algebra kernels: at construction
//! it lowers every rule plan into an [`RaPipeline`] (see
//! [`crate::planner::lower_rule_plan`]) and dispatches each pipeline
//! through its [`Backend`] — [`SerialBackend`] by default. See
//! `docs/architecture.md` for the Batch → Op → Backend layering.

use crate::analysis::magic_rewrite;
use crate::analysis::passes::{lint_program, optimize_program, LintLevel, ProgramDiagnostics};
use crate::ast::{Atom, Program, Query, Term};
use crate::backend::{
    Backend, EvalContext, MultiGpuBackend, PipelineOutcome, PipelinedBackend, SerialBackend,
    ShardedBackend,
};
use crate::ebm::EbmConfig;
use crate::error::{EngineError, EngineResult};
use crate::planner::{compile, lower_program, CompiledProgram, LoweredStratum};
use crate::ra::difference_batch;
use crate::ra::nway::NwayStrategy;
use crate::ra::op::RaPipeline;
use crate::relation::RelationStorage;
use crate::snapshot::FixpointSnapshot;
use crate::stats::{IterationRecord, Phase, RunStats};
use gpulog_device::topology::DeviceTopology;
use gpulog_device::Device;
use gpulog_hisa::TupleBatch;
use std::time::Instant;

/// Engine configuration.
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`EngineConfig::default`] (or [`EngineConfig::new`]) and refine it with
/// the `with_*` setters, so new knobs can be added without breaking
/// callers.
///
/// # Examples
///
/// ```
/// use gpulog::{EngineConfig, NwayStrategy};
///
/// let config = EngineConfig::new()
///     .with_nway(NwayStrategy::FusedNestedLoop)
///     .with_max_iterations(10_000);
/// assert_eq!(config.nway, NwayStrategy::FusedNestedLoop);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct EngineConfig {
    /// HISA hash-table load factor (the paper runs 0.8).
    pub load_factor: f64,
    /// Eager buffer management policy.
    pub ebm: EbmConfig,
    /// n-way join strategy.
    pub nway: NwayStrategy,
    /// Safety limit on fixpoint iterations per stratum.
    pub max_iterations: usize,
    /// Number of hash partitions relations are sharded into. `1` (the
    /// default) evaluates serially; larger counts make engine construction
    /// install a [`ShardedBackend`] unless an explicit backend is supplied.
    /// Zero is rejected with [`EngineError::InvalidShardCount`].
    pub shard_count: usize,
    /// Simulated multi-device topology. When set, engine construction
    /// installs a [`MultiGpuBackend`] pinning one hash shard per modeled
    /// device (unless an explicit backend is supplied); the run's
    /// [`RunStats::topology`] then carries per-device modeled time,
    /// cross-device exchange bytes, and the modeled critical path. A
    /// `shard_count` above one must match the topology's device count.
    pub device_topology: Option<DeviceTopology>,
    /// Shard count of the iteration-overlapping [`PipelinedBackend`]. Zero
    /// (the default) keeps bulk-synchronous evaluation; a positive count
    /// makes engine construction install a `PipelinedBackend` over that
    /// many hash partitions (unless an explicit backend is supplied),
    /// double-buffering delta merges behind the next iteration's joins. A
    /// `shard_count` above one must match, and a device topology cannot be
    /// combined with overlap.
    pub pipelined: usize,
    /// How lint findings are treated when the engine is built from source
    /// or an AST: [`LintLevel::Warn`] (the default) collects them into
    /// [`GpulogEngine::diagnostics`], [`LintLevel::Deny`] fails the build
    /// with [`EngineError::LintDenied`], [`LintLevel::Allow`] skips the
    /// lint passes. Pre-compiled programs are never linted.
    pub lint: LintLevel,
    /// Whether to run the semantics-preserving rewrites
    /// ([`crate::analysis::passes::optimize_program`]) before planning.
    /// On by default; the rewrites preserve the fixpoint of every output
    /// relation and of the `?-` goal, and the original AST is retained
    /// for goal-directed runs.
    pub optimize: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            load_factor: gpulog_hisa::DEFAULT_LOAD_FACTOR,
            ebm: EbmConfig::default(),
            nway: NwayStrategy::TemporarilyMaterialized,
            max_iterations: 1_000_000,
            shard_count: 1,
            device_topology: None,
            pipelined: 0,
            lint: LintLevel::Warn,
            optimize: true,
        }
    }
}

impl EngineConfig {
    /// The default configuration (alias of [`EngineConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the HISA hash-table load factor.
    #[must_use]
    pub fn with_load_factor(mut self, load_factor: f64) -> Self {
        self.load_factor = load_factor;
        self
    }

    /// Sets the eager-buffer-management policy.
    #[must_use]
    pub fn with_ebm(mut self, ebm: EbmConfig) -> Self {
        self.ebm = ebm;
        self
    }

    /// Sets the n-way join strategy.
    #[must_use]
    pub fn with_nway(mut self, nway: NwayStrategy) -> Self {
        self.nway = nway;
        self
    }

    /// Sets the per-stratum fixpoint iteration limit.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the number of hash partitions relations are sharded into
    /// (validated at engine construction; zero is rejected there).
    #[must_use]
    pub fn with_shard_count(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count;
        self
    }

    /// Sets the simulated multi-device topology; engine construction then
    /// installs a [`MultiGpuBackend`] over it (validated there: a
    /// conflicting `shard_count` is rejected).
    #[must_use]
    pub fn with_device_topology(mut self, topology: DeviceTopology) -> Self {
        self.device_topology = Some(topology);
        self
    }

    /// Enables iteration overlap: engine construction installs a
    /// [`PipelinedBackend`] over `shards` hash partitions (validated there;
    /// zero keeps bulk-synchronous evaluation).
    #[must_use]
    pub fn with_pipelined(mut self, shards: usize) -> Self {
        self.pipelined = shards;
        self
    }

    /// Sets how lint findings are treated at engine build time.
    #[must_use]
    pub fn with_lint(mut self, lint: LintLevel) -> Self {
        self.lint = lint;
        self
    }

    /// Enables or disables the semantics-preserving rewrite passes run
    /// before planning (on by default).
    #[must_use]
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }
}

/// The engine's analysis front-end, run between parsing/validation and
/// planning when a program arrives as source or an AST: lint per the
/// configured [`LintLevel`] (failing the build under [`LintLevel::Deny`]),
/// then rewrite through [`optimize_program`] when optimization is on.
///
/// Returns the collected diagnostics and the program to compile. The
/// caller keeps the *original* AST for goal-directed runs —
/// [`GpulogEngine::run_query_with`] may target relations the optimizer's
/// dead-rule elimination legitimately pruned from the compiled form.
fn analyze_program(
    program: &Program,
    config: &EngineConfig,
) -> EngineResult<(ProgramDiagnostics, Program)> {
    let diagnostics = match config.lint {
        LintLevel::Allow => ProgramDiagnostics::default(),
        LintLevel::Warn | LintLevel::Deny => lint_program(program),
    };
    if config.lint == LintLevel::Deny && !diagnostics.is_empty() {
        let first = diagnostics
            .iter()
            .next()
            .expect("non-empty diagnostics")
            .to_string();
        return Err(EngineError::LintDenied {
            count: diagnostics.len(),
            first,
        });
    }
    let to_compile = if config.optimize {
        optimize_program(program)?.program
    } else {
        program.clone()
    };
    Ok((diagnostics, to_compile))
}

/// The program a builder will compile, in whichever form it was supplied.
#[derive(Debug)]
enum ProgramSpec {
    Source(String),
    Ast(Program),
    Compiled(CompiledProgram),
}

/// Fluent constructor for [`GpulogEngine`], obtained from
/// [`GpulogEngine::builder`].
///
/// # Examples
///
/// ```
/// use gpulog::{GpulogEngine, NwayStrategy};
/// use gpulog_device::{Device, profile::DeviceProfile};
///
/// # fn main() -> Result<(), gpulog::EngineError> {
/// let device = Device::new(DeviceProfile::default());
/// let mut engine = GpulogEngine::builder(&device)
///     .program(
///         r"
///         .decl Edge(x: number, y: number)
///         .input Edge
///         .decl Reach(x: number, y: number)
///         .output Reach
///         Reach(x, y) :- Edge(x, y).
///         Reach(x, y) :- Edge(x, z), Reach(z, y).
///     ",
///     )
///     .nway(NwayStrategy::TemporarilyMaterialized)
///     .build()?;
/// engine.add_facts("Edge", [[0, 1], [1, 2]])?;
/// engine.run()?;
/// assert_eq!(engine.relation_size("Reach"), Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EngineBuilder<'d> {
    device: &'d Device,
    program: Option<ProgramSpec>,
    config: EngineConfig,
    backend: Option<Box<dyn Backend>>,
}

impl<'d> EngineBuilder<'d> {
    fn new(device: &'d Device) -> Self {
        EngineBuilder {
            device,
            program: None,
            config: EngineConfig::default(),
            backend: None,
        }
    }

    /// Supplies the program as Soufflé-style source text.
    #[must_use]
    pub fn program(mut self, source: &str) -> Self {
        self.program = Some(ProgramSpec::Source(source.to_string()));
        self
    }

    /// Supplies the program as an already-constructed AST.
    #[must_use]
    pub fn program_ast(mut self, program: &Program) -> Self {
        self.program = Some(ProgramSpec::Ast(program.clone()));
        self
    }

    /// Supplies an already-compiled program (skips parsing and planning).
    #[must_use]
    pub fn compiled(mut self, compiled: CompiledProgram) -> Self {
        self.program = Some(ProgramSpec::Compiled(compiled));
        self
    }

    /// Replaces the whole configuration.
    #[must_use]
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the HISA hash-table load factor.
    #[must_use]
    pub fn load_factor(mut self, load_factor: f64) -> Self {
        self.config.load_factor = load_factor;
        self
    }

    /// Sets the eager-buffer-management policy.
    #[must_use]
    pub fn ebm(mut self, ebm: EbmConfig) -> Self {
        self.config.ebm = ebm;
        self
    }

    /// Sets the n-way join strategy.
    #[must_use]
    pub fn nway(mut self, nway: NwayStrategy) -> Self {
        self.config.nway = nway;
        self
    }

    /// Sets the per-stratum fixpoint iteration limit.
    #[must_use]
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.config.max_iterations = max_iterations;
        self
    }

    /// Sets the number of hash partitions relations are sharded into.
    /// Counts above one make [`EngineBuilder::build`] install a
    /// [`ShardedBackend`] (unless an explicit backend was supplied); zero
    /// is rejected with [`EngineError::InvalidShardCount`].
    #[must_use]
    pub fn shard_count(mut self, shard_count: usize) -> Self {
        self.config.shard_count = shard_count;
        self
    }

    /// Sets a simulated multi-device topology. [`EngineBuilder::build`]
    /// installs a [`MultiGpuBackend`] over it (unless an explicit backend
    /// was supplied), pinning one hash shard per modeled device.
    #[must_use]
    pub fn device_topology(mut self, topology: DeviceTopology) -> Self {
        self.config.device_topology = Some(topology);
        self
    }

    /// Enables iteration overlap over `shards` hash partitions.
    /// [`EngineBuilder::build`] then installs a [`PipelinedBackend`]
    /// (unless an explicit backend was supplied); zero keeps
    /// bulk-synchronous evaluation.
    #[must_use]
    pub fn pipelined(mut self, shards: usize) -> Self {
        self.config.pipelined = shards;
        self
    }

    /// Sets how lint findings are treated by [`EngineBuilder::build`].
    #[must_use]
    pub fn lint(mut self, lint: LintLevel) -> Self {
        self.config.lint = lint;
        self
    }

    /// Enables or disables the semantics-preserving rewrite passes (on by
    /// default).
    #[must_use]
    pub fn optimize(mut self, optimize: bool) -> Self {
        self.config.optimize = optimize;
        self
    }

    /// Installs a custom evaluation backend. Without one, `build` picks
    /// [`SerialBackend`] — or [`ShardedBackend`] when the configured shard
    /// count is above one. An explicitly-installed backend always wins over
    /// the shard-count default.
    #[must_use]
    pub fn backend(mut self, backend: Box<dyn Backend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Compiles the program (if needed) and constructs the engine.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Validation`] if no program was supplied,
    /// [`EngineError::InvalidShardCount`] for a zero shard count,
    /// [`EngineError::LintDenied`] when the configured lint level is
    /// [`LintLevel::Deny`] and a finding fires, and parse, validation, or
    /// device errors from compilation and storage allocation.
    pub fn build(self) -> EngineResult<GpulogEngine> {
        let (ast, diagnostics, compiled) = match self.program {
            Some(ProgramSpec::Source(source)) => {
                let program = crate::parser::parse_program(&source)?;
                let (diagnostics, to_compile) = analyze_program(&program, &self.config)?;
                let compiled = compile(&to_compile)?;
                (Some(program), diagnostics, compiled)
            }
            Some(ProgramSpec::Ast(program)) => {
                let (diagnostics, to_compile) = analyze_program(&program, &self.config)?;
                let compiled = compile(&to_compile)?;
                (Some(program), diagnostics, compiled)
            }
            Some(ProgramSpec::Compiled(compiled)) => {
                (None, ProgramDiagnostics::default(), compiled)
            }
            None => {
                return Err(EngineError::Validation {
                    message: "EngineBuilder::build called without a program".into(),
                })
            }
        };
        let backend = match self.backend {
            Some(backend) => backend,
            None => default_backend(&self.config)?,
        };
        let mut engine = GpulogEngine::with_backend(self.device, compiled, self.config, backend)?;
        engine.program = ast;
        engine.diagnostics = diagnostics;
        Ok(engine)
    }
}

/// The backend an engine gets when none is installed explicitly:
/// [`PipelinedBackend`] when iteration overlap is configured,
/// [`MultiGpuBackend`] when a device topology is configured,
/// [`SerialBackend`] for a shard count of one, [`ShardedBackend`] above.
///
/// # Errors
///
/// Returns [`EngineError::InvalidShardCount`] for a zero shard count and
/// [`EngineError::Validation`] when an explicit shard count conflicts with
/// the topology's device count (each shard pins to exactly one device) or
/// the pipelined shard count, or when overlap is combined with a topology.
fn default_backend(config: &EngineConfig) -> EngineResult<Box<dyn Backend>> {
    if config.shard_count == 0 {
        return Err(EngineError::InvalidShardCount { shards: 0 });
    }
    if config.pipelined > 0 {
        if config.device_topology.is_some() {
            return Err(EngineError::Validation {
                message: "a device topology cannot be combined with pipelined overlap \
                          (the exchange is bulk-synchronous by construction)"
                    .into(),
            });
        }
        if config.shard_count > 1 && config.shard_count != config.pipelined {
            return Err(EngineError::Validation {
                message: format!(
                    "shard count {} conflicts with pipelined shard count {}",
                    config.shard_count, config.pipelined
                ),
            });
        }
        return Ok(Box::new(PipelinedBackend::new(config.pipelined)?));
    }
    if let Some(topology) = &config.device_topology {
        let devices = topology.device_count().get();
        if config.shard_count > 1 && config.shard_count != devices {
            return Err(EngineError::Validation {
                message: format!(
                    "shard count {} conflicts with the {devices}-device topology \
                     (each shard pins to exactly one device)",
                    config.shard_count
                ),
            });
        }
        return Ok(Box::new(MultiGpuBackend::new(topology.clone())));
    }
    if config.shard_count == 1 {
        Ok(Box::new(SerialBackend))
    } else {
        Ok(Box::new(ShardedBackend::new(config.shard_count)?))
    }
}

/// The GPUlog Datalog engine.
///
/// # Examples
///
/// ```
/// use gpulog::GpulogEngine;
/// use gpulog_device::{Device, profile::DeviceProfile};
///
/// # fn main() -> Result<(), gpulog::EngineError> {
/// let device = Device::new(DeviceProfile::default());
/// let source = r"
///     .decl Edge(x: number, y: number)
///     .input Edge
///     .decl Reach(x: number, y: number)
///     .output Reach
///     Reach(x, y) :- Edge(x, y).
///     Reach(x, y) :- Edge(x, z), Reach(z, y).
/// ";
/// let mut engine = GpulogEngine::builder(&device).program(source).build()?;
/// engine.add_facts("Edge", [[0, 1], [1, 2], [2, 3]])?;
/// let stats = engine.run()?;
/// assert_eq!(engine.relation_size("Reach"), Some(6));
/// assert!(stats.iterations >= 2);
/// # Ok(())
/// # }
/// ```
/// The result of a goal-directed run ([`GpulogEngine::run_query`]).
///
/// `answers` holds only the tuples of the goal relation that match the
/// goal's bound constants, canonically sorted and duplicate-free — exactly
/// the rows a full fixpoint restricted to the goal would produce, whatever
/// backend evaluated the rewritten program.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Goal-matching tuples, lexicographically sorted and duplicate-free.
    pub answers: gpulog_hisa::TupleBatch,
    /// Statistics of the (rewritten) program's fixpoint run.
    pub stats: RunStats,
    /// Tuples materialized by the run outside the copied extensional
    /// database: adorned relations, magic relations, and any relations the
    /// rewrite kept fully evaluated. Comparing this against the full
    /// closure's derived-tuple count is the rewrite's payoff metric.
    pub tuples_materialized: usize,
}

#[derive(Debug)]
pub struct GpulogEngine {
    device: Device,
    /// The source AST, retained when the engine was built from source or
    /// an AST (`None` for pre-compiled programs). Goal-directed runs
    /// rewrite it; plain runs only ever use the compiled form. This is
    /// the *original* (pre-optimization) AST, so goal-directed runs can
    /// still target relations dead-rule elimination pruned.
    program: Option<Program>,
    /// Lint findings collected at build time (empty under
    /// [`LintLevel::Allow`] and for pre-compiled programs).
    diagnostics: ProgramDiagnostics,
    compiled: CompiledProgram,
    pipelines: Vec<LoweredStratum>,
    /// One pre-built [`RaOp::Diff`](crate::ra::op::RaOp) pipeline per
    /// relation, so the fixpoint loop allocates nothing per iteration.
    diff_pipelines: Vec<RaPipeline>,
    backend: Box<dyn Backend>,
    relations: Vec<RelationStorage>,
    pending_facts: Vec<Vec<u32>>,
    config: EngineConfig,
    has_run: bool,
    /// Completed fixpoints so far (the generation stamped on snapshots).
    generation: u64,
}

impl GpulogEngine {
    /// Starts building an engine bound to `device`.
    pub fn builder(device: &Device) -> EngineBuilder<'_> {
        EngineBuilder::new(device)
    }

    /// Builds an engine from an already-constructed [`Program`].
    ///
    /// # Errors
    ///
    /// Returns validation errors for ill-formed programs,
    /// [`EngineError::LintDenied`] under [`LintLevel::Deny`] with findings,
    /// and device errors if the empty relation storage cannot be
    /// allocated.
    pub fn new(device: &Device, program: &Program, config: EngineConfig) -> EngineResult<Self> {
        let (diagnostics, to_compile) = analyze_program(program, &config)?;
        let compiled = compile(&to_compile)?;
        let mut engine = Self::from_compiled(device, compiled, config)?;
        engine.program = Some(program.clone());
        engine.diagnostics = diagnostics;
        Ok(engine)
    }

    /// Builds an engine from Soufflé-style source text.
    ///
    /// # Errors
    ///
    /// Returns parse errors, validation errors, or device errors.
    pub fn from_source(device: &Device, source: &str, config: EngineConfig) -> EngineResult<Self> {
        let program = crate::parser::parse_program(source)?;
        Self::new(device, &program, config)
    }

    /// Builds an engine from a pre-compiled program. The backend follows
    /// the configured shard count: [`SerialBackend`] for one,
    /// [`ShardedBackend`] above.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidShardCount`] for a zero shard count
    /// and device errors if the empty relation storage cannot be allocated.
    pub fn from_compiled(
        device: &Device,
        compiled: CompiledProgram,
        config: EngineConfig,
    ) -> EngineResult<Self> {
        let backend = default_backend(&config)?;
        Self::with_backend(device, compiled, config, backend)
    }

    /// Builds an engine from a pre-compiled program with an explicit
    /// evaluation backend.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidShardCount`] for a zero shard count
    /// and device errors if the empty relation storage cannot be allocated.
    pub fn with_backend(
        device: &Device,
        compiled: CompiledProgram,
        config: EngineConfig,
        backend: Box<dyn Backend>,
    ) -> EngineResult<Self> {
        if config.shard_count == 0 {
            return Err(EngineError::InvalidShardCount { shards: 0 });
        }
        let mut relations = Vec::with_capacity(compiled.relation_names.len());
        for (name, &arity) in compiled.relation_names.iter().zip(compiled.arities.iter()) {
            relations.push(RelationStorage::new(
                device,
                name,
                arity,
                config.load_factor,
            )?);
        }
        let pending_facts = vec![Vec::new(); compiled.relation_names.len()];
        let pipelines = lower_program(&compiled, config.nway);
        let diff_pipelines = (0..compiled.relation_names.len())
            .map(RaPipeline::diff)
            .collect();
        Ok(GpulogEngine {
            device: device.clone(),
            program: None,
            diagnostics: ProgramDiagnostics::default(),
            compiled,
            pipelines,
            diff_pipelines,
            backend,
            relations,
            pending_facts,
            config,
            has_run: false,
            generation: 0,
        })
    }

    /// The device this engine runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Lint findings collected when the engine was built.
    ///
    /// Empty when the configured level is [`LintLevel::Allow`], when the
    /// program linted clean, or when the engine was built from a
    /// pre-compiled program (which is never linted). Under
    /// [`LintLevel::Deny`] a finding fails the build instead, so an engine
    /// you hold never carries deny-level findings.
    pub fn diagnostics(&self) -> &ProgramDiagnostics {
        &self.diagnostics
    }

    /// The compiled program (plans, strata, relation metadata).
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The lowered operator pipelines, stratum by stratum.
    pub fn pipelines(&self) -> &[LoweredStratum] {
        &self.pipelines
    }

    /// The evaluation backend in use.
    pub fn backend(&self) -> &dyn Backend {
        self.backend.as_ref()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Adds extensional facts to an input relation. Must be called before
    /// [`GpulogEngine::run`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadFacts`] for unknown relations, wrong
    /// arities, or facts added after the engine has run.
    pub fn add_facts<I, T>(&mut self, relation: &str, tuples: I) -> EngineResult<()>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u32]>,
    {
        if self.has_run {
            return Err(EngineError::BadFacts {
                relation: relation.to_string(),
                message: "facts cannot be added after the engine has run".into(),
            });
        }
        let id = self
            .compiled
            .relation_id(relation)
            .ok_or_else(|| EngineError::BadFacts {
                relation: relation.to_string(),
                message: "unknown relation".into(),
            })?;
        let arity = self.compiled.arities[id];
        let buffer = &mut self.pending_facts[id];
        for tuple in tuples {
            let tuple = tuple.as_ref();
            if tuple.len() != arity {
                return Err(EngineError::BadFacts {
                    relation: relation.to_string(),
                    message: format!("expected arity {arity}, got {}", tuple.len()),
                });
            }
            buffer.extend_from_slice(tuple);
        }
        Ok(())
    }

    /// Adds extensional facts from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadFacts`] for unknown relations or facts
    /// added after the engine has run, and [`EngineError::RaggedFacts`] for
    /// buffers whose length is not a multiple of the relation's arity (a
    /// ragged tail must never slip into the extensional database).
    pub fn add_facts_flat(&mut self, relation: &str, flat: &[u32]) -> EngineResult<()> {
        let id = self
            .compiled
            .relation_id(relation)
            .ok_or_else(|| EngineError::BadFacts {
                relation: relation.to_string(),
                message: "unknown relation".into(),
            })?;
        let arity = self.compiled.arities[id];
        if !flat.len().is_multiple_of(arity) {
            return Err(EngineError::RaggedFacts {
                relation: relation.to_string(),
                len: flat.len(),
                arity,
            });
        }
        if self.has_run {
            return Err(EngineError::BadFacts {
                relation: relation.to_string(),
                message: "facts cannot be added after the engine has run".into(),
            });
        }
        self.pending_facts[id].extend_from_slice(flat);
        Ok(())
    }

    /// Adds extensional facts from a [`TupleBatch`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadFacts`] for unknown relations, arity
    /// mismatches, or facts added after the engine has run.
    pub fn add_facts_batch(&mut self, relation: &str, batch: &TupleBatch) -> EngineResult<()> {
        let id = self
            .compiled
            .relation_id(relation)
            .ok_or_else(|| EngineError::BadFacts {
                relation: relation.to_string(),
                message: "unknown relation".into(),
            })?;
        let arity = self.compiled.arities[id];
        if batch.arity() != arity {
            return Err(EngineError::BadFacts {
                relation: relation.to_string(),
                message: format!("expected arity {arity}, got {}", batch.arity()),
            });
        }
        if self.has_run {
            return Err(EngineError::BadFacts {
                relation: relation.to_string(),
                message: "facts cannot be added after the engine has run".into(),
            });
        }
        self.pending_facts[id].extend_from_slice(batch.as_flat());
        Ok(())
    }

    /// Stages extensional facts for the *next* run. Unlike
    /// [`GpulogEngine::add_facts_batch`] this is allowed after the engine
    /// has run: it is the serving writer's path for growing the extensional
    /// database between fixpoints. The facts take effect on the next
    /// [`GpulogEngine::run`], which merges them into the existing full
    /// versions (deduplicated) and re-evaluates to the enlarged fixpoint —
    /// the program being monotone, re-running from the previous fixpoint
    /// converges to exactly the from-scratch result.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadFacts`] for unknown relations or arity
    /// mismatches.
    pub fn insert_facts_batch(&mut self, relation: &str, batch: &TupleBatch) -> EngineResult<()> {
        let id = self
            .compiled
            .relation_id(relation)
            .ok_or_else(|| EngineError::BadFacts {
                relation: relation.to_string(),
                message: "unknown relation".into(),
            })?;
        let arity = self.compiled.arities[id];
        if batch.arity() != arity {
            return Err(EngineError::BadFacts {
                relation: relation.to_string(),
                message: format!("expected arity {arity}, got {}", batch.arity()),
            });
        }
        self.pending_facts[id].extend_from_slice(batch.as_flat());
        Ok(())
    }

    /// Whether at least one fixpoint has been materialized.
    pub fn has_run(&self) -> bool {
        self.has_run
    }

    /// Completed fixpoints so far (0 before the first run).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Publishes the latest completed fixpoint as an immutable, shareable
    /// [`FixpointSnapshot`]. The snapshot shares the relations' full
    /// versions by reference (no data copy); a later run's merges
    /// copy-on-write the engine's own versions, so the snapshot stays
    /// exactly the fixpoint it captured.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoFixpoint`] before the first completed run.
    pub fn snapshot(&self) -> EngineResult<FixpointSnapshot> {
        if !self.has_run {
            return Err(EngineError::NoFixpoint);
        }
        let relations = self
            .relations
            .iter()
            .map(RelationStorage::share_full)
            .collect();
        Ok(FixpointSnapshot::new(
            self.generation,
            self.compiled.relation_names.clone(),
            self.compiled.arities.clone(),
            relations,
        ))
    }

    /// Number of tuples in a relation's full version.
    pub fn relation_size(&self, relation: &str) -> Option<usize> {
        self.compiled
            .relation_id(relation)
            .map(|id| self.relations[id].len())
    }

    /// Iterates a relation's tuples as borrowed row slices in declared
    /// column order, without cloning per row.
    pub fn relation_tuples_iter(
        &self,
        relation: &str,
    ) -> Option<impl Iterator<Item = &[u32]> + '_> {
        self.compiled
            .relation_id(relation)
            .map(|id| self.relations[id].tuples_iter())
    }

    /// All tuples of a relation, in declared column order.
    pub fn relation_tuples(&self, relation: &str) -> Option<Vec<Vec<u32>>> {
        self.relation_tuples_iter(relation)
            .map(|rows| rows.map(<[u32]>::to_vec).collect())
    }

    /// A relation's tuples as an owned [`TupleBatch`] (duplicate-free, in
    /// storage order).
    pub fn relation_batch(&self, relation: &str) -> Option<TupleBatch> {
        self.compiled
            .relation_id(relation)
            .map(|id| self.relations[id].tuples_batch())
    }

    /// Whether a relation contains a tuple.
    pub fn contains(&self, relation: &str, tuple: &[u32]) -> bool {
        self.compiled
            .relation_id(relation)
            .map(|id| self.relations[id].contains(tuple))
            .unwrap_or(false)
    }

    /// Runs the program to fixpoint.
    ///
    /// # Errors
    ///
    /// Returns device errors (including out-of-memory, which reproduces the
    /// paper's OOM rows) and [`EngineError::IterationLimit`] if a stratum
    /// does not converge within the configured bound.
    pub fn run(&mut self) -> EngineResult<RunStats> {
        let wall_start = Instant::now();
        let counters_before = self.device.metrics().snapshot();
        // Topology-aware backends accumulate across runs; snapshot so the
        // stats report only this run's share, like every other field.
        let topology_before = self.backend.topology_report();
        let mut stats = RunStats::default();

        // Load the extensional database. First run: program facts + added
        // facts replace the (empty) full versions wholesale. Re-runs keep
        // every relation's previous fixpoint and merge the newly staged
        // facts in (deduplicated against full) — the monotone re-evaluation
        // below then grows the derived relations to the enlarged fixpoint.
        let t = Instant::now();
        let mut fact_buffers: Vec<Vec<u32>> = std::mem::take(&mut self.pending_facts);
        if self.has_run {
            for (rel, buffer) in fact_buffers.iter().enumerate() {
                if buffer.is_empty() {
                    continue;
                }
                let batch = TupleBatch::new(self.compiled.arities[rel], buffer.clone());
                let delta =
                    difference_batch(&self.device, &batch, self.relations[rel].full().canonical());
                if delta.is_empty() {
                    continue;
                }
                self.relations[rel].set_delta_batch(&delta)?;
                self.relations[rel].merge_delta_into_full(&self.config.ebm)?;
                self.relations[rel].clear_delta()?;
            }
        } else {
            for (rel, tuple) in &self.compiled.facts {
                fact_buffers[*rel].extend_from_slice(tuple);
            }
            for (rel, buffer) in fact_buffers.iter().enumerate() {
                if !buffer.is_empty() || self.compiled.inputs[rel] {
                    self.relations[rel].load_full(buffer)?;
                }
            }
        }
        self.pending_facts = vec![Vec::new(); self.relations.len()];
        stats.add_phase(Phase::Other, t.elapsed());

        // Per-stratum metadata and the lowered pipelines, cloned out of
        // `self` so dispatch can borrow the relations mutably.
        let strata_meta: Vec<(Vec<usize>, bool)> = self
            .compiled
            .strata
            .iter()
            .map(|s| (s.relations.clone(), s.is_recursive))
            .collect();
        let pipelines = self.pipelines.clone();

        for (stratum_idx, (stratum_rels, is_recursive)) in strata_meta.iter().enumerate() {
            // Non-recursive rules: evaluate once over full versions.
            for pipeline in &pipelines[stratum_idx].non_recursive {
                self.dispatch(pipeline, &mut stats)?;
            }
            let (nr_new, nr_delta) = self.populate_and_merge(stratum_rels, &mut stats)?;
            // The engine is about to read relation storage directly (delta
            // seeding below, or the next stratum's scans of this one's
            // outputs): settle any merges the backend still has in flight.
            self.fence_backend(&mut stats)?;

            if *is_recursive && !pipelines[stratum_idx].recursive.is_empty() {
                // Seed the deltas with everything currently in full. The
                // seed batch is unordered (full's data array is in storage
                // order after merges), so set_delta_batch takes the general
                // sort+dedup build here — only difference() outputs earn
                // the sorted-unique fast path.
                let t = Instant::now();
                let mut seeded = 0usize;
                for &rel in stratum_rels {
                    let batch = self.relations[rel].tuples_batch();
                    seeded += batch.len();
                    self.relations[rel].set_delta_batch(&batch)?;
                }
                stats.add_phase(Phase::IndexDelta, t.elapsed());
                if seeded == 0 {
                    // Nothing to iterate over; the stratum is already at
                    // fixpoint.
                    for &rel in stratum_rels {
                        self.relations[rel].clear_delta()?;
                    }
                    continue;
                }
                // The paper counts the initial (non-recursive) evaluation as
                // iteration 1 (see Figure 1), so record it that way.
                stats.iteration_records.push(IterationRecord {
                    stratum: stratum_idx,
                    iteration: 1,
                    new_tuples: nr_new,
                    delta_tuples: nr_delta.max(seeded),
                });
                stats.iterations += 1;

                let mut iteration = 1usize;
                loop {
                    iteration += 1;
                    if iteration > self.config.max_iterations {
                        return Err(EngineError::IterationLimit {
                            limit: self.config.max_iterations,
                        });
                    }
                    for pipeline in &pipelines[stratum_idx].recursive {
                        self.dispatch(pipeline, &mut stats)?;
                    }
                    let (new_count, delta_count) =
                        self.populate_and_merge(stratum_rels, &mut stats)?;
                    stats.iteration_records.push(IterationRecord {
                        stratum: stratum_idx,
                        iteration,
                        new_tuples: new_count,
                        delta_tuples: delta_count,
                    });
                    stats.iterations += 1;
                    if delta_count == 0 {
                        break;
                    }
                }
                // The fixpoint is reached; drain every merge still deferred
                // or in flight before storage is read again.
                self.fence_backend(&mut stats)?;
                // Clear deltas so later strata see a clean state.
                for &rel in stratum_rels {
                    self.relations[rel].clear_delta()?;
                }
            }
        }

        // Finalize statistics.
        stats.wall_seconds = wall_start.elapsed().as_secs_f64();
        let counters_after = self.device.metrics().snapshot();
        let run_counters = counters_after.since(&counters_before);
        stats.modeled = self.device.cost_model().estimate(&run_counters);
        stats.epochs_in_flight = run_counters.peak_epochs_in_flight;
        stats.overlap_nanos = run_counters.overlap_nanos;
        stats.pipeline_stall_nanos = run_counters.pipeline_stall_nanos;
        stats.adaptive_merge_batches = run_counters.adaptive_merge_batches;
        stats.topology = match (topology_before, self.backend.topology_report()) {
            (Some(before), Some(after)) => Some(after.since(&before)),
            (_, after) => after,
        };
        stats.peak_device_bytes = self.device.metrics().peak_bytes_in_use();
        stats.allocations = counters_after.allocations - counters_before.allocations;
        stats.pool_reuses = counters_after.pool_reuses - counters_before.pool_reuses;
        for (rel, storage) in self.relations.iter().enumerate() {
            stats
                .relation_sizes
                .insert(self.compiled.relation_names[rel].clone(), storage.len());
        }
        self.has_run = true;
        self.generation += 1;
        Ok(stats)
    }

    /// Runs the program's `?-` goal through the magic-sets rewrite
    /// ([`magic_rewrite`]) instead of materializing the full fixpoint.
    ///
    /// The rewritten program is lowered through the same planner/backend
    /// seam as any other program (honouring this engine's configuration,
    /// including shard counts, topologies, and pipelining), the goal's
    /// constants are seeded into the magic relation, and only the
    /// goal-matching tuples come back — byte-identical to running the full
    /// fixpoint and filtering it to the goal. The engine itself is not
    /// mutated: the rewritten program evaluates in a private sub-engine
    /// seeded with this engine's extensional database (staged facts, plus
    /// the current contents of input relations after a run).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::MissingQuery`] when the program carries no
    /// `?-` goal, [`EngineError::Validation`] when the engine was built
    /// from a pre-compiled program (the rewrite needs the AST), and any
    /// parse-span-carrying goal errors from [`magic_rewrite`].
    pub fn run_query(&self) -> EngineResult<QueryResult> {
        let program = self.program_for_query()?;
        let query = program.query.clone().ok_or(EngineError::MissingQuery)?;
        self.run_query_goal(&query)
    }

    /// Runs an ad-hoc point query against `relation`: `Some(c)` binds a
    /// column to the constant `c`, `None` leaves it free. Equivalent to
    /// attaching `?- relation(..)` to the program and calling
    /// [`GpulogEngine::run_query`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownQueryRelation`] /
    /// [`EngineError::QueryArityMismatch`] for goals that do not match the
    /// program's declarations, and [`EngineError::Validation`] when the
    /// engine was built from a pre-compiled program.
    pub fn run_query_with(
        &self,
        relation: &str,
        bindings: &[Option<u32>],
    ) -> EngineResult<QueryResult> {
        let terms = bindings
            .iter()
            .enumerate()
            .map(|(i, binding)| match binding {
                Some(constant) => Term::Const(*constant),
                None => Term::var(format!("_q{i}")),
            })
            .collect();
        self.run_query_goal(&Query::new(Atom::new(relation, terms)))
    }

    /// Shared goal-directed path: rewrite, seed, evaluate, filter.
    fn run_query_goal(&self, query: &Query) -> EngineResult<QueryResult> {
        let program = self.program_for_query()?;
        let magic = magic_rewrite(program, query)?;
        // The sub-engine must evaluate the rewritten program verbatim: the
        // adorned answer relation is not `.output`, so dead-rule
        // elimination would prune its rules; and re-linting machine-made
        // rules would only echo findings about generated names.
        let sub_config = self
            .config
            .clone()
            .with_lint(LintLevel::Allow)
            .with_optimize(false);
        let mut sub = GpulogEngine::new(&self.device, &magic.program, sub_config)?;

        // Copy the extensional database across: declared inputs plus
        // relations no rule derives. Rule-derived relations re-derive
        // inside the sub-engine (facts staged onto such a relation after a
        // run are indistinguishable from derived tuples, so they are the
        // one thing this path does not carry over).
        let ruled: std::collections::HashSet<&str> = program
            .rules
            .iter()
            .map(|r| r.head.relation.as_str())
            .collect();
        let edb: Vec<&str> = program
            .relations
            .iter()
            .filter(|d| d.is_input || !ruled.contains(d.name.as_str()))
            .map(|d| d.name.as_str())
            .collect();
        for &name in &edb {
            let id = self
                .compiled
                .relation_id(name)
                .expect("compiled and AST declarations agree");
            if self.has_run {
                let batch = self.relations[id].tuples_batch();
                if !batch.is_empty() {
                    sub.add_facts_batch(name, &batch)?;
                }
            }
            if !self.pending_facts[id].is_empty() {
                sub.add_facts_flat(name, &self.pending_facts[id])?;
            }
        }
        if let Some(magic_name) = &magic.magic_relation {
            sub.add_facts(magic_name, [magic.seed.as_slice()])?;
        }

        let stats = sub.run()?;

        let edb_set: std::collections::HashSet<&str> = edb.iter().copied().collect();
        let tuples_materialized = sub
            .compiled
            .relation_names
            .iter()
            .enumerate()
            .filter(|(_, name)| !edb_set.contains(name.as_str()))
            .map(|(id, _)| sub.relations[id].len())
            .sum();

        // The answer relation holds tuples for *every* demanded binding
        // (demand widens through recursion); keep only the rows whose
        // bound positions carry the goal's own constants, in canonical
        // sorted order so the result is backend-independent.
        let full = sub
            .relation_batch(&magic.answer_relation)
            .expect("the rewrite declares its answer relation");
        let arity = full.arity();
        let mut rows: Vec<&[u32]> = full
            .as_flat()
            .chunks(arity)
            .filter(|row| {
                let mut seed = magic.seed.iter();
                magic
                    .adornment
                    .iter()
                    .zip(row.iter())
                    .all(|(bound, value)| !bound || seed.next() == Some(value))
            })
            .collect();
        rows.sort_unstable();
        rows.dedup();
        let mut flat = Vec::with_capacity(rows.len() * arity);
        for row in rows {
            flat.extend_from_slice(row);
        }
        Ok(QueryResult {
            answers: TupleBatch::from_sorted_unique_flat(arity, flat),
            stats,
            tuples_materialized,
        })
    }

    /// The retained AST, or the typed error explaining why goal-directed
    /// evaluation is unavailable on this engine.
    fn program_for_query(&self) -> EngineResult<&Program> {
        self.program
            .as_ref()
            .ok_or_else(|| EngineError::Validation {
                message: "goal-directed evaluation needs the program AST: build the \
                      engine from source or an AST rather than a pre-compiled \
                      program"
                    .into(),
            })
    }

    /// Settles every deferred backend effect ([`Backend::fence`]) so the
    /// engine can read relation storage directly.
    fn fence_backend(&mut self, stats: &mut RunStats) -> EngineResult<()> {
        let mut ctx = EvalContext {
            device: &self.device,
            relations: &mut self.relations,
            stats,
            ebm: self.config.ebm,
        };
        self.backend.fence(&mut ctx)
    }

    /// Executes one lowered pipeline through the configured backend.
    fn dispatch(
        &mut self,
        pipeline: &RaPipeline,
        stats: &mut RunStats,
    ) -> EngineResult<PipelineOutcome> {
        let mut ctx = EvalContext {
            device: &self.device,
            relations: &mut self.relations,
            stats,
            ebm: self.config.ebm,
        };
        self.backend.execute(&mut ctx, pipeline)
    }

    /// Dispatches one [`crate::ra::op::RaOp::Diff`] pipeline per relation:
    /// deduplicate its `new` buffer against full, install the result as the
    /// next delta, and merge it into full. Returns `(total raw new tuples,
    /// total delta tuples)`.
    fn populate_and_merge(
        &mut self,
        relations: &[usize],
        stats: &mut RunStats,
    ) -> EngineResult<(usize, usize)> {
        let mut total_new = 0usize;
        let mut total_delta = 0usize;
        for &rel in relations {
            let mut ctx = EvalContext {
                device: &self.device,
                relations: &mut self.relations,
                stats,
                ebm: self.config.ebm,
            };
            let outcome = self.backend.execute(&mut ctx, &self.diff_pipelines[rel])?;
            total_new += outcome.new_rows;
            total_delta += outcome.delta_rows;
        }
        Ok((total_new, total_delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    const REACH: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl Reach(x: number, y: number)
        .output Reach
        Reach(x, y) :- Edge(x, y).
        Reach(x, y) :- Edge(x, z), Reach(z, y).
    ";

    const SG: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl SG(x: number, y: number)
        .output SG
        SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
        SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
    ";

    /// The 9-node example graph from the paper's Figure 1.
    fn figure1_edges() -> Vec<[u32; 2]> {
        vec![
            [0, 1],
            [0, 2],
            [1, 3],
            [1, 4],
            [2, 4],
            [2, 5],
            [3, 6],
            [4, 7],
            [4, 8],
            [5, 8],
        ]
    }

    #[test]
    fn reach_on_a_chain_computes_transitive_closure() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        e.add_facts("Edge", [[0u32, 1], [1, 2], [2, 3], [3, 4]])
            .unwrap();
        let stats = e.run().unwrap();
        // Chain of 5 nodes: 4 + 3 + 2 + 1 = 10 reachable pairs.
        assert_eq!(e.relation_size("Reach"), Some(10));
        assert!(e.contains("Reach", &[0, 4]));
        assert!(!e.contains("Reach", &[4, 0]));
        assert!(stats.iterations >= 3);
        assert!(stats.relation_sizes["Reach"] == 10);
    }

    #[test]
    fn reach_handles_cycles_without_diverging() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        e.add_facts("Edge", [[0u32, 1], [1, 2], [2, 0]]).unwrap();
        e.run().unwrap();
        // Every node reaches every node (including itself through the cycle).
        assert_eq!(e.relation_size("Reach"), Some(9));
    }

    #[test]
    fn sg_on_figure1_graph_matches_the_paper() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, SG, EngineConfig::default()).unwrap();
        e.add_facts("Edge", figure1_edges()).unwrap();
        let stats = e.run().unwrap();
        // Figure 1's final SG (full) relation has 14 tuples.
        assert_eq!(e.relation_size("SG"), Some(14));
        for pair in [
            [1u32, 2],
            [2, 1],
            [3, 4],
            [3, 5],
            [4, 3],
            [4, 5],
            [5, 3],
            [5, 4],
            [6, 7],
            [6, 8],
            [7, 6],
            [7, 8],
            [8, 6],
            [8, 7],
        ] {
            assert!(
                e.contains("SG", &pair),
                "missing SG({}, {})",
                pair[0],
                pair[1]
            );
        }
        // Figure 1 shows the query converging after iteration 3 (the third
        // iteration produces an empty delta).
        assert_eq!(stats.iterations, 3);
    }

    #[test]
    fn fused_and_materialized_strategies_agree() {
        let d = device();
        let mut mat = GpulogEngine::from_source(&d, SG, EngineConfig::default()).unwrap();
        mat.add_facts("Edge", figure1_edges()).unwrap();
        mat.run().unwrap();
        let cfg = EngineConfig::new().with_nway(NwayStrategy::FusedNestedLoop);
        let mut fused = GpulogEngine::from_source(&d, SG, cfg).unwrap();
        fused.add_facts("Edge", figure1_edges()).unwrap();
        fused.run().unwrap();
        let mut a = mat.relation_tuples("SG").unwrap();
        let mut b = fused.relation_tuples("SG").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn ebm_on_and_off_produce_identical_results() {
        let d = device();
        let mut on = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        on.add_facts("Edge", figure1_edges()).unwrap();
        on.run().unwrap();
        let cfg = EngineConfig::new().with_ebm(EbmConfig::disabled());
        let mut off = GpulogEngine::from_source(&d, REACH, cfg).unwrap();
        off.add_facts("Edge", figure1_edges()).unwrap();
        off.run().unwrap();
        assert_eq!(on.relation_size("Reach"), off.relation_size("Reach"));
    }

    #[test]
    fn ground_facts_and_constants_evaluate() {
        let d = device();
        let src = r"
            .decl E(x: number, y: number)
            .decl R(x: number)
            .output R
            E(1, 2).
            E(2, 3).
            E(3, 3).
            R(x) :- E(x, 3).
        ";
        let mut e = GpulogEngine::from_source(&d, src, EngineConfig::default()).unwrap();
        e.run().unwrap();
        let mut tuples = e.relation_tuples("R").unwrap();
        tuples.sort();
        assert_eq!(tuples, vec![vec![2], vec![3]]);
    }

    #[test]
    fn all_constant_body_atoms_still_derive_head_tuples() {
        // A scan that binds no variables must not lose the matched rows
        // (regression: the zero-column intermediate used to come out empty).
        let src = r"
            .decl E(x: number, y: number)
            .decl F(x: number)
            .decl R(x: number)
            .output R
            E(2, 3).
            F(4).
            R(1) :- E(2, 3).
            R(9) :- E(2, 3), F(4).
            R(5) :- E(7, 7).
        ";
        for nway in [
            NwayStrategy::TemporarilyMaterialized,
            NwayStrategy::FusedNestedLoop,
        ] {
            let d = device();
            let cfg = EngineConfig::new().with_nway(nway);
            let mut e = GpulogEngine::from_source(&d, src, cfg).unwrap();
            e.run().unwrap();
            let mut tuples = e.relation_tuples("R").unwrap();
            tuples.sort();
            assert_eq!(tuples, vec![vec![1], vec![9]], "strategy {nway:?}");
        }
    }

    #[test]
    fn bad_facts_are_rejected_with_helpful_errors() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        assert!(matches!(
            e.add_facts("Nope", [[1u32, 2]]),
            Err(EngineError::BadFacts { .. })
        ));
        assert!(e.add_facts("Edge", [[1u32, 2, 3]]).is_err());
        assert!(e.add_facts_flat("Edge", &[1, 2, 3]).is_err());
        e.add_facts_flat("Edge", &[1, 2]).unwrap();
        e.run().unwrap();
        assert!(e.add_facts("Edge", [[5u32, 6]]).is_err());
    }

    #[test]
    fn ragged_flat_facts_get_the_dedicated_error() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        match e.add_facts_flat("Edge", &[1, 2, 3]) {
            Err(EngineError::RaggedFacts {
                relation,
                len,
                arity,
            }) => {
                assert_eq!(relation, "Edge");
                assert_eq!(len, 3);
                assert_eq!(arity, 2);
            }
            other => panic!("expected RaggedFacts, got {other:?}"),
        }
        // Unknown relations still get BadFacts, even with a ragged buffer.
        assert!(matches!(
            e.add_facts_flat("Nope", &[1, 2, 3]),
            Err(EngineError::BadFacts { .. })
        ));
        // A rejected buffer must leave no partial tail in the EDB.
        e.run().unwrap();
        assert_eq!(e.relation_size("Edge"), Some(0));
    }

    #[test]
    fn builder_constructs_and_runs_like_from_source() {
        let d = device();
        let mut e = GpulogEngine::builder(&d)
            .program(REACH)
            .nway(NwayStrategy::TemporarilyMaterialized)
            .max_iterations(100)
            .build()
            .unwrap();
        assert_eq!(e.backend().name(), "serial");
        assert_eq!(e.config().max_iterations, 100);
        e.add_facts("Edge", [[0u32, 1], [1, 2]]).unwrap();
        e.run().unwrap();
        assert_eq!(e.relation_size("Reach"), Some(3));
    }

    #[test]
    fn builder_without_a_program_is_a_validation_error() {
        let d = device();
        assert!(matches!(
            GpulogEngine::builder(&d).build(),
            Err(EngineError::Validation { .. })
        ));
    }

    #[test]
    fn builder_accepts_ast_compiled_and_custom_backend() {
        let d = device();
        let program = crate::parser::parse_program(REACH).unwrap();
        let mut from_ast = GpulogEngine::builder(&d)
            .program_ast(&program)
            .build()
            .unwrap();
        from_ast.add_facts("Edge", [[0u32, 1]]).unwrap();
        from_ast.run().unwrap();
        assert_eq!(from_ast.relation_size("Reach"), Some(1));

        let compiled = compile(&program).unwrap();
        let mut from_compiled = GpulogEngine::builder(&d)
            .compiled(compiled)
            .backend(Box::new(SerialBackend))
            .config(EngineConfig::new().with_load_factor(0.7))
            .build()
            .unwrap();
        assert_eq!(from_compiled.config().load_factor, 0.7);
        from_compiled
            .add_facts("Edge", [[0u32, 1], [1, 2]])
            .unwrap();
        from_compiled.run().unwrap();
        assert_eq!(from_compiled.relation_size("Reach"), Some(3));
    }

    #[test]
    fn relation_accessors_expose_batches_and_borrowed_rows() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        e.add_facts_batch("Edge", &TupleBatch::from_rows(2, [[0u32, 1], [1, 2]]))
            .unwrap();
        e.run().unwrap();
        let batch = e.relation_batch("Reach").unwrap();
        assert_eq!(batch.len(), 3);
        let rows: Vec<&[u32]> = e.relation_tuples_iter("Reach").unwrap().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(e.relation_tuples("Reach").unwrap().len(), 3);
        assert!(e.relation_batch("Nope").is_none());
        assert!(e.relation_tuples_iter("Nope").is_none());
    }

    #[test]
    fn shard_count_above_one_installs_the_sharded_backend() {
        let d = device();
        let e = GpulogEngine::builder(&d)
            .program(REACH)
            .shard_count(4)
            .build()
            .unwrap();
        assert_eq!(e.backend().name(), "sharded");
        assert_eq!(e.config().shard_count, 4);
        // An explicit backend wins over the shard-count default.
        let e = GpulogEngine::builder(&d)
            .program(REACH)
            .shard_count(4)
            .backend(Box::new(SerialBackend))
            .build()
            .unwrap();
        assert_eq!(e.backend().name(), "serial");
    }

    #[test]
    fn zero_shard_count_is_rejected_at_construction() {
        let d = device();
        assert!(matches!(
            GpulogEngine::builder(&d)
                .program(REACH)
                .shard_count(0)
                .build(),
            Err(EngineError::InvalidShardCount { shards: 0 })
        ));
        let cfg = EngineConfig::new().with_shard_count(0);
        assert!(matches!(
            GpulogEngine::from_source(&d, REACH, cfg),
            Err(EngineError::InvalidShardCount { shards: 0 })
        ));
    }

    #[test]
    fn pipelined_config_installs_the_pipelined_backend() {
        let d = device();
        let e = GpulogEngine::builder(&d)
            .program(REACH)
            .pipelined(4)
            .build()
            .unwrap();
        assert_eq!(e.backend().name(), "pipelined");
        assert_eq!(e.config().pipelined, 4);
        // Zero pipelined shards keep the bulk-synchronous default.
        let e = GpulogEngine::builder(&d)
            .program(REACH)
            .pipelined(0)
            .build()
            .unwrap();
        assert_eq!(e.backend().name(), "serial");
        // A matching explicit shard count is accepted; a conflicting one
        // and a topology combination are rejected.
        let ok = GpulogEngine::builder(&d)
            .program(REACH)
            .shard_count(4)
            .pipelined(4)
            .build();
        assert!(ok.is_ok());
        let conflict = GpulogEngine::builder(&d)
            .program(REACH)
            .shard_count(2)
            .pipelined(4)
            .build();
        assert!(matches!(conflict, Err(EngineError::Validation { .. })));
        use gpulog_device::topology::DeviceTopology;
        use std::num::NonZeroUsize;
        let with_topology = GpulogEngine::builder(&d)
            .program(REACH)
            .pipelined(2)
            .device_topology(DeviceTopology::nvlink_like(NonZeroUsize::new(2).unwrap()))
            .build();
        assert!(matches!(with_topology, Err(EngineError::Validation { .. })));
    }

    #[test]
    fn pipelined_fixpoints_match_serial_and_report_overlap() {
        let d = device();
        let mut serial = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        serial
            .add_facts("Edge", [[0u32, 1], [1, 2], [2, 3], [3, 4], [4, 5]])
            .unwrap();
        let serial_stats = serial.run().unwrap();
        let cfg = EngineConfig::new().with_pipelined(2);
        let mut pipelined = GpulogEngine::from_source(&d, REACH, cfg).unwrap();
        pipelined
            .add_facts("Edge", [[0u32, 1], [1, 2], [2, 3], [3, 4], [4, 5]])
            .unwrap();
        let stats = pipelined.run().unwrap();
        assert_eq!(
            pipelined.relation_batch("Reach").unwrap().as_flat(),
            serial.relation_batch("Reach").unwrap().as_flat(),
            "pipelined fixpoint must match serial byte-for-byte"
        );
        assert_eq!(stats.iterations, serial_stats.iterations);
        // The chain needs enough iterations to defer at least one merge
        // behind the next iteration's joins.
        assert!(stats.overlap_nanos > 0, "a merge must have been deferred");
        assert!(stats.epochs_in_flight >= 1);
        assert_eq!(serial_stats.overlap_nanos, 0);
        assert_eq!(serial_stats.epochs_in_flight, 0);
    }

    #[test]
    fn device_topology_installs_the_multigpu_backend() {
        use gpulog_device::topology::DeviceTopology;
        use std::num::NonZeroUsize;
        let d = device();
        let topology = DeviceTopology::nvlink_like(NonZeroUsize::new(2).unwrap());
        let e = GpulogEngine::builder(&d)
            .program(REACH)
            .device_topology(topology.clone())
            .build()
            .unwrap();
        assert_eq!(e.backend().name(), "multigpu");
        // A matching explicit shard count is accepted; a conflicting one
        // is rejected (each shard pins to exactly one device).
        let ok = GpulogEngine::builder(&d)
            .program(REACH)
            .shard_count(2)
            .device_topology(topology.clone())
            .build();
        assert!(ok.is_ok());
        let conflict = GpulogEngine::builder(&d)
            .program(REACH)
            .shard_count(3)
            .device_topology(topology.clone())
            .build();
        assert!(matches!(conflict, Err(EngineError::Validation { .. })));
        // An explicit backend still wins over the topology default.
        let explicit = GpulogEngine::builder(&d)
            .program(REACH)
            .device_topology(topology)
            .backend(Box::new(SerialBackend))
            .build()
            .unwrap();
        assert_eq!(explicit.backend().name(), "serial");
    }

    #[test]
    fn multigpu_run_reports_topology_stats() {
        use gpulog_device::topology::DeviceTopology;
        use std::num::NonZeroUsize;
        let d = device();
        let cfg = EngineConfig::new()
            .with_device_topology(DeviceTopology::nvlink_like(NonZeroUsize::new(4).unwrap()));
        let mut e = GpulogEngine::from_source(&d, REACH, cfg).unwrap();
        e.add_facts("Edge", figure1_edges()).unwrap();
        let stats = e.run().unwrap();
        let report = stats.topology.expect("multigpu runs report a topology");
        assert_eq!(report.devices.len(), 4);
        assert_eq!(report.link, "NVLink-like");
        assert!(report.modeled_critical_path_sec > 0.0);
        assert!(
            report.total_exchange_bytes > 0,
            "the delta exchange moves bytes"
        );
        // Serial runs report none.
        let mut serial = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        serial.add_facts("Edge", figure1_edges()).unwrap();
        assert!(serial.run().unwrap().topology.is_none());
    }

    #[test]
    fn degenerate_load_factor_is_a_typed_engine_error() {
        let d = device();
        for bad in [0.0, -1.0, f64::NAN, 2.0] {
            let cfg = EngineConfig::new().with_load_factor(bad);
            match GpulogEngine::from_source(&d, REACH, cfg) {
                Err(EngineError::Device(gpulog_device::DeviceError::InvalidLoadFactor {
                    ..
                })) => {}
                other => panic!("load factor {bad}: expected InvalidLoadFactor, got {other:?}"),
            }
        }
    }

    #[test]
    fn multigpu_fixpoints_are_byte_identical_to_serial() {
        use gpulog_device::topology::DeviceTopology;
        use std::num::NonZeroUsize;
        for (name, src) in [("reach", REACH), ("sg", SG)] {
            let d = device();
            let mut serial = GpulogEngine::from_source(&d, src, EngineConfig::default()).unwrap();
            serial.add_facts("Edge", figure1_edges()).unwrap();
            let serial_stats = serial.run().unwrap();
            for devices in [1usize, 2, 7] {
                let topology = DeviceTopology::nvlink_like(NonZeroUsize::new(devices).unwrap());
                let cfg = EngineConfig::new().with_device_topology(topology);
                let mut multi = GpulogEngine::from_source(&d, src, cfg).unwrap();
                multi.add_facts("Edge", figure1_edges()).unwrap();
                let stats = multi.run().unwrap();
                let out = if src.contains("SG(") { "SG" } else { "Reach" };
                assert_eq!(
                    multi.relation_batch(out).unwrap().as_flat(),
                    serial.relation_batch(out).unwrap().as_flat(),
                    "{name} on {devices} devices must match serial byte-for-byte"
                );
                assert_eq!(
                    stats.iterations, serial_stats.iterations,
                    "{name}/{devices}"
                );
            }
        }
    }

    #[test]
    fn sharded_fixpoints_are_byte_identical_to_serial() {
        for (name, src) in [("reach", REACH), ("sg", SG)] {
            let d = device();
            let mut serial = GpulogEngine::from_source(&d, src, EngineConfig::default()).unwrap();
            serial.add_facts("Edge", figure1_edges()).unwrap();
            let serial_stats = serial.run().unwrap();
            for shards in [2usize, 4, 7] {
                let cfg = EngineConfig::new().with_shard_count(shards);
                let mut sharded = GpulogEngine::from_source(&d, src, cfg).unwrap();
                sharded.add_facts("Edge", figure1_edges()).unwrap();
                let stats = sharded.run().unwrap();
                let out = if src.contains("SG(") { "SG" } else { "Reach" };
                assert_eq!(
                    sharded.relation_batch(out).unwrap().as_flat(),
                    serial.relation_batch(out).unwrap().as_flat(),
                    "{name} with {shards} shards must match serial byte-for-byte"
                );
                assert_eq!(stats.iterations, serial_stats.iterations, "{name}/{shards}");
            }
        }
    }

    #[test]
    fn empty_input_produces_empty_output_and_converges_immediately() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        let stats = e.run().unwrap();
        assert_eq!(e.relation_size("Reach"), Some(0));
        assert!(stats.iterations <= 1);
    }

    #[test]
    fn oom_on_a_tiny_device_is_reported_not_panicked() {
        let d = Device::with_workers(DeviceProfile::tiny_test_device(48 * 1024), 2);
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        // A complete graph on 40 nodes explodes well past 48 KiB of VRAM.
        let mut edges = Vec::new();
        for a in 0..40u32 {
            for b in 0..40u32 {
                if a != b {
                    edges.push([a, b]);
                }
            }
        }
        e.add_facts("Edge", edges).unwrap();
        match e.run() {
            Err(EngineError::Device(err)) => {
                assert!(matches!(
                    err,
                    gpulog_device::DeviceError::OutOfMemory { .. }
                ));
            }
            other => panic!("expected an out-of-memory error, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_before_any_run_is_a_typed_error() {
        let d = device();
        let e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        assert!(!e.has_run());
        assert_eq!(e.generation(), 0);
        assert!(matches!(e.snapshot(), Err(EngineError::NoFixpoint)));
    }

    #[test]
    fn insert_facts_and_rerun_grow_the_fixpoint_while_old_snapshots_hold() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        e.add_facts("Edge", [[0u32, 1], [1, 2]]).unwrap();
        e.run().unwrap();
        let first = e.snapshot().unwrap();
        assert_eq!(first.generation(), 1);
        assert_eq!(first.relation_size("Reach"), Some(3));

        // The strict pre-run path still rejects post-run additions, but the
        // serving writer's insert path accepts them.
        assert!(e.add_facts("Edge", [[2u32, 3]]).is_err());
        e.insert_facts_batch("Edge", &TupleBatch::from_rows(2, [[2u32, 3]]))
            .unwrap();
        e.run().unwrap();
        let second = e.snapshot().unwrap();
        assert_eq!(second.generation(), 2);
        assert_eq!(second.relation_size("Reach"), Some(6));
        // The first snapshot still holds its own complete fixpoint.
        assert_eq!(first.relation_size("Reach"), Some(3));
        assert!(!first.contains("Reach", &[0, 3]));

        // The incremental re-run is byte-identical to computing the
        // enlarged fixpoint from scratch.
        let mut scratch = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        scratch
            .add_facts("Edge", [[0u32, 1], [1, 2], [2, 3]])
            .unwrap();
        scratch.run().unwrap();
        assert_eq!(
            second.sorted_tuples_flat("Reach"),
            scratch.snapshot().unwrap().sorted_tuples_flat("Reach")
        );
        // Duplicate inserts are deduplicated, not double-counted.
        e.insert_facts_batch("Edge", &TupleBatch::from_rows(2, [[2u32, 3]]))
            .unwrap();
        e.run().unwrap();
        assert_eq!(e.relation_size("Edge"), Some(3));
        assert_eq!(e.relation_size("Reach"), Some(6));
        // Unknown relations and arity mismatches stay typed errors.
        assert!(matches!(
            e.insert_facts_batch("Nope", &TupleBatch::from_rows(2, [[1u32, 2]])),
            Err(EngineError::BadFacts { .. })
        ));
        assert!(e
            .insert_facts_batch("Edge", &TupleBatch::from_rows(3, [[1u32, 2, 3]]))
            .is_err());
    }

    #[test]
    fn adaptive_merge_batching_engages_on_chain_reach() {
        let d = device();
        let chain: Vec<[u32; 2]> = (0..30u32).map(|i| [i, i + 1]).collect();
        let mut serial = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        serial.add_facts("Edge", chain.clone()).unwrap();
        let serial_stats = serial.run().unwrap();
        assert_eq!(serial_stats.adaptive_merge_batches, 0);

        let cfg = EngineConfig::new().with_pipelined(2);
        let mut pipelined = GpulogEngine::from_source(&d, REACH, cfg).unwrap();
        pipelined.add_facts("Edge", chain).unwrap();
        let stats = pipelined.run().unwrap();
        // Late chain iterations derive a handful of pairs against a large
        // full — exactly the regime the adaptive policy batches harder in.
        assert!(
            stats.adaptive_merge_batches > 0,
            "adaptive batching must engage on chain-REACH, stats: {stats:?}"
        );
        assert_eq!(
            pipelined.relation_batch("Reach").unwrap().as_flat(),
            serial.relation_batch("Reach").unwrap().as_flat(),
            "adaptive batching must not change the fixpoint"
        );
    }

    #[test]
    fn run_stats_capture_phases_and_memory() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, SG, EngineConfig::default()).unwrap();
        e.add_facts("Edge", figure1_edges()).unwrap();
        let stats = e.run().unwrap();
        assert!(stats.wall_seconds > 0.0);
        assert!(stats.modeled_seconds() > 0.0);
        assert!(stats.peak_device_bytes > 0);
        assert!(stats.phase(Phase::Join) > 0.0);
        assert!(stats.phase(Phase::Merge) > 0.0);
        assert!(stats.phase(Phase::Deduplication) > 0.0);
    }

    /// Left-recursive REACH: under a bound-free goal the only magic rule
    /// is the identity, so the magic set stays exactly the goal source.
    const REACH_LEFT: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl Reach(x: number, y: number)
        .output Reach
        Reach(x, y) :- Edge(x, y).
        Reach(x, z) :- Reach(x, y), Edge(y, z).
    ";

    /// The full closure's Reach rows from `source`, canonically sorted.
    fn filtered_closure(engine: &GpulogEngine, source: u32) -> Vec<u32> {
        let batch = engine.relation_batch("Reach").unwrap();
        let mut rows: Vec<&[u32]> = batch
            .as_flat()
            .chunks(2)
            .filter(|row| row[0] == source)
            .collect();
        rows.sort_unstable();
        rows.iter().flat_map(|r| r.iter().copied()).collect()
    }

    #[test]
    fn run_query_matches_the_filtered_full_closure() {
        for src in [REACH, REACH_LEFT] {
            let d = device();
            let mut full = GpulogEngine::from_source(&d, src, EngineConfig::default()).unwrap();
            full.add_facts("Edge", figure1_edges()).unwrap();
            full.run().unwrap();
            // run_query works on a never-run engine: the staged facts are
            // the extensional database it copies.
            let mut fresh = GpulogEngine::from_source(&d, src, EngineConfig::default()).unwrap();
            fresh.add_facts("Edge", figure1_edges()).unwrap();
            for source in [0u32, 2, 4, 8] {
                let expected = filtered_closure(&full, source);
                let got = fresh
                    .run_query_with("Reach", &[Some(source), None])
                    .unwrap();
                assert_eq!(got.answers.as_flat(), &expected[..], "source {source}");
                assert!(got.answers.is_sorted_unique());
            }
        }
    }

    #[test]
    fn run_query_after_a_run_reuses_the_materialized_edb() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH_LEFT, EngineConfig::default()).unwrap();
        e.add_facts("Edge", figure1_edges()).unwrap();
        e.run().unwrap();
        let expected = filtered_closure(&e, 1);
        let got = e.run_query_with("Reach", &[Some(1), None]).unwrap();
        assert_eq!(got.answers.as_flat(), &expected[..]);
        // The goal-directed run left the engine itself untouched.
        assert_eq!(e.generation(), 1);
    }

    #[test]
    fn run_query_materializes_fewer_tuples_than_the_closure() {
        let d = device();
        let chain: Vec<[u32; 2]> = (0..40u32).map(|i| [i, i + 1]).collect();
        let mut full = GpulogEngine::from_source(&d, REACH_LEFT, EngineConfig::default()).unwrap();
        full.add_facts("Edge", chain.clone()).unwrap();
        full.run().unwrap();
        let closure = full.relation_size("Reach").unwrap();
        let mut e = GpulogEngine::from_source(&d, REACH_LEFT, EngineConfig::default()).unwrap();
        e.add_facts("Edge", chain).unwrap();
        // Reach from the tail: one answer, a one-tuple magic set, and a
        // 41-tuple closure row block versus the full 820-pair closure.
        let got = e.run_query_with("Reach", &[Some(39), None]).unwrap();
        assert_eq!(got.answers.len(), 1);
        assert!(
            got.tuples_materialized < closure,
            "magic materialized {} tuples, the closure holds {closure}",
            got.tuples_materialized
        );
        assert!(got.stats.iterations >= 1);
    }

    #[test]
    fn run_query_uses_the_embedded_goal() {
        let d = device();
        let with_goal = format!("{REACH_LEFT}\n?- Reach(0, y).");
        let mut e = GpulogEngine::from_source(&d, &with_goal, EngineConfig::default()).unwrap();
        e.add_facts("Edge", figure1_edges()).unwrap();
        let from_goal = e.run_query().unwrap();
        let ad_hoc = e.run_query_with("Reach", &[Some(0), None]).unwrap();
        assert_eq!(from_goal.answers.as_flat(), ad_hoc.answers.as_flat());
        // The plain run ignores the goal and still materializes everything.
        e.run().unwrap();
        assert_eq!(e.relation_size("Reach"), Some(21));
    }

    #[test]
    fn run_query_error_paths_are_typed() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH_LEFT, EngineConfig::default()).unwrap();
        e.add_facts("Edge", [[0u32, 1]]).unwrap();
        assert!(matches!(e.run_query(), Err(EngineError::MissingQuery)));
        assert!(matches!(
            e.run_query_with("Ghost", &[Some(1)]),
            Err(EngineError::UnknownQueryRelation { .. })
        ));
        assert!(matches!(
            e.run_query_with("Reach", &[Some(1)]),
            Err(EngineError::QueryArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
        // Pre-compiled engines have no AST to rewrite.
        let program = crate::parser::parse_program(REACH_LEFT).unwrap();
        let compiled = compile(&program).unwrap();
        let precompiled =
            GpulogEngine::from_compiled(&d, compiled, EngineConfig::default()).unwrap();
        assert!(matches!(
            precompiled.run_query_with("Reach", &[Some(1), None]),
            Err(EngineError::Validation { .. })
        ));
    }

    #[test]
    fn run_query_honours_the_configured_backend() {
        use gpulog_device::topology::DeviceTopology;
        use std::num::NonZeroUsize;
        let d = device();
        let configs = [
            EngineConfig::default(),
            EngineConfig::new().with_shard_count(4),
            EngineConfig::new().with_pipelined(4),
            EngineConfig::new()
                .with_device_topology(DeviceTopology::nvlink_like(NonZeroUsize::new(2).unwrap())),
        ];
        let mut baseline: Option<Vec<u32>> = None;
        for cfg in configs {
            let mut e = GpulogEngine::from_source(&d, REACH_LEFT, cfg).unwrap();
            e.add_facts("Edge", figure1_edges()).unwrap();
            let got = e.run_query_with("Reach", &[Some(0), None]).unwrap();
            let flat = got.answers.as_flat().to_vec();
            match &baseline {
                None => baseline = Some(flat),
                Some(expected) => assert_eq!(&flat, expected, "backends must agree"),
            }
        }
    }
}
