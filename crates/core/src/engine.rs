//! The semi-naïve fixpoint engine (paper Sections 2 and 5, Figure 3).
//!
//! Evaluation proceeds stratum by stratum. Within a recursive stratum the
//! engine runs the classic semi-naïve loop: evaluate every delta-version
//! rule plan, deduplicate the resulting `new` tuples and subtract `full`
//! (populating the next `delta`), merge `delta` into `full`, and repeat
//! until every delta is empty. Each phase is timed into the buckets the
//! paper's Figure 6 reports, and memory behaviour follows the configured
//! eager-buffer-management policy.

use crate::ast::Program;
use crate::ebm::EbmConfig;
use crate::error::{EngineError, EngineResult};
use crate::planner::{compile, CompiledProgram, RulePlan, VersionSel};
use crate::ra::nway::{fused_rule_join, FusedLevel, NwayStrategy};
use crate::ra::project::{filter_rows, scan_select};
use crate::ra::{difference, hash_join, project_rows};
use crate::relation::RelationStorage;
use crate::stats::{IterationRecord, Phase, RunStats};
use gpulog_device::Device;
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// HISA hash-table load factor (the paper runs 0.8).
    pub load_factor: f64,
    /// Eager buffer management policy.
    pub ebm: EbmConfig,
    /// n-way join strategy.
    pub nway: NwayStrategy,
    /// Safety limit on fixpoint iterations per stratum.
    pub max_iterations: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            load_factor: gpulog_hisa::DEFAULT_LOAD_FACTOR,
            ebm: EbmConfig::default(),
            nway: NwayStrategy::TemporarilyMaterialized,
            max_iterations: 1_000_000,
        }
    }
}

/// The GPUlog Datalog engine.
///
/// # Examples
///
/// ```
/// use gpulog::{GpulogEngine, EngineConfig};
/// use gpulog_device::{Device, profile::DeviceProfile};
///
/// # fn main() -> Result<(), gpulog::EngineError> {
/// let device = Device::new(DeviceProfile::default());
/// let source = r"
///     .decl Edge(x: number, y: number)
///     .input Edge
///     .decl Reach(x: number, y: number)
///     .output Reach
///     Reach(x, y) :- Edge(x, y).
///     Reach(x, y) :- Edge(x, z), Reach(z, y).
/// ";
/// let mut engine = GpulogEngine::from_source(&device, source, EngineConfig::default())?;
/// engine.add_facts("Edge", [[0, 1], [1, 2], [2, 3]])?;
/// let stats = engine.run()?;
/// assert_eq!(engine.relation_size("Reach"), Some(6));
/// assert!(stats.iterations >= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GpulogEngine {
    device: Device,
    compiled: CompiledProgram,
    relations: Vec<RelationStorage>,
    pending_facts: Vec<Vec<u32>>,
    config: EngineConfig,
    has_run: bool,
}

impl GpulogEngine {
    /// Builds an engine from an already-constructed [`Program`].
    ///
    /// # Errors
    ///
    /// Returns validation errors for ill-formed programs and device errors
    /// if the empty relation storage cannot be allocated.
    pub fn new(device: &Device, program: &Program, config: EngineConfig) -> EngineResult<Self> {
        let compiled = compile(program)?;
        Self::from_compiled(device, compiled, config)
    }

    /// Builds an engine from Soufflé-style source text.
    ///
    /// # Errors
    ///
    /// Returns parse errors, validation errors, or device errors.
    pub fn from_source(device: &Device, source: &str, config: EngineConfig) -> EngineResult<Self> {
        let program = crate::parser::parse_program(source)?;
        Self::new(device, &program, config)
    }

    /// Builds an engine from a pre-compiled program.
    ///
    /// # Errors
    ///
    /// Returns device errors if the empty relation storage cannot be
    /// allocated.
    pub fn from_compiled(
        device: &Device,
        compiled: CompiledProgram,
        config: EngineConfig,
    ) -> EngineResult<Self> {
        let mut relations = Vec::with_capacity(compiled.relation_names.len());
        for (name, &arity) in compiled.relation_names.iter().zip(compiled.arities.iter()) {
            relations.push(RelationStorage::new(
                device,
                name,
                arity,
                config.load_factor,
            )?);
        }
        let pending_facts = vec![Vec::new(); compiled.relation_names.len()];
        Ok(GpulogEngine {
            device: device.clone(),
            compiled,
            relations,
            pending_facts,
            config,
            has_run: false,
        })
    }

    /// The device this engine runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The compiled program (plans, strata, relation metadata).
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Adds extensional facts to an input relation. Must be called before
    /// [`GpulogEngine::run`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadFacts`] for unknown relations, wrong
    /// arities, or facts added after the engine has run.
    pub fn add_facts<I, T>(&mut self, relation: &str, tuples: I) -> EngineResult<()>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u32]>,
    {
        if self.has_run {
            return Err(EngineError::BadFacts {
                relation: relation.to_string(),
                message: "facts cannot be added after the engine has run".into(),
            });
        }
        let id = self
            .compiled
            .relation_id(relation)
            .ok_or_else(|| EngineError::BadFacts {
                relation: relation.to_string(),
                message: "unknown relation".into(),
            })?;
        let arity = self.compiled.arities[id];
        let buffer = &mut self.pending_facts[id];
        for tuple in tuples {
            let tuple = tuple.as_ref();
            if tuple.len() != arity {
                return Err(EngineError::BadFacts {
                    relation: relation.to_string(),
                    message: format!("expected arity {arity}, got {}", tuple.len()),
                });
            }
            buffer.extend_from_slice(tuple);
        }
        Ok(())
    }

    /// Adds extensional facts from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::BadFacts`] for unknown relations or buffers
    /// whose length is not a multiple of the arity.
    pub fn add_facts_flat(&mut self, relation: &str, flat: &[u32]) -> EngineResult<()> {
        let id = self
            .compiled
            .relation_id(relation)
            .ok_or_else(|| EngineError::BadFacts {
                relation: relation.to_string(),
                message: "unknown relation".into(),
            })?;
        let arity = self.compiled.arities[id];
        if !flat.len().is_multiple_of(arity) {
            return Err(EngineError::BadFacts {
                relation: relation.to_string(),
                message: format!(
                    "buffer length {} is not a multiple of arity {arity}",
                    flat.len()
                ),
            });
        }
        if self.has_run {
            return Err(EngineError::BadFacts {
                relation: relation.to_string(),
                message: "facts cannot be added after the engine has run".into(),
            });
        }
        self.pending_facts[id].extend_from_slice(flat);
        Ok(())
    }

    /// Number of tuples in a relation's full version.
    pub fn relation_size(&self, relation: &str) -> Option<usize> {
        self.compiled
            .relation_id(relation)
            .map(|id| self.relations[id].len())
    }

    /// All tuples of a relation, in declared column order.
    pub fn relation_tuples(&self, relation: &str) -> Option<Vec<Vec<u32>>> {
        self.compiled.relation_id(relation).map(|id| {
            self.relations[id]
                .tuples_iter()
                .map(<[u32]>::to_vec)
                .collect()
        })
    }

    /// Whether a relation contains a tuple.
    pub fn contains(&self, relation: &str, tuple: &[u32]) -> bool {
        self.compiled
            .relation_id(relation)
            .map(|id| self.relations[id].contains(tuple))
            .unwrap_or(false)
    }

    /// Runs the program to fixpoint.
    ///
    /// # Errors
    ///
    /// Returns device errors (including out-of-memory, which reproduces the
    /// paper's OOM rows) and [`EngineError::IterationLimit`] if a stratum
    /// does not converge within the configured bound.
    pub fn run(&mut self) -> EngineResult<RunStats> {
        let wall_start = Instant::now();
        let counters_before = self.device.metrics().snapshot();
        let mut stats = RunStats::default();

        // Load the extensional database (program facts + added facts).
        let t = Instant::now();
        let mut fact_buffers: Vec<Vec<u32>> = std::mem::take(&mut self.pending_facts);
        for (rel, tuple) in &self.compiled.facts {
            fact_buffers[*rel].extend_from_slice(tuple);
        }
        for (rel, buffer) in fact_buffers.iter().enumerate() {
            if !buffer.is_empty() || self.compiled.inputs[rel] {
                self.relations[rel].load_full(buffer)?;
            }
        }
        self.pending_facts = vec![Vec::new(); self.relations.len()];
        stats.add_phase(Phase::Other, t.elapsed());

        let strata = self.compiled.strata.clone();
        for (stratum_idx, stratum) in strata.iter().enumerate() {
            // Non-recursive rules: evaluate once over full versions.
            for plan in &stratum.non_recursive {
                self.eval_plan(plan, &mut stats)?;
            }
            let (nr_new, nr_delta) = self.populate_and_merge(&stratum.relations, &mut stats)?;

            if stratum.is_recursive && !stratum.recursive.is_empty() {
                // Seed the deltas with everything currently in full.
                let t = Instant::now();
                let mut seeded = 0usize;
                for &rel in &stratum.relations {
                    let flat = self.relations[rel].full.tuples_flat().to_vec();
                    seeded += self.relations[rel].len();
                    self.relations[rel].set_delta(&flat)?;
                }
                stats.add_phase(Phase::IndexDelta, t.elapsed());
                if seeded == 0 {
                    // Nothing to iterate over; the stratum is already at
                    // fixpoint.
                    for &rel in &stratum.relations {
                        self.relations[rel].clear_delta()?;
                    }
                    continue;
                }
                // The paper counts the initial (non-recursive) evaluation as
                // iteration 1 (see Figure 1), so record it that way.
                stats.iteration_records.push(IterationRecord {
                    stratum: stratum_idx,
                    iteration: 1,
                    new_tuples: nr_new,
                    delta_tuples: nr_delta.max(seeded),
                });
                stats.iterations += 1;

                let mut iteration = 1usize;
                loop {
                    iteration += 1;
                    if iteration > self.config.max_iterations {
                        return Err(EngineError::IterationLimit {
                            limit: self.config.max_iterations,
                        });
                    }
                    for plan in &stratum.recursive {
                        self.eval_plan(plan, &mut stats)?;
                    }
                    let (new_count, delta_count) =
                        self.populate_and_merge(&stratum.relations, &mut stats)?;
                    stats.iteration_records.push(IterationRecord {
                        stratum: stratum_idx,
                        iteration,
                        new_tuples: new_count,
                        delta_tuples: delta_count,
                    });
                    stats.iterations += 1;
                    if delta_count == 0 {
                        break;
                    }
                }
                // Clear deltas so later strata see a clean state.
                for &rel in &stratum.relations {
                    self.relations[rel].clear_delta()?;
                }
            }
        }

        // Finalize statistics.
        stats.wall_seconds = wall_start.elapsed().as_secs_f64();
        let counters_after = self.device.metrics().snapshot();
        stats.modeled = self
            .device
            .cost_model()
            .estimate(&counters_after.since(&counters_before));
        stats.peak_device_bytes = self.device.metrics().peak_bytes_in_use();
        stats.allocations = counters_after.allocations - counters_before.allocations;
        stats.pool_reuses = counters_after.pool_reuses - counters_before.pool_reuses;
        for (rel, storage) in self.relations.iter().enumerate() {
            stats
                .relation_sizes
                .insert(self.compiled.relation_names[rel].clone(), storage.len());
        }
        self.has_run = true;
        Ok(stats)
    }

    /// Deduplicates each relation's `new` buffer against its full version,
    /// installs the result as the next delta, and merges it into full.
    /// Returns `(total raw new tuples, total delta tuples)`.
    fn populate_and_merge(
        &mut self,
        relations: &[usize],
        stats: &mut RunStats,
    ) -> EngineResult<(usize, usize)> {
        let mut total_new = 0usize;
        let mut total_delta = 0usize;
        for &rel in relations {
            let arity = self.relations[rel].arity;
            let new = self.relations[rel].take_new(&self.config.ebm);
            total_new += new.len() / arity;

            let t = Instant::now();
            let delta = {
                let full = self.relations[rel].full.canonical();
                difference(&self.device, &new, arity, full)
            };
            stats.add_phase(Phase::Deduplication, t.elapsed());
            total_delta += delta.len() / arity;

            let t = Instant::now();
            // `difference` emits sorted, deduplicated, full-disjoint rows,
            // so the delta HISA skips its sort/dedup passes entirely.
            self.relations[rel].set_delta_sorted_unique(&delta)?;
            stats.add_phase(Phase::IndexDelta, t.elapsed());

            let t = Instant::now();
            let ebm = self.config.ebm;
            self.relations[rel].merge_delta_into_full(&ebm)?;
            stats.add_phase(Phase::Merge, t.elapsed());
        }
        Ok((total_new, total_delta))
    }

    /// Evaluates one rule plan, appending derived head tuples to the head
    /// relation's `new` buffer.
    fn eval_plan(&mut self, plan: &RulePlan, stats: &mut RunStats) -> EngineResult<()> {
        if plan.trivially_empty {
            return Ok(());
        }
        // Scan step.
        let t = Instant::now();
        let scan_rel = &self.relations[plan.scan.relation];
        let (source, source_is_delta) = match plan.scan.version {
            VersionSel::Full => (&scan_rel.full, false),
            VersionSel::Delta => (&scan_rel.delta, true),
        };
        if source.is_empty() {
            return Ok(());
        }
        let arity = scan_rel.arity;
        let mut intermediate = scan_select(
            &self.device,
            source.tuples_flat(),
            arity,
            &plan.scan.const_filters,
            &plan.scan.eq_filters,
            &plan.scan.keep_cols,
        );
        let mut inter_arity = plan.scan.keep_cols.len();
        let _ = source_is_delta;
        if !plan.filters[0].is_empty() {
            intermediate = filter_rows(&self.device, &intermediate, inter_arity, &plan.filters[0]);
        }
        stats.add_phase(Phase::Join, t.elapsed());

        let head_tuples = match self.config.nway {
            NwayStrategy::TemporarilyMaterialized => {
                for (k, join) in plan.joins.iter().enumerate() {
                    if intermediate.is_empty() {
                        break;
                    }
                    // Build or fetch the inner index.
                    let t = Instant::now();
                    let index_phase = match join.version {
                        VersionSel::Full => Phase::IndexFull,
                        VersionSel::Delta => Phase::IndexDelta,
                    };
                    {
                        let storage = &mut self.relations[join.relation];
                        let version = match join.version {
                            VersionSel::Full => &mut storage.full,
                            VersionSel::Delta => &mut storage.delta,
                        };
                        version.index_on(&self.device, &join.inner_key_cols)?;
                    }
                    stats.add_phase(index_phase, t.elapsed());

                    let t = Instant::now();
                    let storage = &self.relations[join.relation];
                    let version = match join.version {
                        VersionSel::Full => &storage.full,
                        VersionSel::Delta => &storage.delta,
                    };
                    let inner = version
                        .existing_index(&join.inner_key_cols)
                        .expect("index built above");
                    intermediate = hash_join(
                        &self.device,
                        &intermediate,
                        inter_arity,
                        &join.outer_key_cols,
                        inner,
                        &join.inner_const_filters,
                        &join.inner_eq_filters,
                        &join.emit,
                    );
                    inter_arity = join.emit.len();
                    if !plan.filters[k + 1].is_empty() {
                        intermediate = filter_rows(
                            &self.device,
                            &intermediate,
                            inter_arity,
                            &plan.filters[k + 1],
                        );
                    }
                    stats.add_phase(Phase::Join, t.elapsed());
                }
                if intermediate.is_empty() {
                    return Ok(());
                }
                let t = Instant::now();
                let head = project_rows(&self.device, &intermediate, inter_arity, &plan.head_proj);
                stats.add_phase(Phase::Join, t.elapsed());
                head
            }
            NwayStrategy::FusedNestedLoop => {
                // Pre-build every level's index, then run the fused kernel.
                let t = Instant::now();
                for join in &plan.joins {
                    let storage = &mut self.relations[join.relation];
                    let version = match join.version {
                        VersionSel::Full => &mut storage.full,
                        VersionSel::Delta => &mut storage.delta,
                    };
                    version.index_on(&self.device, &join.inner_key_cols)?;
                }
                stats.add_phase(Phase::IndexFull, t.elapsed());

                let t = Instant::now();
                let levels: Vec<FusedLevel<'_>> = plan
                    .joins
                    .iter()
                    .enumerate()
                    .map(|(k, join)| {
                        let storage = &self.relations[join.relation];
                        let version = match join.version {
                            VersionSel::Full => &storage.full,
                            VersionSel::Delta => &storage.delta,
                        };
                        FusedLevel {
                            step: join,
                            inner: version
                                .existing_index(&join.inner_key_cols)
                                .expect("index built above"),
                            filters: &plan.filters[k + 1],
                        }
                    })
                    .collect();
                let head = fused_rule_join(
                    &self.device,
                    &intermediate,
                    inter_arity,
                    &levels,
                    &plan.head_proj,
                );
                stats.add_phase(Phase::Join, t.elapsed());
                head
            }
        };

        if !head_tuples.is_empty() {
            self.relations[plan.head].push_new(&head_tuples);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    const REACH: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl Reach(x: number, y: number)
        .output Reach
        Reach(x, y) :- Edge(x, y).
        Reach(x, y) :- Edge(x, z), Reach(z, y).
    ";

    const SG: &str = r"
        .decl Edge(x: number, y: number)
        .input Edge
        .decl SG(x: number, y: number)
        .output SG
        SG(x, y) :- Edge(p, x), Edge(p, y), x != y.
        SG(x, y) :- Edge(a, x), SG(a, b), Edge(b, y), x != y.
    ";

    /// The 9-node example graph from the paper's Figure 1.
    fn figure1_edges() -> Vec<[u32; 2]> {
        vec![
            [0, 1],
            [0, 2],
            [1, 3],
            [1, 4],
            [2, 4],
            [2, 5],
            [3, 6],
            [4, 7],
            [4, 8],
            [5, 8],
        ]
    }

    #[test]
    fn reach_on_a_chain_computes_transitive_closure() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        e.add_facts("Edge", [[0u32, 1], [1, 2], [2, 3], [3, 4]])
            .unwrap();
        let stats = e.run().unwrap();
        // Chain of 5 nodes: 4 + 3 + 2 + 1 = 10 reachable pairs.
        assert_eq!(e.relation_size("Reach"), Some(10));
        assert!(e.contains("Reach", &[0, 4]));
        assert!(!e.contains("Reach", &[4, 0]));
        assert!(stats.iterations >= 3);
        assert!(stats.relation_sizes["Reach"] == 10);
    }

    #[test]
    fn reach_handles_cycles_without_diverging() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        e.add_facts("Edge", [[0u32, 1], [1, 2], [2, 0]]).unwrap();
        e.run().unwrap();
        // Every node reaches every node (including itself through the cycle).
        assert_eq!(e.relation_size("Reach"), Some(9));
    }

    #[test]
    fn sg_on_figure1_graph_matches_the_paper() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, SG, EngineConfig::default()).unwrap();
        e.add_facts("Edge", figure1_edges()).unwrap();
        let stats = e.run().unwrap();
        // Figure 1's final SG (full) relation has 14 tuples.
        assert_eq!(e.relation_size("SG"), Some(14));
        for pair in [
            [1u32, 2],
            [2, 1],
            [3, 4],
            [3, 5],
            [4, 3],
            [4, 5],
            [5, 3],
            [5, 4],
            [6, 7],
            [6, 8],
            [7, 6],
            [7, 8],
            [8, 6],
            [8, 7],
        ] {
            assert!(
                e.contains("SG", &pair),
                "missing SG({}, {})",
                pair[0],
                pair[1]
            );
        }
        // Figure 1 shows the query converging after iteration 3 (the third
        // iteration produces an empty delta).
        assert_eq!(stats.iterations, 3);
    }

    #[test]
    fn fused_and_materialized_strategies_agree() {
        let d = device();
        let mut mat = GpulogEngine::from_source(&d, SG, EngineConfig::default()).unwrap();
        mat.add_facts("Edge", figure1_edges()).unwrap();
        mat.run().unwrap();
        let cfg = EngineConfig {
            nway: NwayStrategy::FusedNestedLoop,
            ..EngineConfig::default()
        };
        let mut fused = GpulogEngine::from_source(&d, SG, cfg).unwrap();
        fused.add_facts("Edge", figure1_edges()).unwrap();
        fused.run().unwrap();
        let mut a = mat.relation_tuples("SG").unwrap();
        let mut b = fused.relation_tuples("SG").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn ebm_on_and_off_produce_identical_results() {
        let d = device();
        let mut on = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        on.add_facts("Edge", figure1_edges()).unwrap();
        on.run().unwrap();
        let cfg = EngineConfig {
            ebm: EbmConfig::disabled(),
            ..EngineConfig::default()
        };
        let mut off = GpulogEngine::from_source(&d, REACH, cfg).unwrap();
        off.add_facts("Edge", figure1_edges()).unwrap();
        off.run().unwrap();
        assert_eq!(on.relation_size("Reach"), off.relation_size("Reach"));
    }

    #[test]
    fn ground_facts_and_constants_evaluate() {
        let d = device();
        let src = r"
            .decl E(x: number, y: number)
            .decl R(x: number)
            .output R
            E(1, 2).
            E(2, 3).
            E(3, 3).
            R(x) :- E(x, 3).
        ";
        let mut e = GpulogEngine::from_source(&d, src, EngineConfig::default()).unwrap();
        e.run().unwrap();
        let mut tuples = e.relation_tuples("R").unwrap();
        tuples.sort();
        assert_eq!(tuples, vec![vec![2], vec![3]]);
    }

    #[test]
    fn bad_facts_are_rejected_with_helpful_errors() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        assert!(matches!(
            e.add_facts("Nope", [[1u32, 2]]),
            Err(EngineError::BadFacts { .. })
        ));
        assert!(e.add_facts("Edge", [[1u32, 2, 3]]).is_err());
        assert!(e.add_facts_flat("Edge", &[1, 2, 3]).is_err());
        e.add_facts_flat("Edge", &[1, 2]).unwrap();
        e.run().unwrap();
        assert!(e.add_facts("Edge", [[5u32, 6]]).is_err());
    }

    #[test]
    fn empty_input_produces_empty_output_and_converges_immediately() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        let stats = e.run().unwrap();
        assert_eq!(e.relation_size("Reach"), Some(0));
        assert!(stats.iterations <= 1);
    }

    #[test]
    fn oom_on_a_tiny_device_is_reported_not_panicked() {
        let d = Device::with_workers(DeviceProfile::tiny_test_device(48 * 1024), 2);
        let mut e = GpulogEngine::from_source(&d, REACH, EngineConfig::default()).unwrap();
        // A complete graph on 40 nodes explodes well past 48 KiB of VRAM.
        let mut edges = Vec::new();
        for a in 0..40u32 {
            for b in 0..40u32 {
                if a != b {
                    edges.push([a, b]);
                }
            }
        }
        e.add_facts("Edge", edges).unwrap();
        match e.run() {
            Err(EngineError::Device(err)) => {
                assert!(matches!(
                    err,
                    gpulog_device::DeviceError::OutOfMemory { .. }
                ));
            }
            other => panic!("expected an out-of-memory error, got {other:?}"),
        }
    }

    #[test]
    fn run_stats_capture_phases_and_memory() {
        let d = device();
        let mut e = GpulogEngine::from_source(&d, SG, EngineConfig::default()).unwrap();
        e.add_facts("Edge", figure1_edges()).unwrap();
        let stats = e.run().unwrap();
        assert!(stats.wall_seconds > 0.0);
        assert!(stats.modeled_seconds() > 0.0);
        assert!(stats.peak_device_bytes > 0);
        assert!(stats.phase(Phase::Join) > 0.0);
        assert!(stats.phase(Phase::Merge) > 0.0);
        assert!(stats.phase(Phase::Deduplication) > 0.0);
    }
}
