//! Eager Buffer Management (paper Section 5.3).
//!
//! Merging delta into full dominates iteration cost once relations grow,
//! largely because of buffer churn: a naive engine allocates a buffer of
//! size `|full| + |delta|` every iteration and frees it immediately after.
//! EBM instead keeps the buffer alive across iterations and, when it must
//! grow, grows it to `|full| + k x |delta|` so the next several iterations'
//! merges fit without reallocating. The cost is a bounded amount of slack
//! memory; the benefit concentrates in runs with long "tail" phases of many
//! small deltas (paper Table 1).

/// Configuration for eager buffer management.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EbmConfig {
    /// Whether EBM is enabled. When disabled the engine sizes buffers
    /// exactly and releases slack after every merge (the "Normal" columns of
    /// Table 1).
    pub enabled: bool,
    /// The over-allocation factor `k`: on growth, reserve room for
    /// `k x |delta|` additional tuples beyond the merged size.
    pub growth_factor: f64,
}

impl Default for EbmConfig {
    /// EBM on with `k = 8`, a value sized for data-center VRAM capacities.
    fn default() -> Self {
        EbmConfig {
            enabled: true,
            growth_factor: 8.0,
        }
    }
}

impl EbmConfig {
    /// EBM disabled (exact-size allocation every iteration).
    pub fn disabled() -> Self {
        EbmConfig {
            enabled: false,
            growth_factor: 0.0,
        }
    }

    /// EBM enabled with an explicit growth factor `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not finite and positive.
    pub fn with_growth_factor(k: f64) -> Self {
        assert!(k.is_finite() && k > 0.0, "growth factor must be positive");
        EbmConfig {
            enabled: true,
            growth_factor: k,
        }
    }

    /// How many *additional* tuple slots to reserve ahead of a merge that
    /// will add `delta_rows` tuples. Zero when EBM is disabled.
    pub fn reserve_rows(&self, delta_rows: usize) -> usize {
        if !self.enabled || delta_rows == 0 {
            return 0;
        }
        (delta_rows as f64 * self.growth_factor).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_enabled_with_positive_factor() {
        let cfg = EbmConfig::default();
        assert!(cfg.enabled);
        assert!(cfg.growth_factor > 1.0);
    }

    #[test]
    fn disabled_reserves_nothing() {
        assert_eq!(EbmConfig::disabled().reserve_rows(1000), 0);
    }

    #[test]
    fn enabled_reserves_k_times_delta() {
        let cfg = EbmConfig::with_growth_factor(4.0);
        assert_eq!(cfg.reserve_rows(100), 400);
        assert_eq!(cfg.reserve_rows(0), 0);
    }

    #[test]
    #[should_panic(expected = "growth factor must be positive")]
    fn non_positive_factor_is_rejected() {
        EbmConfig::with_growth_factor(0.0);
    }
}
