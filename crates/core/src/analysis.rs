//! Program validation and stratification.
//!
//! Before planning, a program is checked for the usual Datalog
//! well-formedness conditions (declared relations, consistent arities, safe
//! rules) and its rules are grouped into *strata*: strongly connected
//! components of the relation dependency graph, evaluated in topological
//! order. Within a stratum the engine runs the semi-naive fixpoint loop;
//! across strata evaluation is a simple sequence, which is how Soufflé (and
//! GPUlog) schedule multi-relation programs such as CSPA.
//!
//! Negated literals and head aggregates mark their dependency edges as
//! *negative*: a negative edge inside a strongly connected component means
//! the program recurses through negation/aggregation and has no
//! stratification, rejected with [`EngineError::CyclicNegation`]. Across
//! components the order guarantees a negated or aggregated relation is
//! fully computed before any rule reading it runs.

use crate::ast::{Program, Rule, Term};
use crate::error::{EngineError, EngineResult};
use std::collections::{HashMap, HashSet};

/// A validated program plus its evaluation order.
#[derive(Debug, Clone)]
pub struct StratifiedProgram {
    /// Relation names in declaration order (the engine's relation ids are
    /// indices into this list).
    pub relation_names: Vec<String>,
    /// Arity per relation (parallel to `relation_names`).
    pub arities: Vec<usize>,
    /// Relations flagged `.input`.
    pub inputs: Vec<bool>,
    /// Relations flagged `.output`.
    pub outputs: Vec<bool>,
    /// Strata in evaluation order; each stratum lists rule indices into the
    /// original program and whether the stratum is recursive.
    pub strata: Vec<Stratum>,
}

/// One evaluation stratum.
#[derive(Debug, Clone)]
pub struct Stratum {
    /// Relations (ids) whose rules belong to this stratum.
    pub relations: Vec<usize>,
    /// Indices of the program's rules evaluated in this stratum.
    pub rule_indices: Vec<usize>,
    /// Whether any rule in the stratum depends on a relation defined in the
    /// same stratum (i.e. the stratum needs a fixpoint loop).
    pub recursive: bool,
}

impl StratifiedProgram {
    /// Id of a relation by name.
    pub fn relation_id(&self, name: &str) -> Option<usize> {
        self.relation_names.iter().position(|n| n == name)
    }
}

/// Validates `program` and computes its strata.
///
/// Alias for [`stratify_program`], kept for the original call sites.
pub fn stratify(program: &Program) -> EngineResult<StratifiedProgram> {
    stratify_program(program)
}

/// Validates `program` and computes its strata (the precedence graph
/// pass).
///
/// # Errors
///
/// Returns [`EngineError::Validation`] when a rule references an undeclared
/// relation, uses a relation at the wrong arity, or derives into an
/// `.input` relation's arity inconsistently;
/// [`EngineError::UnboundVariable`] when a rule is unsafe (a head,
/// constraint, negated-atom, or aggregate variable not bound by any
/// positive body literal); and [`EngineError::CyclicNegation`] when the
/// program recurses through negation or aggregation, so no stratification
/// exists.
pub fn stratify_program(program: &Program) -> EngineResult<StratifiedProgram> {
    // Duplicate declarations.
    let mut seen = HashSet::new();
    for decl in &program.relations {
        if !seen.insert(decl.name.clone()) {
            return Err(EngineError::Validation {
                message: format!("relation {} declared more than once", decl.name),
            });
        }
        if decl.arity == 0 {
            return Err(EngineError::Validation {
                message: format!("relation {} must have at least one column", decl.name),
            });
        }
    }
    let relation_names: Vec<String> = program.relations.iter().map(|r| r.name.clone()).collect();
    let arities: Vec<usize> = program.relations.iter().map(|r| r.arity).collect();
    let id_of: HashMap<&str, usize> = relation_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    for rule in &program.rules {
        validate_rule(rule, &id_of, &arities)?;
    }

    // Dependency graph: edge head -> body (head depends on body relation).
    // Negated literals mark their edge negative; a head aggregate marks
    // every body edge of its rule negative, because the reduce runs over
    // the rule's *finished* bindings and therefore needs the whole body in
    // strictly lower strata.
    let n = relation_names.len();
    let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    let mut negative_edges: Vec<(usize, usize, usize)> = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        let head = id_of[rule.head.relation.as_str()];
        let aggregated = rule.aggregate.is_some();
        for literal in &rule.body {
            let body_id = id_of[literal.atom().relation.as_str()];
            deps[head].insert(body_id);
            if literal.is_negative() || aggregated {
                negative_edges.push((ri, head, body_id));
            }
        }
    }

    let sccs = tarjan_sccs(n, &deps);
    // `tarjan_sccs` emits components in reverse topological order of the
    // dependency graph (dependencies before dependents), which is exactly
    // the evaluation order we need.
    let mut component_of = vec![0usize; n];
    for (ci, comp) in sccs.iter().enumerate() {
        for &r in comp {
            component_of[r] = ci;
        }
    }

    // A negative edge inside a component is recursion through
    // negation/aggregation: no stratification exists.
    for &(ri, head, body_id) in &negative_edges {
        if component_of[head] == component_of[body_id] {
            return Err(EngineError::CyclicNegation {
                rule: program.rules[ri].to_string(),
                relation: relation_names[body_id].clone(),
            });
        }
    }

    let mut strata = Vec::new();
    for (ci, comp) in sccs.iter().enumerate() {
        let comp_set: HashSet<usize> = comp.iter().copied().collect();
        let mut rule_indices = Vec::new();
        let mut recursive = false;
        for (ri, rule) in program.rules.iter().enumerate() {
            let head = id_of[rule.head.relation.as_str()];
            if component_of[head] != ci {
                continue;
            }
            rule_indices.push(ri);
            // Only positive same-component dependencies make the stratum a
            // fixpoint loop; negative ones were rejected above.
            if rule
                .positive_atoms()
                .any(|a| comp_set.contains(&id_of[a.relation.as_str()]))
            {
                recursive = true;
            }
        }
        // A single-relation component with a self-loop is recursive even if
        // detected above; a component with no rules (pure input relation)
        // still becomes a (trivial) stratum so initialization is uniform.
        strata.push(Stratum {
            relations: comp.clone(),
            rule_indices,
            recursive,
        });
    }

    Ok(StratifiedProgram {
        relation_names,
        arities,
        inputs: program.relations.iter().map(|r| r.is_input).collect(),
        outputs: program.relations.iter().map(|r| r.is_output).collect(),
        strata,
    })
}

fn validate_rule(rule: &Rule, id_of: &HashMap<&str, usize>, arities: &[usize]) -> EngineResult<()> {
    let check_atom = |atom: &crate::ast::Atom| -> EngineResult<()> {
        match id_of.get(atom.relation.as_str()) {
            None => Err(EngineError::Validation {
                message: format!("rule `{rule}` uses undeclared relation {}", atom.relation),
            }),
            Some(&id) if arities[id] != atom.terms.len() => Err(EngineError::Validation {
                message: format!(
                    "rule `{rule}`: relation {} has arity {} but is used with {} arguments",
                    atom.relation,
                    arities[id],
                    atom.terms.len()
                ),
            }),
            Some(_) => Ok(()),
        }
    };
    check_atom(&rule.head)?;
    for literal in &rule.body {
        check_atom(literal.atom())?;
    }
    // Safety (range restriction): every head variable, constraint variable,
    // and negated-atom variable must be bound by a *positive* body literal.
    // Rules with an empty body must be ground facts. Negated atoms being
    // fully bound is what lets the engine lower them to point-membership
    // anti-joins.
    let bound: HashSet<&str> = rule.positive_atoms().flat_map(|a| a.variables()).collect();
    let unbound = |variable: &str, context: String| EngineError::UnboundVariable {
        rule: rule.to_string(),
        variable: variable.to_string(),
        context,
    };
    for term in &rule.head.terms {
        if let Term::Var(v) = term {
            if !bound.contains(v.as_str()) {
                return Err(unbound(v, "head".into()));
            }
        }
    }
    for atom in rule.negative_atoms() {
        for v in atom.variables() {
            if !bound.contains(v) {
                return Err(unbound(v, format!("negated atom {}", atom.relation)));
            }
        }
    }
    for c in &rule.constraints {
        for term in [&c.left, &c.right] {
            if let Term::Var(v) = term {
                if !bound.contains(v.as_str()) {
                    return Err(unbound(v, "constraint".into()));
                }
            }
        }
    }
    if let Some(agg) = &rule.aggregate {
        if agg.column >= rule.head.terms.len()
            || rule.head.terms[agg.column].as_var() != Some(agg.var.as_str())
        {
            return Err(EngineError::Validation {
                message: format!(
                    "rule `{rule}`: aggregate {}({}) must name the head term at column {}",
                    agg.op, agg.var, agg.column
                ),
            });
        }
        let elsewhere = rule
            .head
            .terms
            .iter()
            .enumerate()
            .any(|(i, t)| i != agg.column && t.as_var() == Some(agg.var.as_str()));
        if elsewhere {
            return Err(EngineError::Validation {
                message: format!(
                    "rule `{rule}`: aggregate variable {} also appears as a group key",
                    agg.var
                ),
            });
        }
        if !bound.contains(agg.var.as_str()) {
            return Err(unbound(&agg.var, "aggregate".into()));
        }
    }
    Ok(())
}

/// Tarjan's strongly-connected-components algorithm (iterative).
///
/// Components are returned in reverse topological order of the condensation
/// with respect to `deps` (where `deps[v]` lists the nodes `v` depends on):
/// every component appears after the components it depends on.
fn tarjan_sccs(n: usize, deps: &[HashSet<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let mut state = vec![
        NodeState {
            index: None,
            lowlink: 0,
            on_stack: false,
        };
        n
    ];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();
    let adjacency: Vec<Vec<usize>> = deps
        .iter()
        .map(|s| {
            let mut v: Vec<usize> = s.iter().copied().collect();
            v.sort_unstable();
            v
        })
        .collect();

    for start in 0..n {
        if state[start].index.is_some() {
            continue;
        }
        // Explicit DFS stack of (node, next neighbour position).
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start].index = Some(next_index);
        state[start].lowlink = next_index;
        state[start].on_stack = true;
        stack.push(start);
        next_index += 1;
        while let Some(&mut (v, ref mut ni)) = call_stack.last_mut() {
            if *ni < adjacency[v].len() {
                let w = adjacency[v][*ni];
                *ni += 1;
                if state[w].index.is_none() {
                    state[w].index = Some(next_index);
                    state[w].lowlink = next_index;
                    state[w].on_stack = true;
                    stack.push(w);
                    next_index += 1;
                    call_stack.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.unwrap());
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    let child_low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(child_low);
                }
                if state[v].lowlink == state[v].index.unwrap() {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        state[w].on_stack = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, ProgramBuilder, Term};
    use crate::parser::parse_program;

    fn reach() -> Program {
        parse_program(
            r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y).
            Reach(x, y) :- Edge(x, z), Reach(z, y).
        ",
        )
        .unwrap()
    }

    #[test]
    fn reach_produces_edge_stratum_then_recursive_reach_stratum() {
        let s = stratify(&reach()).unwrap();
        assert_eq!(s.relation_names, vec!["Edge", "Reach"]);
        // Edge has no rules; Reach is recursive.
        let reach_stratum = s
            .strata
            .iter()
            .find(|st| st.relations.contains(&s.relation_id("Reach").unwrap()))
            .unwrap();
        assert!(reach_stratum.recursive);
        assert_eq!(reach_stratum.rule_indices.len(), 2);
        // Edge's stratum must come before Reach's.
        let edge_pos = s
            .strata
            .iter()
            .position(|st| st.relations.contains(&s.relation_id("Edge").unwrap()))
            .unwrap();
        let reach_pos = s
            .strata
            .iter()
            .position(|st| st.relations.contains(&s.relation_id("Reach").unwrap()))
            .unwrap();
        assert!(edge_pos < reach_pos);
    }

    #[test]
    fn mutually_recursive_relations_share_a_stratum() {
        let p = parse_program(
            r"
            .decl E(x: number, y: number)
            .decl A(x: number, y: number)
            .decl B(x: number, y: number)
            .input E
            .output A
            A(x, y) :- E(x, y).
            A(x, y) :- B(x, z), E(z, y).
            B(x, y) :- A(x, z), E(z, y).
        ",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        let a = s.relation_id("A").unwrap();
        let b = s.relation_id("B").unwrap();
        let shared = s
            .strata
            .iter()
            .find(|st| st.relations.contains(&a))
            .unwrap();
        assert!(shared.relations.contains(&b));
        assert!(shared.recursive);
        assert_eq!(shared.rule_indices.len(), 3);
    }

    #[test]
    fn non_recursive_program_has_no_recursive_strata() {
        let p = parse_program(
            r"
            .decl E(x: number, y: number)
            .decl TwoHop(x: number, y: number)
            .input E
            .output TwoHop
            TwoHop(x, y) :- E(x, z), E(z, y).
        ",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert!(s.strata.iter().all(|st| !st.recursive));
    }

    #[test]
    fn undeclared_relation_is_rejected() {
        let p = ProgramBuilder::new()
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .body("Missing", vec![Term::var("x")])
            .end_rule()
            .build()
            .unwrap();
        assert!(matches!(stratify(&p), Err(EngineError::Validation { .. })));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let p = ProgramBuilder::new()
            .input_relation("E", 2)
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .body("E", vec![Term::var("x")])
            .end_rule()
            .build()
            .unwrap();
        let err = stratify(&p).unwrap_err();
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn unsafe_head_variable_is_rejected() {
        let p = ProgramBuilder::new()
            .input_relation("E", 2)
            .output_relation("R", 2)
            .rule("R", vec![Term::var("x"), Term::var("w")])
            .body("E", vec![Term::var("x"), Term::var("y")])
            .end_rule()
            .build()
            .unwrap();
        let err = stratify(&p).unwrap_err();
        assert!(matches!(err, EngineError::UnboundVariable { .. }));
        assert!(err.to_string().contains("unsafe"));
    }

    #[test]
    fn unsafe_constraint_variable_is_rejected() {
        let p = ProgramBuilder::new()
            .input_relation("E", 2)
            .output_relation("R", 2)
            .rule("R", vec![Term::var("x"), Term::var("y")])
            .body("E", vec![Term::var("x"), Term::var("y")])
            .constraint(Term::var("z"), CmpOp::Ne, Term::var("x"))
            .end_rule()
            .build()
            .unwrap();
        assert!(matches!(
            stratify(&p),
            Err(EngineError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn duplicate_declaration_is_rejected() {
        let p = ProgramBuilder::new()
            .input_relation("E", 2)
            .input_relation("E", 2)
            .build()
            .unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn negated_relation_lands_in_a_lower_stratum() {
        let p = parse_program(
            r"
            .decl Edge(x: number, y: number)
            .decl Blocked(x: number)
            .decl Reach(x: number, y: number)
            .input Edge
            .input Blocked
            .output Reach
            Reach(x, y) :- Edge(x, y), !Blocked(y).
            Reach(x, y) :- Reach(x, z), Edge(z, y), !Blocked(y).
        ",
        )
        .unwrap();
        let s = stratify_program(&p).unwrap();
        let blocked_pos = s
            .strata
            .iter()
            .position(|st| st.relations.contains(&s.relation_id("Blocked").unwrap()))
            .unwrap();
        let reach_pos = s
            .strata
            .iter()
            .position(|st| st.relations.contains(&s.relation_id("Reach").unwrap()))
            .unwrap();
        assert!(blocked_pos < reach_pos);
        assert!(s.strata[reach_pos].recursive);
    }

    #[test]
    fn cyclic_negation_is_rejected_with_typed_error() {
        let p = parse_program(
            r"
            .decl E(x: number)
            .decl A(x: number)
            .decl B(x: number)
            .input E
            .output A
            A(x) :- E(x), !B(x).
            B(x) :- E(x), !A(x).
        ",
        )
        .unwrap();
        match stratify_program(&p).unwrap_err() {
            EngineError::CyclicNegation { rule, relation } => {
                assert!(relation == "A" || relation == "B");
                assert!(rule.contains('!'));
            }
            other => panic!("expected CyclicNegation, got {other:?}"),
        }
    }

    #[test]
    fn negation_in_a_direct_self_loop_is_rejected() {
        let p = parse_program(
            r"
            .decl E(x: number)
            .decl A(x: number)
            .input E
            .output A
            A(x) :- E(x), !A(x).
        ",
        )
        .unwrap();
        assert!(matches!(
            stratify_program(&p),
            Err(EngineError::CyclicNegation { .. })
        ));
    }

    #[test]
    fn aggregation_through_recursion_is_rejected() {
        let p = parse_program(
            r"
            .decl E(x: number, d: number)
            .decl S(x: number, d: number)
            .input E
            .output S
            S(x, d) :- E(x, d).
            S(x, min(d)) :- S(x, d).
        ",
        )
        .unwrap();
        assert!(matches!(
            stratify_program(&p),
            Err(EngineError::CyclicNegation { .. })
        ));
    }

    #[test]
    fn unbound_negated_variable_is_rejected() {
        let p = parse_program(
            r"
            .decl E(x: number)
            .decl B(x: number, y: number)
            .decl R(x: number)
            .input E
            .input B
            .output R
            R(x) :- E(x), !B(x, y).
        ",
        )
        .unwrap();
        match stratify_program(&p).unwrap_err() {
            EngineError::UnboundVariable {
                variable, context, ..
            } => {
                assert_eq!(variable, "y");
                assert!(context.contains("negated atom B"));
            }
            other => panic!("expected UnboundVariable, got {other:?}"),
        }
        // A wildcard inside a negated atom is an unbound fresh variable.
        let wild = parse_program(
            r"
            .decl E(x: number)
            .decl B(x: number, y: number)
            .decl R(x: number)
            .input E
            .input B
            .output R
            R(x) :- E(x), !B(x, _).
        ",
        )
        .unwrap();
        assert!(matches!(
            stratify_program(&wild),
            Err(EngineError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn aggregate_structural_checks_reject_bad_shapes() {
        use crate::ast::{Aggregate, AggregateOp};
        // Aggregate column out of range.
        let mut p = parse_program(
            r"
            .decl E(x: number, d: number)
            .decl S(x: number, d: number)
            .input E
            .output S
            S(x, d) :- E(x, d).
        ",
        )
        .unwrap();
        p.rules[0].aggregate = Some(Aggregate {
            op: AggregateOp::Min,
            var: "d".into(),
            column: 5,
        });
        assert!(matches!(
            stratify_program(&p),
            Err(EngineError::Validation { .. })
        ));
        // Aggregate variable repeated as a group key.
        let dup = parse_program(
            r"
            .decl E(x: number, d: number)
            .decl S(x: number, d: number)
            .input E
            .output S
            S(d, min(d)) :- E(x, d).
        ",
        )
        .unwrap();
        let err = stratify_program(&dup).unwrap_err();
        assert!(err.to_string().contains("group key"));
    }

    #[test]
    fn tarjan_handles_chains_cycles_and_self_loops() {
        // 0 -> 1 -> 2, 2 -> 1 (cycle {1,2}), 3 self-loop, 4 isolated.
        let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); 5];
        deps[0].insert(1);
        deps[1].insert(2);
        deps[2].insert(1);
        deps[3].insert(3);
        let comps = tarjan_sccs(5, &deps);
        assert!(comps.contains(&vec![1, 2]));
        assert!(comps.contains(&vec![0]));
        assert!(comps.contains(&vec![3]));
        assert!(comps.contains(&vec![4]));
        // {1,2} must appear before {0} (0 depends on the cycle).
        let pos_cycle = comps.iter().position(|c| c == &vec![1, 2]).unwrap();
        let pos_zero = comps.iter().position(|c| c == &vec![0]).unwrap();
        assert!(pos_cycle < pos_zero);
    }
}
