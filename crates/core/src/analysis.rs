//! Program validation and stratification.
//!
//! Before planning, a program is checked for the usual Datalog
//! well-formedness conditions (declared relations, consistent arities, safe
//! rules) and its rules are grouped into *strata*: strongly connected
//! components of the relation dependency graph, evaluated in topological
//! order. Within a stratum the engine runs the semi-naive fixpoint loop;
//! across strata evaluation is a simple sequence, which is how Soufflé (and
//! GPUlog) schedule multi-relation programs such as CSPA.
//!
//! Negated literals and head aggregates mark their dependency edges as
//! *negative*: a negative edge inside a strongly connected component means
//! the program recurses through negation/aggregation and has no
//! stratification, rejected with [`EngineError::CyclicNegation`]. Across
//! components the order guarantees a negated or aggregated relation is
//! fully computed before any rule reading it runs.
//!
//! This module also hosts the goal-directed (magic-sets) rewrite,
//! [`magic_rewrite`]: given a program with a `?- Goal(..)` query, it
//! derives a bound/free adornment from the goal's constants, specializes
//! the reachable rules under a left-to-right sideways information passing
//! strategy, and adds *magic* predicates that restrict derivation to
//! bindings actually demanded by the goal. The rewritten program is an
//! ordinary stratified program — it flows through the same
//! validation/stratification passes and the unchanged planner/backends.

use crate::ast::{Atom, Literal, Program, Query, RelationDecl, Rule, Term};
use crate::error::{EngineError, EngineResult};
use std::collections::{HashMap, HashSet, VecDeque};

pub mod passes;

/// A validated program plus its evaluation order.
#[derive(Debug, Clone)]
pub struct StratifiedProgram {
    /// Relation names in declaration order (the engine's relation ids are
    /// indices into this list).
    pub relation_names: Vec<String>,
    /// Arity per relation (parallel to `relation_names`).
    pub arities: Vec<usize>,
    /// Relations flagged `.input`.
    pub inputs: Vec<bool>,
    /// Relations flagged `.output`.
    pub outputs: Vec<bool>,
    /// Strata in evaluation order; each stratum lists rule indices into the
    /// original program and whether the stratum is recursive.
    pub strata: Vec<Stratum>,
}

/// One evaluation stratum.
#[derive(Debug, Clone)]
pub struct Stratum {
    /// Relations (ids) whose rules belong to this stratum.
    pub relations: Vec<usize>,
    /// Indices of the program's rules evaluated in this stratum.
    pub rule_indices: Vec<usize>,
    /// Whether any rule in the stratum depends on a relation defined in the
    /// same stratum (i.e. the stratum needs a fixpoint loop).
    pub recursive: bool,
}

impl StratifiedProgram {
    /// Id of a relation by name.
    pub fn relation_id(&self, name: &str) -> Option<usize> {
        self.relation_names.iter().position(|n| n == name)
    }
}

/// Validates `program` and computes its strata.
///
/// Deprecated thin alias for [`stratify_program`], kept so the original
/// call sites keep compiling; new code should call [`stratify_program`].
#[deprecated(since = "0.10.0", note = "use `stratify_program` instead")]
pub fn stratify(program: &Program) -> EngineResult<StratifiedProgram> {
    stratify_program(program)
}

/// Validates `program` and computes its strata (the precedence graph
/// pass).
///
/// # Errors
///
/// Returns [`EngineError::Validation`] when a rule references an undeclared
/// relation, uses a relation at the wrong arity, or derives into an
/// `.input` relation's arity inconsistently;
/// [`EngineError::UnboundVariable`] when a rule is unsafe (a head,
/// constraint, negated-atom, or aggregate variable not bound by any
/// positive body literal); and [`EngineError::CyclicNegation`] when the
/// program recurses through negation or aggregation, so no stratification
/// exists.
pub fn stratify_program(program: &Program) -> EngineResult<StratifiedProgram> {
    // Duplicate declarations.
    let mut seen = HashSet::new();
    for decl in &program.relations {
        if !seen.insert(decl.name.clone()) {
            return Err(EngineError::Validation {
                message: format!("relation {} declared more than once", decl.name),
            });
        }
        if decl.arity == 0 {
            return Err(EngineError::Validation {
                message: format!("relation {} must have at least one column", decl.name),
            });
        }
    }
    let relation_names: Vec<String> = program.relations.iter().map(|r| r.name.clone()).collect();
    let arities: Vec<usize> = program.relations.iter().map(|r| r.arity).collect();
    let id_of: HashMap<&str, usize> = relation_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();

    for rule in &program.rules {
        validate_rule(rule, &id_of, &arities)?;
    }

    // Dependency graph: edge head -> body (head depends on body relation).
    // Negated literals mark their edge negative; a head aggregate marks
    // every body edge of its rule negative, because the reduce runs over
    // the rule's *finished* bindings and therefore needs the whole body in
    // strictly lower strata.
    let n = relation_names.len();
    let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    let mut negative_edges: Vec<(usize, usize, usize)> = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        let head = id_of[rule.head.relation.as_str()];
        let aggregated = rule.aggregate.is_some();
        for literal in &rule.body {
            let body_id = id_of[literal.atom().relation.as_str()];
            deps[head].insert(body_id);
            if literal.is_negative() || aggregated {
                negative_edges.push((ri, head, body_id));
            }
        }
    }

    let sccs = tarjan_sccs(n, &deps);
    // `tarjan_sccs` emits components in reverse topological order of the
    // dependency graph (dependencies before dependents), which is exactly
    // the evaluation order we need.
    let mut component_of = vec![0usize; n];
    for (ci, comp) in sccs.iter().enumerate() {
        for &r in comp {
            component_of[r] = ci;
        }
    }

    // A negative edge inside a component is recursion through
    // negation/aggregation: no stratification exists.
    for &(ri, head, body_id) in &negative_edges {
        if component_of[head] == component_of[body_id] {
            return Err(EngineError::CyclicNegation {
                rule: program.rules[ri].to_string(),
                relation: relation_names[body_id].clone(),
            });
        }
    }

    let mut strata = Vec::new();
    for (ci, comp) in sccs.iter().enumerate() {
        let comp_set: HashSet<usize> = comp.iter().copied().collect();
        let mut rule_indices = Vec::new();
        let mut recursive = false;
        for (ri, rule) in program.rules.iter().enumerate() {
            let head = id_of[rule.head.relation.as_str()];
            if component_of[head] != ci {
                continue;
            }
            rule_indices.push(ri);
            // Only positive same-component dependencies make the stratum a
            // fixpoint loop; negative ones were rejected above.
            if rule
                .positive_atoms()
                .any(|a| comp_set.contains(&id_of[a.relation.as_str()]))
            {
                recursive = true;
            }
        }
        // A single-relation component with a self-loop is recursive even if
        // detected above; a component with no rules (pure input relation)
        // still becomes a (trivial) stratum so initialization is uniform.
        strata.push(Stratum {
            relations: comp.clone(),
            rule_indices,
            recursive,
        });
    }

    Ok(StratifiedProgram {
        relation_names,
        arities,
        inputs: program.relations.iter().map(|r| r.is_input).collect(),
        outputs: program.relations.iter().map(|r| r.is_output).collect(),
        strata,
    })
}

fn validate_rule(rule: &Rule, id_of: &HashMap<&str, usize>, arities: &[usize]) -> EngineResult<()> {
    let check_atom = |atom: &crate::ast::Atom| -> EngineResult<()> {
        match id_of.get(atom.relation.as_str()) {
            None => Err(EngineError::Validation {
                message: format!("rule `{rule}` uses undeclared relation {}", atom.relation),
            }),
            Some(&id) if arities[id] != atom.terms.len() => Err(EngineError::Validation {
                message: format!(
                    "rule `{rule}`: relation {} has arity {} but is used with {} arguments",
                    atom.relation,
                    arities[id],
                    atom.terms.len()
                ),
            }),
            Some(_) => Ok(()),
        }
    };
    check_atom(&rule.head)?;
    for literal in &rule.body {
        check_atom(literal.atom())?;
    }
    // Safety (range restriction): every head variable, constraint variable,
    // and negated-atom variable must be bound by a *positive* body literal.
    // Rules with an empty body must be ground facts. Negated atoms being
    // fully bound is what lets the engine lower them to point-membership
    // anti-joins.
    let bound: HashSet<&str> = rule.positive_atoms().flat_map(|a| a.variables()).collect();
    // Each context pins the error to the most precise parse span available:
    // the containing atom's relation name for head/negated-atom contexts,
    // the rule's own head span for constraints and aggregates.
    let unbound =
        |variable: &str, context: String, span: crate::ast::Span| EngineError::UnboundVariable {
            rule: rule.to_string(),
            variable: variable.to_string(),
            context,
            line: span.line,
            column: span.column,
        };
    for term in &rule.head.terms {
        if let Term::Var(v) = term {
            if !bound.contains(v.as_str()) {
                return Err(unbound(v, "head".into(), rule.head.span));
            }
        }
    }
    for atom in rule.negative_atoms() {
        for v in atom.variables() {
            if !bound.contains(v) {
                return Err(unbound(
                    v,
                    format!("negated atom {}", atom.relation),
                    atom.span,
                ));
            }
        }
    }
    for c in &rule.constraints {
        for term in [&c.left, &c.right] {
            if let Term::Var(v) = term {
                if !bound.contains(v.as_str()) {
                    return Err(unbound(v, "constraint".into(), rule.span));
                }
            }
        }
    }
    if let Some(agg) = &rule.aggregate {
        if agg.column >= rule.head.terms.len()
            || rule.head.terms[agg.column].as_var() != Some(agg.var.as_str())
        {
            return Err(EngineError::Validation {
                message: format!(
                    "rule `{rule}`: aggregate {}({}) must name the head term at column {}",
                    agg.op, agg.var, agg.column
                ),
            });
        }
        let elsewhere = rule
            .head
            .terms
            .iter()
            .enumerate()
            .any(|(i, t)| i != agg.column && t.as_var() == Some(agg.var.as_str()));
        if elsewhere {
            return Err(EngineError::Validation {
                message: format!(
                    "rule `{rule}`: aggregate variable {} also appears as a group key",
                    agg.var
                ),
            });
        }
        if !bound.contains(agg.var.as_str()) {
            return Err(unbound(&agg.var, "aggregate".into(), rule.span));
        }
    }
    Ok(())
}

/// The output of the magic-sets rewrite: a plain stratified program plus
/// the seeding/answer metadata the engine needs to run it.
///
/// Produced by [`magic_rewrite`]. The rewritten [`MagicProgram::program`]
/// carries no query of its own — it is evaluated bottom-up like any other
/// program; goal-directedness lives entirely in the extra magic relations
/// and the seed fact.
#[derive(Debug, Clone)]
pub struct MagicProgram {
    /// The rewritten program (original declarations, plus adorned and
    /// magic relations; original rules kept only where an unadorned
    /// relation is still demanded).
    pub program: Program,
    /// The relation whose tuples answer the goal. On the magic path this
    /// is the adorned goal relation; on the fallback path it is the goal
    /// relation itself. Answer tuples must still be filtered to rows whose
    /// bound positions equal [`MagicProgram::seed`] — the adorned relation
    /// also holds answers for subgoals demanded along the way.
    pub answer_relation: String,
    /// The magic relation to seed with [`MagicProgram::seed`] before
    /// running, or `None` on the fallback (full-evaluation) path.
    pub magic_relation: Option<String>,
    /// The goal's constants in bound-position order: the magic seed fact.
    pub seed: Vec<u32>,
    /// The goal's bound/free adornment (`true` = bound), used to filter
    /// answer tuples.
    pub adornment: Vec<bool>,
}

/// Internal naming for one adorned predicate: `Reach` queried as `bf`
/// becomes the adorned `Reach_bf` plus its demand relation `m_Reach_bf`.
#[derive(Debug, Clone)]
struct AdornedNames {
    adorned: String,
    magic: String,
}

fn adornment_suffix(adornment: &[bool]) -> String {
    adornment
        .iter()
        .map(|&b| if b { 'b' } else { 'f' })
        .collect()
}

/// Rewrites `program` for goal-directed evaluation of `query` (magic
/// sets with a left-to-right SIPS).
///
/// For each intensional predicate demanded with at least one bound
/// argument, the rewrite emits an adorned copy of its rules: the rule
/// head moves to the adorned relation, a *magic* atom over the bound head
/// arguments is prepended to the body (restricting the rule to demanded
/// bindings), positive body atoms of adornable predicates are themselves
/// adorned left to right (an argument is bound if it is a constant or a
/// variable bound by the magic atom or an earlier positive literal), and
/// for each such body occurrence a magic rule propagates the demand:
/// `m_Child(bound args) :- m_Head(bound head args), <prefix literals>.`
///
/// Predicates that stay unadorned — extensional relations, negated or
/// aggregated relations, and positive occurrences where the SIPS finds no
/// bound argument — keep their original rules (transitively), so they are
/// evaluated in full exactly as before; the existing stratification pass
/// then places them below their readers, which is what keeps negation and
/// aggregates sound under the rewrite. The fallback path (all-free goal,
/// or a goal on an extensional/aggregated relation) returns the program
/// unrewritten: the engine evaluates the full fixpoint and filters.
///
/// Evaluating the rewritten program with the seed fact loaded into
/// [`MagicProgram::magic_relation`] and then selecting the
/// [`MagicProgram::answer_relation`] tuples whose bound positions equal
/// the seed yields exactly the goal-matching tuples of the original
/// program's fixpoint.
///
/// # Errors
///
/// Returns [`EngineError::UnknownQueryRelation`] when the goal names an
/// undeclared relation and [`EngineError::QueryArityMismatch`] when the
/// goal's argument count disagrees with the declaration — both carrying
/// the goal's source span when it was parsed from text.
pub fn magic_rewrite(program: &Program, query: &Query) -> EngineResult<MagicProgram> {
    let goal = &query.atom;
    let decl =
        program
            .relation(&goal.relation)
            .ok_or_else(|| EngineError::UnknownQueryRelation {
                relation: goal.relation.clone(),
                line: query.line,
                column: query.column,
            })?;
    if decl.arity != goal.terms.len() {
        return Err(EngineError::QueryArityMismatch {
            relation: goal.relation.clone(),
            expected: decl.arity,
            got: goal.terms.len(),
            line: query.line,
            column: query.column,
        });
    }
    let adornment = query.adornment();

    let mut rules_of: HashMap<&str, Vec<usize>> = HashMap::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        rules_of
            .entry(rule.head.relation.as_str())
            .or_default()
            .push(ri);
    }
    let aggregated: HashSet<&str> = program
        .rules
        .iter()
        .filter(|r| r.aggregate.is_some())
        .map(|r| r.head.relation.as_str())
        .collect();
    // A predicate can be adorned when it has rules to specialize, none of
    // them reduces (pushing a binding into an aggregate's group could drop
    // tuples the reduction needs, so aggregated relations always evaluate
    // in full below their readers), and it is not declared `.input`:
    // declared inputs receive extensional facts at runtime that no adorned
    // copy of their rules would reproduce.
    let adornable = |name: &str| {
        rules_of.contains_key(name)
            && !aggregated.contains(name)
            && !program.relation(name).is_some_and(|d| d.is_input)
    };

    if !adornment.contains(&true) || !adornable(&goal.relation) {
        let mut full = program.clone();
        full.query = None;
        return Ok(MagicProgram {
            program: full,
            answer_relation: goal.relation.clone(),
            magic_relation: None,
            seed: query.bound_constants(),
            adornment,
        });
    }

    // Fresh, deterministic names for adorned/magic relations. Trailing
    // underscores disambiguate in the (unlikely) case a user relation is
    // already called e.g. `Reach_bf`.
    let mut taken: HashSet<String> = program.relations.iter().map(|r| r.name.clone()).collect();
    let mut fresh = |base: String| -> String {
        let mut name = base;
        while !taken.insert(name.clone()) {
            name.push('_');
        }
        name
    };

    let mut names: HashMap<(String, String), AdornedNames> = HashMap::new();
    let mut order: Vec<(String, String, Vec<bool>)> = Vec::new();
    let mut queue: VecDeque<(String, Vec<bool>)> = VecDeque::new();
    let mut intern = |relation: &str,
                      ad: Vec<bool>,
                      names: &mut HashMap<(String, String), AdornedNames>,
                      order: &mut Vec<(String, String, Vec<bool>)>,
                      queue: &mut VecDeque<(String, Vec<bool>)>|
     -> AdornedNames {
        let suffix = adornment_suffix(&ad);
        let key = (relation.to_string(), suffix.clone());
        if let Some(existing) = names.get(&key) {
            return existing.clone();
        }
        let entry = AdornedNames {
            adorned: fresh(format!("{relation}_{suffix}")),
            magic: fresh(format!("m_{relation}_{suffix}")),
        };
        names.insert(key, entry.clone());
        order.push((relation.to_string(), suffix, ad.clone()));
        queue.push_back((relation.to_string(), ad));
        entry
    };

    let goal_names = intern(
        &goal.relation,
        adornment.clone(),
        &mut names,
        &mut order,
        &mut queue,
    );

    let mut adorned_rules: Vec<Rule> = Vec::new();
    let mut magic_rules: Vec<Rule> = Vec::new();
    let mut magic_seen: HashSet<String> = HashSet::new();
    // Unadorned intensional predicates still demanded somewhere (negated,
    // aggregated, or reached with no bound argument): their original rules
    // are kept, so they evaluate in full.
    let mut full_needed: HashSet<String> = HashSet::new();

    while let Some((relation, ad)) = queue.pop_front() {
        let head_names = names[&(relation.clone(), adornment_suffix(&ad))].clone();
        for &ri in &rules_of[relation.as_str()] {
            let rule = &program.rules[ri];
            // The magic atom carries the bound head arguments; its
            // variables are what the demand binds left of the body.
            let magic_terms: Vec<Term> = rule
                .head
                .terms
                .iter()
                .zip(&ad)
                .filter(|(_, &b)| b)
                .map(|(t, _)| t.clone())
                .collect();
            let mut bound: HashSet<String> = magic_terms
                .iter()
                .filter_map(|t| t.as_var().map(str::to_string))
                .collect();
            let mut new_body: Vec<Literal> = vec![Literal::Pos(Atom::new(
                head_names.magic.clone(),
                magic_terms,
            ))];
            for literal in &rule.body {
                match literal {
                    Literal::Pos(atom) => {
                        let arg_bound: Vec<bool> = atom
                            .terms
                            .iter()
                            .map(|t| match t {
                                Term::Const(_) => true,
                                Term::Var(v) => bound.contains(v),
                            })
                            .collect();
                        let rewritten = if adornable(&atom.relation) && arg_bound.contains(&true) {
                            let child = intern(
                                &atom.relation,
                                arg_bound.clone(),
                                &mut names,
                                &mut order,
                                &mut queue,
                            );
                            let child_magic = Atom::new(
                                child.magic.clone(),
                                atom.terms
                                    .iter()
                                    .zip(&arg_bound)
                                    .filter(|(_, &b)| b)
                                    .map(|(t, _)| t.clone())
                                    .collect(),
                            );
                            // Demand propagation: the child's bound args
                            // are derivable from the head's demand plus
                            // the prefix already joined. Constraints are
                            // dropped — over-approximating demand is
                            // sound, it only derives unasked-for tuples.
                            let identity = new_body.len() == 1
                                && matches!(&new_body[0], Literal::Pos(a) if *a == child_magic);
                            if !identity {
                                let magic_rule = Rule {
                                    head: child_magic,
                                    aggregate: None,
                                    body: new_body.clone(),
                                    constraints: Vec::new(),
                                    span: rule.span,
                                };
                                if magic_seen.insert(magic_rule.to_string()) {
                                    magic_rules.push(magic_rule);
                                }
                            }
                            Atom::new(child.adorned.clone(), atom.terms.clone())
                        } else {
                            if rules_of.contains_key(atom.relation.as_str()) {
                                full_needed.insert(atom.relation.clone());
                            }
                            atom.clone()
                        };
                        for v in atom.variables() {
                            bound.insert(v.to_string());
                        }
                        new_body.push(Literal::Pos(rewritten));
                    }
                    Literal::Neg(atom) => {
                        if rules_of.contains_key(atom.relation.as_str()) {
                            full_needed.insert(atom.relation.clone());
                        }
                        new_body.push(Literal::Neg(atom.clone()));
                    }
                }
            }
            adorned_rules.push(Rule {
                head: Atom::new(head_names.adorned.clone(), rule.head.terms.clone()),
                aggregate: None,
                body: new_body,
                constraints: rule.constraints.clone(),
                span: rule.span,
            });
        }
    }

    // Unadorned demand is transitive: a fully-evaluated relation needs
    // everything its own rules read, also in full.
    let mut pending: Vec<String> = full_needed.iter().cloned().collect();
    while let Some(relation) = pending.pop() {
        for &ri in rules_of.get(relation.as_str()).into_iter().flatten() {
            for literal in &program.rules[ri].body {
                let name = literal.atom().relation.as_str();
                if rules_of.contains_key(name) && full_needed.insert(name.to_string()) {
                    pending.push(name.to_string());
                }
            }
        }
    }

    let mut rewritten = Program {
        relations: program.relations.clone(),
        rules: Vec::new(),
        query: None,
    };
    for (relation, suffix, ad) in &order {
        let entry = &names[&(relation.clone(), suffix.clone())];
        let arity = program.relation(relation).map_or(0, |d| d.arity);
        rewritten.relations.push(RelationDecl {
            name: entry.adorned.clone(),
            arity,
            is_input: false,
            is_output: entry.adorned == goal_names.adorned,
        });
        rewritten.relations.push(RelationDecl {
            name: entry.magic.clone(),
            arity: ad.iter().filter(|&&b| b).count(),
            // The goal's magic relation is extensional: it is seeded with
            // the query constants before the run.
            is_input: entry.magic == goal_names.magic,
            is_output: false,
        });
    }
    for rule in &program.rules {
        if full_needed.contains(rule.head.relation.as_str()) {
            rewritten.rules.push(rule.clone());
        }
    }
    rewritten.rules.extend(adorned_rules);
    rewritten.rules.extend(magic_rules);

    Ok(MagicProgram {
        program: rewritten,
        answer_relation: goal_names.adorned,
        magic_relation: Some(goal_names.magic),
        seed: query.bound_constants(),
        adornment,
    })
}

/// Tarjan's strongly-connected-components algorithm (iterative).
///
/// Components are returned in reverse topological order of the condensation
/// with respect to `deps` (where `deps[v]` lists the nodes `v` depends on):
/// every component appears after the components it depends on.
fn tarjan_sccs(n: usize, deps: &[HashSet<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let mut state = vec![
        NodeState {
            index: None,
            lowlink: 0,
            on_stack: false,
        };
        n
    ];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();
    let adjacency: Vec<Vec<usize>> = deps
        .iter()
        .map(|s| {
            let mut v: Vec<usize> = s.iter().copied().collect();
            v.sort_unstable();
            v
        })
        .collect();

    for start in 0..n {
        if state[start].index.is_some() {
            continue;
        }
        // Explicit DFS stack of (node, next neighbour position).
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start].index = Some(next_index);
        state[start].lowlink = next_index;
        state[start].on_stack = true;
        stack.push(start);
        next_index += 1;
        while let Some(&mut (v, ref mut ni)) = call_stack.last_mut() {
            if *ni < adjacency[v].len() {
                let w = adjacency[v][*ni];
                *ni += 1;
                if state[w].index.is_none() {
                    state[w].index = Some(next_index);
                    state[w].lowlink = next_index;
                    state[w].on_stack = true;
                    stack.push(w);
                    next_index += 1;
                    call_stack.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.unwrap());
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    let child_low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(child_low);
                }
                if state[v].lowlink == state[v].index.unwrap() {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        state[w].on_stack = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, ProgramBuilder, Term};
    use crate::parser::parse_program;

    fn reach() -> Program {
        parse_program(
            r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y).
            Reach(x, y) :- Edge(x, z), Reach(z, y).
        ",
        )
        .unwrap()
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_stratify_alias_matches_stratify_program() {
        let program = reach();
        let via_alias = stratify(&program).unwrap();
        let direct = stratify_program(&program).unwrap();
        assert_eq!(via_alias.relation_names, direct.relation_names);
        assert_eq!(via_alias.strata.len(), direct.strata.len());
    }

    #[test]
    fn reach_produces_edge_stratum_then_recursive_reach_stratum() {
        let s = stratify_program(&reach()).unwrap();
        assert_eq!(s.relation_names, vec!["Edge", "Reach"]);
        // Edge has no rules; Reach is recursive.
        let reach_stratum = s
            .strata
            .iter()
            .find(|st| st.relations.contains(&s.relation_id("Reach").unwrap()))
            .unwrap();
        assert!(reach_stratum.recursive);
        assert_eq!(reach_stratum.rule_indices.len(), 2);
        // Edge's stratum must come before Reach's.
        let edge_pos = s
            .strata
            .iter()
            .position(|st| st.relations.contains(&s.relation_id("Edge").unwrap()))
            .unwrap();
        let reach_pos = s
            .strata
            .iter()
            .position(|st| st.relations.contains(&s.relation_id("Reach").unwrap()))
            .unwrap();
        assert!(edge_pos < reach_pos);
    }

    #[test]
    fn mutually_recursive_relations_share_a_stratum() {
        let p = parse_program(
            r"
            .decl E(x: number, y: number)
            .decl A(x: number, y: number)
            .decl B(x: number, y: number)
            .input E
            .output A
            A(x, y) :- E(x, y).
            A(x, y) :- B(x, z), E(z, y).
            B(x, y) :- A(x, z), E(z, y).
        ",
        )
        .unwrap();
        let s = stratify_program(&p).unwrap();
        let a = s.relation_id("A").unwrap();
        let b = s.relation_id("B").unwrap();
        let shared = s
            .strata
            .iter()
            .find(|st| st.relations.contains(&a))
            .unwrap();
        assert!(shared.relations.contains(&b));
        assert!(shared.recursive);
        assert_eq!(shared.rule_indices.len(), 3);
    }

    #[test]
    fn non_recursive_program_has_no_recursive_strata() {
        let p = parse_program(
            r"
            .decl E(x: number, y: number)
            .decl TwoHop(x: number, y: number)
            .input E
            .output TwoHop
            TwoHop(x, y) :- E(x, z), E(z, y).
        ",
        )
        .unwrap();
        let s = stratify_program(&p).unwrap();
        assert!(s.strata.iter().all(|st| !st.recursive));
    }

    #[test]
    fn undeclared_relation_is_rejected() {
        let p = ProgramBuilder::new()
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .body("Missing", vec![Term::var("x")])
            .end_rule()
            .build()
            .unwrap();
        assert!(matches!(
            stratify_program(&p),
            Err(EngineError::Validation { .. })
        ));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let p = ProgramBuilder::new()
            .input_relation("E", 2)
            .output_relation("R", 1)
            .rule("R", vec![Term::var("x")])
            .body("E", vec![Term::var("x")])
            .end_rule()
            .build()
            .unwrap();
        let err = stratify_program(&p).unwrap_err();
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn unsafe_head_variable_is_rejected() {
        let p = ProgramBuilder::new()
            .input_relation("E", 2)
            .output_relation("R", 2)
            .rule("R", vec![Term::var("x"), Term::var("w")])
            .body("E", vec![Term::var("x"), Term::var("y")])
            .end_rule()
            .build()
            .unwrap();
        let err = stratify_program(&p).unwrap_err();
        assert!(matches!(err, EngineError::UnboundVariable { .. }));
        assert!(err.to_string().contains("unsafe"));
    }

    #[test]
    fn unsafe_constraint_variable_is_rejected() {
        let p = ProgramBuilder::new()
            .input_relation("E", 2)
            .output_relation("R", 2)
            .rule("R", vec![Term::var("x"), Term::var("y")])
            .body("E", vec![Term::var("x"), Term::var("y")])
            .constraint(Term::var("z"), CmpOp::Ne, Term::var("x"))
            .end_rule()
            .build()
            .unwrap();
        assert!(matches!(
            stratify_program(&p),
            Err(EngineError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn duplicate_declaration_is_rejected() {
        let p = ProgramBuilder::new()
            .input_relation("E", 2)
            .input_relation("E", 2)
            .build()
            .unwrap();
        assert!(stratify_program(&p).is_err());
    }

    #[test]
    fn negated_relation_lands_in_a_lower_stratum() {
        let p = parse_program(
            r"
            .decl Edge(x: number, y: number)
            .decl Blocked(x: number)
            .decl Reach(x: number, y: number)
            .input Edge
            .input Blocked
            .output Reach
            Reach(x, y) :- Edge(x, y), !Blocked(y).
            Reach(x, y) :- Reach(x, z), Edge(z, y), !Blocked(y).
        ",
        )
        .unwrap();
        let s = stratify_program(&p).unwrap();
        let blocked_pos = s
            .strata
            .iter()
            .position(|st| st.relations.contains(&s.relation_id("Blocked").unwrap()))
            .unwrap();
        let reach_pos = s
            .strata
            .iter()
            .position(|st| st.relations.contains(&s.relation_id("Reach").unwrap()))
            .unwrap();
        assert!(blocked_pos < reach_pos);
        assert!(s.strata[reach_pos].recursive);
    }

    #[test]
    fn cyclic_negation_is_rejected_with_typed_error() {
        let p = parse_program(
            r"
            .decl E(x: number)
            .decl A(x: number)
            .decl B(x: number)
            .input E
            .output A
            A(x) :- E(x), !B(x).
            B(x) :- E(x), !A(x).
        ",
        )
        .unwrap();
        match stratify_program(&p).unwrap_err() {
            EngineError::CyclicNegation { rule, relation } => {
                assert!(relation == "A" || relation == "B");
                assert!(rule.contains('!'));
            }
            other => panic!("expected CyclicNegation, got {other:?}"),
        }
    }

    #[test]
    fn negation_in_a_direct_self_loop_is_rejected() {
        let p = parse_program(
            r"
            .decl E(x: number)
            .decl A(x: number)
            .input E
            .output A
            A(x) :- E(x), !A(x).
        ",
        )
        .unwrap();
        assert!(matches!(
            stratify_program(&p),
            Err(EngineError::CyclicNegation { .. })
        ));
    }

    #[test]
    fn aggregation_through_recursion_is_rejected() {
        let p = parse_program(
            r"
            .decl E(x: number, d: number)
            .decl S(x: number, d: number)
            .input E
            .output S
            S(x, d) :- E(x, d).
            S(x, min(d)) :- S(x, d).
        ",
        )
        .unwrap();
        assert!(matches!(
            stratify_program(&p),
            Err(EngineError::CyclicNegation { .. })
        ));
    }

    #[test]
    fn unbound_negated_variable_is_rejected() {
        let p = parse_program(
            r"
            .decl E(x: number)
            .decl B(x: number, y: number)
            .decl R(x: number)
            .input E
            .input B
            .output R
            R(x) :- E(x), !B(x, y).
        ",
        )
        .unwrap();
        match stratify_program(&p).unwrap_err() {
            EngineError::UnboundVariable {
                variable, context, ..
            } => {
                assert_eq!(variable, "y");
                assert!(context.contains("negated atom B"));
            }
            other => panic!("expected UnboundVariable, got {other:?}"),
        }
        // A wildcard inside a negated atom is an unbound fresh variable.
        let wild = parse_program(
            r"
            .decl E(x: number)
            .decl B(x: number, y: number)
            .decl R(x: number)
            .input E
            .input B
            .output R
            R(x) :- E(x), !B(x, _).
        ",
        )
        .unwrap();
        assert!(matches!(
            stratify_program(&wild),
            Err(EngineError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn aggregate_structural_checks_reject_bad_shapes() {
        use crate::ast::{Aggregate, AggregateOp};
        // Aggregate column out of range.
        let mut p = parse_program(
            r"
            .decl E(x: number, d: number)
            .decl S(x: number, d: number)
            .input E
            .output S
            S(x, d) :- E(x, d).
        ",
        )
        .unwrap();
        p.rules[0].aggregate = Some(Aggregate {
            op: AggregateOp::Min,
            var: "d".into(),
            column: 5,
        });
        assert!(matches!(
            stratify_program(&p),
            Err(EngineError::Validation { .. })
        ));
        // Aggregate variable repeated as a group key.
        let dup = parse_program(
            r"
            .decl E(x: number, d: number)
            .decl S(x: number, d: number)
            .input E
            .output S
            S(d, min(d)) :- E(x, d).
        ",
        )
        .unwrap();
        let err = stratify_program(&dup).unwrap_err();
        assert!(err.to_string().contains("group key"));
    }

    fn goal_reach() -> Program {
        parse_program(
            r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y).
            Reach(x, z) :- Reach(x, y), Edge(y, z).
            ?- Reach(7, y).
        ",
        )
        .unwrap()
    }

    #[test]
    fn magic_rewrite_specializes_left_recursive_reach() {
        let p = goal_reach();
        let query = p.query.clone().unwrap();
        let magic = magic_rewrite(&p, &query).unwrap();
        assert_eq!(magic.answer_relation, "Reach_bf");
        assert_eq!(magic.magic_relation.as_deref(), Some("m_Reach_bf"));
        assert_eq!(magic.seed, vec![7]);
        assert_eq!(magic.adornment, vec![true, false]);
        let rewritten = &magic.program;
        // Original Reach rules are gone (nothing demands Reach in full);
        // the adorned rules carry the magic guard as their first literal.
        assert!(rewritten.rules.iter().all(|r| r.head.relation != "Reach"));
        let adorned: Vec<&Rule> = rewritten
            .rules
            .iter()
            .filter(|r| r.head.relation == "Reach_bf")
            .collect();
        assert_eq!(adorned.len(), 2);
        for rule in &adorned {
            assert_eq!(rule.body[0].atom().relation, "m_Reach_bf");
            assert!(rule.body[0].is_positive());
        }
        // Left recursion re-demands the same binding: the identity magic
        // rule `m(x) :- m(x).` is skipped, so no magic rules remain and
        // the magic set is exactly the seed.
        assert!(rewritten
            .rules
            .iter()
            .all(|r| r.head.relation != "m_Reach_bf"));
        let magic_decl = rewritten.relation("m_Reach_bf").unwrap();
        assert_eq!(magic_decl.arity, 1);
        assert!(magic_decl.is_input);
        assert!(rewritten.relation("Reach_bf").unwrap().is_output);
        // The rewritten program is an ordinary stratified program.
        stratify_program(rewritten).unwrap();
    }

    #[test]
    fn magic_rewrite_propagates_demand_through_right_recursion() {
        let p = parse_program(
            r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y).
            Reach(x, y) :- Edge(x, z), Reach(z, y).
            ?- Reach(7, y).
        ",
        )
        .unwrap();
        let query = p.query.clone().unwrap();
        let magic = magic_rewrite(&p, &query).unwrap();
        // `Reach(z, y)` sees z bound through Edge(x, z): same bf
        // adornment, but now the demand genuinely grows, so a magic rule
        // `m_Reach_bf(z) :- m_Reach_bf(x), Edge(x, z).` must exist.
        let magic_rules: Vec<&Rule> = magic
            .program
            .rules
            .iter()
            .filter(|r| r.head.relation == "m_Reach_bf")
            .collect();
        assert_eq!(magic_rules.len(), 1);
        assert_eq!(magic_rules[0].body.len(), 2);
        assert_eq!(magic_rules[0].body[0].atom().relation, "m_Reach_bf");
        assert_eq!(magic_rules[0].body[1].atom().relation, "Edge");
        stratify_program(&magic.program).unwrap();
    }

    #[test]
    fn magic_rewrite_keeps_negated_relations_fully_evaluated() {
        let p = parse_program(
            r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Hub(x: number)
            .decl Blocked(x: number)
            .decl Reach(x: number, y: number)
            .output Reach
            Hub(x) :- Edge(x, 0).
            Blocked(x) :- Hub(x).
            Reach(x, y) :- Edge(x, y), !Blocked(y).
            Reach(x, z) :- Reach(x, y), Edge(y, z), !Blocked(z).
            ?- Reach(3, y).
        ",
        )
        .unwrap();
        let query = p.query.clone().unwrap();
        let magic = magic_rewrite(&p, &query).unwrap();
        // Blocked is demanded negatively, so it (and Hub, which it reads)
        // keep their original rules and evaluate in full.
        let heads: Vec<&str> = magic
            .program
            .rules
            .iter()
            .map(|r| r.head.relation.as_str())
            .collect();
        assert!(heads.contains(&"Blocked"));
        assert!(heads.contains(&"Hub"));
        assert!(!heads.contains(&"Reach"));
        // Negated literals survive inside the adorned rules.
        let adorned_neg = magic
            .program
            .rules
            .iter()
            .filter(|r| r.head.relation == "Reach_bf")
            .flat_map(|r| r.negative_atoms())
            .count();
        assert_eq!(adorned_neg, 2);
        let s = stratify_program(&magic.program).unwrap();
        let pos = |name: &str| {
            s.strata
                .iter()
                .position(|st| st.relations.contains(&s.relation_id(name).unwrap()))
                .unwrap()
        };
        assert!(pos("Blocked") < pos("Reach_bf"));
    }

    #[test]
    fn magic_rewrite_falls_back_when_nothing_is_bound() {
        let mut p = goal_reach();
        p.query = Some(Query::new(Atom::new(
            "Reach",
            vec![Term::var("x"), Term::var("y")],
        )));
        let query = p.query.clone().unwrap();
        let magic = magic_rewrite(&p, &query).unwrap();
        assert_eq!(magic.answer_relation, "Reach");
        assert!(magic.magic_relation.is_none());
        assert!(magic.seed.is_empty());
        let mut original = p.clone();
        original.query = None;
        assert_eq!(magic.program, original);
    }

    #[test]
    fn magic_rewrite_falls_back_on_extensional_goals() {
        let p =
            parse_program(".decl Edge(x: number, y: number)\n.input Edge\n?- Edge(1, y).").unwrap();
        let query = p.query.clone().unwrap();
        let magic = magic_rewrite(&p, &query).unwrap();
        assert!(magic.magic_relation.is_none());
        assert_eq!(magic.answer_relation, "Edge");
        assert_eq!(magic.seed, vec![1]);
    }

    #[test]
    fn magic_rewrite_never_adorns_declared_inputs() {
        // Ground facts make Edge look rule-defined, but `.input` means the
        // engine may add extensional tuples at runtime that no adorned copy
        // of the fact rules would reproduce — Edge must stay unadorned.
        let p = parse_program(
            r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Edge(9, 9).
            Reach(x, y) :- Edge(x, y).
            Reach(x, z) :- Reach(x, y), Edge(y, z).
            ?- Reach(7, y).
        ",
        )
        .unwrap();
        let query = p.query.clone().unwrap();
        let magic = magic_rewrite(&p, &query).unwrap();
        let rewritten = &magic.program;
        assert!(rewritten.relation("Edge_bb").is_none());
        assert!(rewritten.relation("Edge_bf").is_none());
        // Edge keeps its ground fact, evaluated in full.
        assert!(rewritten
            .rules
            .iter()
            .any(|r| r.head.relation == "Edge" && r.body.is_empty()));
        // A goal on the input itself takes the fallback path.
        let edge_goal = Query::new(Atom::new("Edge", vec![Term::Const(9), Term::var("y")]));
        let fallback = magic_rewrite(&p, &edge_goal).unwrap();
        assert!(fallback.magic_relation.is_none());
    }

    #[test]
    fn magic_rewrite_falls_back_on_aggregated_goals() {
        let p = parse_program(
            r"
            .decl E(x: number, d: number)
            .input E
            .decl S(x: number, d: number)
            .output S
            S(x, min(d)) :- E(x, d).
            ?- S(2, d).
        ",
        )
        .unwrap();
        let query = p.query.clone().unwrap();
        let magic = magic_rewrite(&p, &query).unwrap();
        assert!(
            magic.magic_relation.is_none(),
            "bindings must not be pushed into an aggregate's group"
        );
        assert_eq!(magic.answer_relation, "S");
    }

    #[test]
    fn magic_rewrite_reports_unknown_relation_with_span() {
        let p = parse_program(".decl E(x: number)\n.input E\n?- Ghost(1).").unwrap();
        let query = p.query.clone().unwrap();
        match magic_rewrite(&p, &query).unwrap_err() {
            EngineError::UnknownQueryRelation {
                relation,
                line,
                column,
            } => {
                assert_eq!(relation, "Ghost");
                assert_eq!((line, column), (3, 4));
            }
            other => panic!("expected UnknownQueryRelation, got {other:?}"),
        }
    }

    #[test]
    fn magic_rewrite_reports_arity_mismatch_with_span() {
        let p = parse_program(".decl E(x: number, y: number)\n.input E\n?- E(1, 2, 3).").unwrap();
        let query = p.query.clone().unwrap();
        match magic_rewrite(&p, &query).unwrap_err() {
            EngineError::QueryArityMismatch {
                relation,
                expected,
                got,
                line,
                column,
            } => {
                assert_eq!(relation, "E");
                assert_eq!((expected, got), (2, 3));
                assert_eq!((line, column), (3, 4));
            }
            other => panic!("expected QueryArityMismatch, got {other:?}"),
        }
    }

    #[test]
    fn magic_rewrite_uniquifies_colliding_names() {
        let p = parse_program(
            r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach_bf(x: number)
            .input Reach_bf
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y), Reach_bf(x).
            Reach(x, z) :- Reach(x, y), Edge(y, z).
            ?- Reach(1, y).
        ",
        )
        .unwrap();
        let query = p.query.clone().unwrap();
        let magic = magic_rewrite(&p, &query).unwrap();
        assert_eq!(magic.answer_relation, "Reach_bf_");
        stratify_program(&magic.program).unwrap();
    }

    #[test]
    fn tarjan_handles_chains_cycles_and_self_loops() {
        // 0 -> 1 -> 2, 2 -> 1 (cycle {1,2}), 3 self-loop, 4 isolated.
        let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); 5];
        deps[0].insert(1);
        deps[1].insert(2);
        deps[2].insert(1);
        deps[3].insert(3);
        let comps = tarjan_sccs(5, &deps);
        assert!(comps.contains(&vec![1, 2]));
        assert!(comps.contains(&vec![0]));
        assert!(comps.contains(&vec![3]));
        assert!(comps.contains(&vec![4]));
        // {1,2} must appear before {0} (0 depends on the cycle).
        let pos_cycle = comps.iter().position(|c| c == &vec![1, 2]).unwrap();
        let pos_zero = comps.iter().position(|c| c == &vec![0]).unwrap();
        assert!(pos_cycle < pos_zero);
    }
}
