//! Pluggable evaluation backends.
//!
//! The engine never runs relational-algebra kernels itself: it lowers every
//! rule plan into an [`RaPipeline`] (see [`crate::planner::lower_rule_plan`])
//! and hands the pipeline to a [`Backend`] together with an [`EvalContext`]
//! — the device, the relation storages, and the statistics sink. The
//! shipped implementation is [`SerialBackend`], which executes operators
//! one after another on a single simulated device, exactly reproducing the
//! paper's single-GPU evaluation loop.
//!
//! The trait is the seam the ROADMAP's scaling items plug into: a
//! `ShardedBackend` can partition each relation's HISA by key hash and fan
//! one [`RaOp`] out across worker groups, and an async-pipelining backend
//! can overlap the join/dedup/merge phases of consecutive iterations —
//! both behind the same `execute` call, with no change to the engine or
//! the planner.

use crate::ebm::EbmConfig;
use crate::error::EngineResult;
use crate::planner::VersionSel;
use crate::ra::nway::{fused_rule_join_batch, FusedLevel};
use crate::ra::op::{RaOp, RaPipeline};
use crate::ra::project::{batch_from_flat, filter_batch, scan_select};
use crate::ra::{difference_batch, hash_join_batch, project_batch};
use crate::relation::RelationStorage;
use crate::stats::{Phase, RunStats};
use gpulog_device::Device;
use gpulog_hisa::TupleBatch;
use std::fmt;
use std::time::Instant;

/// Everything a backend needs to execute one pipeline: the device to launch
/// kernels on, the relation storages to read and write, the statistics sink
/// the paper's Figure 6 phase buckets are timed into, and the
/// eager-buffer-management policy governing allocations.
#[derive(Debug)]
pub struct EvalContext<'a> {
    /// The (simulated) device kernels run on.
    pub device: &'a Device,
    /// All relation storages, indexed by [`crate::planner::RelId`].
    pub relations: &'a mut [RelationStorage],
    /// Phase-bucketed timing sink.
    pub stats: &'a mut RunStats,
    /// Eager-buffer-management policy for delta population and merges.
    pub ebm: EbmConfig,
}

/// What executing one pipeline produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineOutcome {
    /// Head tuples appended to the head relation's `new` buffer (rule
    /// pipelines).
    pub derived_rows: usize,
    /// Raw `new` rows consumed (diff pipelines).
    pub new_rows: usize,
    /// Delta rows installed and merged into full (diff pipelines).
    pub delta_rows: usize,
}

/// A rule-evaluation backend: executes lowered [`RaPipeline`]s against an
/// [`EvalContext`].
///
/// Implementations must preserve the engine's semantics — a pipeline's head
/// tuples go to the head relation's `new` buffer, and a [`RaOp::Diff`]
/// pipeline installs and merges the relation's next delta — but are free to
/// choose *how*: serially on one device, sharded across worker groups, or
/// overlapped across iterations.
pub trait Backend: fmt::Debug + Send {
    /// A short human-readable backend name (for diagnostics).
    fn name(&self) -> &str;

    /// Executes one operator pipeline to completion.
    ///
    /// # Errors
    ///
    /// Returns device errors (including out-of-memory) raised while
    /// building indices or materializing intermediates.
    fn execute(
        &self,
        ctx: &mut EvalContext<'_>,
        pipeline: &RaPipeline,
    ) -> EngineResult<PipelineOutcome>;
}

/// The single-device, operator-at-a-time backend — the paper's evaluation
/// loop, with each op materializing its output batch before the next op
/// runs (temporarily-materialized execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialBackend;

impl Backend for SerialBackend {
    fn name(&self) -> &str {
        "serial"
    }

    fn execute(
        &self,
        ctx: &mut EvalContext<'_>,
        pipeline: &RaPipeline,
    ) -> EngineResult<PipelineOutcome> {
        let mut outcome = PipelineOutcome::default();
        // The intermediate batch flowing between operators: empty until the
        // scan runs, then each op's output. Every consuming op ends the
        // pipeline early when its input arrives empty — no downstream op
        // can derive anything from an empty intermediate.
        let mut batch = TupleBatch::empty(1);
        for op in &pipeline.ops {
            match op {
                RaOp::Scan { step, filters } => {
                    let t = Instant::now();
                    let storage = &ctx.relations[step.relation];
                    let source = match step.version {
                        VersionSel::Full => &storage.full,
                        VersionSel::Delta => &storage.delta,
                    };
                    if source.is_empty() {
                        return Ok(outcome);
                    }
                    let scanned = scan_select(
                        ctx.device,
                        source.tuples_flat(),
                        storage.arity,
                        &step.const_filters,
                        &step.eq_filters,
                        &step.keep_cols,
                    );
                    batch = batch_from_flat(step.keep_cols.len(), scanned);
                    if !filters.is_empty() {
                        batch = filter_batch(ctx.device, &batch, filters);
                    }
                    ctx.stats.add_phase(Phase::Join, t.elapsed());
                }
                RaOp::HashJoin { step, filters } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    // Build or fetch the inner index.
                    let t = Instant::now();
                    let index_phase = match step.version {
                        VersionSel::Full => Phase::IndexFull,
                        VersionSel::Delta => Phase::IndexDelta,
                    };
                    {
                        let storage = &mut ctx.relations[step.relation];
                        let version = match step.version {
                            VersionSel::Full => &mut storage.full,
                            VersionSel::Delta => &mut storage.delta,
                        };
                        version.index_on(ctx.device, &step.inner_key_cols)?;
                    }
                    ctx.stats.add_phase(index_phase, t.elapsed());

                    let t = Instant::now();
                    let storage = &ctx.relations[step.relation];
                    let version = match step.version {
                        VersionSel::Full => &storage.full,
                        VersionSel::Delta => &storage.delta,
                    };
                    let inner = version
                        .existing_index(&step.inner_key_cols)
                        .expect("index built above");
                    batch = hash_join_batch(
                        ctx.device,
                        &batch,
                        &step.outer_key_cols,
                        inner,
                        &step.inner_const_filters,
                        &step.inner_eq_filters,
                        &step.emit,
                    );
                    if !filters.is_empty() {
                        batch = filter_batch(ctx.device, &batch, filters);
                    }
                    ctx.stats.add_phase(Phase::Join, t.elapsed());
                }
                RaOp::FusedJoin { levels, head_proj } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    // Pre-build every level's index, then run the fused
                    // kernel.
                    let t = Instant::now();
                    for (step, _) in levels {
                        let storage = &mut ctx.relations[step.relation];
                        let version = match step.version {
                            VersionSel::Full => &mut storage.full,
                            VersionSel::Delta => &mut storage.delta,
                        };
                        version.index_on(ctx.device, &step.inner_key_cols)?;
                    }
                    ctx.stats.add_phase(Phase::IndexFull, t.elapsed());

                    let t = Instant::now();
                    let fused_levels: Vec<FusedLevel<'_>> = levels
                        .iter()
                        .map(|(step, filters)| {
                            let storage = &ctx.relations[step.relation];
                            let version = match step.version {
                                VersionSel::Full => &storage.full,
                                VersionSel::Delta => &storage.delta,
                            };
                            FusedLevel {
                                step,
                                inner: version
                                    .existing_index(&step.inner_key_cols)
                                    .expect("index built above"),
                                filters: filters.as_slice(),
                            }
                        })
                        .collect();
                    batch = fused_rule_join_batch(ctx.device, &batch, &fused_levels, head_proj);
                    ctx.stats.add_phase(Phase::Join, t.elapsed());
                }
                RaOp::Project { columns } => {
                    if batch.is_empty() {
                        return Ok(outcome);
                    }
                    let t = Instant::now();
                    batch = project_batch(ctx.device, &batch, columns);
                    ctx.stats.add_phase(Phase::Join, t.elapsed());
                }
                RaOp::Diff { relation } => {
                    let storage = &mut ctx.relations[*relation];
                    let arity = storage.arity;
                    let new = TupleBatch::new(arity, storage.take_new(&ctx.ebm));
                    outcome.new_rows = new.len();

                    let t = Instant::now();
                    let delta = difference_batch(ctx.device, &new, storage.full.canonical());
                    ctx.stats.add_phase(Phase::Deduplication, t.elapsed());
                    outcome.delta_rows = delta.len();

                    // `difference_batch` flags its output sorted-unique, so
                    // the delta HISA build skips its sort/dedup passes.
                    let t = Instant::now();
                    storage.set_delta_batch(&delta)?;
                    ctx.stats.add_phase(Phase::IndexDelta, t.elapsed());

                    let t = Instant::now();
                    let ebm = ctx.ebm;
                    storage.merge_delta_into_full(&ebm)?;
                    ctx.stats.add_phase(Phase::Merge, t.elapsed());
                }
            }
        }
        if !pipeline.ops.is_empty() && !matches!(pipeline.ops.last(), Some(RaOp::Diff { .. })) {
            outcome.derived_rows = batch.len();
            if !batch.is_empty() {
                ctx.relations[pipeline.head].push_new_batch(&batch);
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{ColumnSource, ScanStep};
    use gpulog_device::profile::DeviceProfile;
    use gpulog_hisa::DEFAULT_LOAD_FACTOR;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn scan_project_pipeline_derives_into_the_head_buffer() {
        let d = device();
        let mut relations = vec![
            RelationStorage::new(&d, "E", 2, DEFAULT_LOAD_FACTOR).unwrap(),
            RelationStorage::new(&d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap(),
        ];
        relations[0].load_full(&[1, 2, 3, 4]).unwrap();
        let pipeline = RaPipeline {
            head: 1,
            ops: vec![
                RaOp::Scan {
                    step: ScanStep {
                        relation: 0,
                        version: VersionSel::Full,
                        const_filters: vec![],
                        eq_filters: vec![],
                        keep_cols: vec![0, 1],
                    },
                    filters: vec![],
                },
                RaOp::Project {
                    columns: vec![ColumnSource::Col(1), ColumnSource::Col(0)],
                },
            ],
            text: "R(y, x) :- E(x, y).".into(),
        };
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut relations,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        let outcome = SerialBackend.execute(&mut ctx, &pipeline).unwrap();
        assert_eq!(outcome.derived_rows, 2);
        assert_eq!(
            relations[1].take_new(&EbmConfig::default()),
            vec![2, 1, 4, 3]
        );
    }

    #[test]
    fn diff_pipeline_populates_and_merges_the_delta() {
        let d = device();
        let mut relations = vec![RelationStorage::new(&d, "R", 2, DEFAULT_LOAD_FACTOR).unwrap()];
        relations[0].load_full(&[1, 2]).unwrap();
        relations[0].push_new(&[1, 2, 3, 4, 3, 4, 5, 6]);
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut relations,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        let outcome = SerialBackend
            .execute(&mut ctx, &RaPipeline::diff(0))
            .unwrap();
        assert_eq!(outcome.new_rows, 4);
        assert_eq!(outcome.delta_rows, 2, "dedup removes (3,4); (1,2) in full");
        assert_eq!(relations[0].len(), 3);
        assert!(relations[0].contains(&[5, 6]));
        assert!(stats.phase(Phase::Merge) > 0.0);
    }

    #[test]
    fn empty_pipeline_derives_nothing() {
        let d = device();
        let mut relations = vec![RelationStorage::new(&d, "R", 1, DEFAULT_LOAD_FACTOR).unwrap()];
        let mut stats = RunStats::default();
        let mut ctx = EvalContext {
            device: &d,
            relations: &mut relations,
            stats: &mut stats,
            ebm: EbmConfig::default(),
        };
        let pipeline = RaPipeline {
            head: 0,
            ops: vec![],
            text: "trivially empty".into(),
        };
        let outcome = SerialBackend.execute(&mut ctx, &pipeline).unwrap();
        assert_eq!(outcome, PipelineOutcome::default());
    }
}
