//! A small convenience facade over the engine for the common
//! "parse, load facts, run, read results" workflow used by the examples.

use crate::ast::Program;
use crate::engine::{EngineConfig, GpulogEngine, QueryResult};
use crate::error::EngineResult;
use crate::stats::RunStats;
use gpulog_device::Device;

/// A loaded Datalog program bound to a device, ready to accept facts and run.
///
/// [`Gpulog`] is a thin wrapper over [`GpulogEngine`] that applies the
/// default configuration; drop down to the engine when you need to control
/// eager buffer management, the join strategy, or the hash-table load
/// factor.
///
/// # Examples
///
/// ```
/// use gpulog::Gpulog;
/// use gpulog_device::{Device, profile::DeviceProfile};
///
/// # fn main() -> Result<(), gpulog::EngineError> {
/// let device = Device::new(DeviceProfile::default());
/// let mut datalog = Gpulog::from_source(
///     &device,
///     r"
///     .decl Edge(x: number, y: number)
///     .input Edge
///     .decl Reach(x: number, y: number)
///     .output Reach
///     Reach(x, y) :- Edge(x, y).
///     Reach(x, y) :- Edge(x, z), Reach(z, y).
/// ",
/// )?;
/// datalog.add_facts("Edge", [[0, 1], [1, 2]])?;
/// datalog.run()?;
/// assert!(datalog.contains("Reach", &[0, 2]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Gpulog {
    engine: GpulogEngine,
}

impl Gpulog {
    /// Parses Soufflé-style source and binds it to `device` with the default
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns parse, validation, or device errors.
    pub fn from_source(device: &Device, source: &str) -> EngineResult<Self> {
        Ok(Gpulog {
            engine: GpulogEngine::from_source(device, source, EngineConfig::default())?,
        })
    }

    /// Binds an already-built [`Program`] to `device`.
    ///
    /// # Errors
    ///
    /// Returns validation or device errors.
    pub fn from_program(device: &Device, program: &Program) -> EngineResult<Self> {
        Ok(Gpulog {
            engine: GpulogEngine::new(device, program, EngineConfig::default())?,
        })
    }

    /// Adds extensional facts (see [`GpulogEngine::add_facts`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::BadFacts`] for unknown relations or
    /// arity mismatches.
    pub fn add_facts<I, T>(&mut self, relation: &str, tuples: I) -> EngineResult<()>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u32]>,
    {
        self.engine.add_facts(relation, tuples)
    }

    /// Runs the program to fixpoint.
    ///
    /// # Errors
    ///
    /// Returns device errors or an iteration-limit error.
    pub fn run(&mut self) -> EngineResult<RunStats> {
        self.engine.run()
    }

    /// Number of tuples in a relation.
    pub fn len(&self, relation: &str) -> Option<usize> {
        self.engine.relation_size(relation)
    }

    /// All tuples of a relation in declared column order.
    pub fn tuples(&self, relation: &str) -> Option<Vec<Vec<u32>>> {
        self.engine.relation_tuples(relation)
    }

    /// Borrowed row slices of a relation, without per-row clones (see
    /// [`GpulogEngine::relation_tuples_iter`]).
    pub fn tuples_iter(&self, relation: &str) -> Option<impl Iterator<Item = &[u32]> + '_> {
        self.engine.relation_tuples_iter(relation)
    }

    /// A relation's tuples as an owned [`gpulog_hisa::TupleBatch`].
    pub fn batch(&self, relation: &str) -> Option<gpulog_hisa::TupleBatch> {
        self.engine.relation_batch(relation)
    }

    /// Whether a relation contains a tuple.
    pub fn contains(&self, relation: &str, tuple: &[u32]) -> bool {
        self.engine.contains(relation, tuple)
    }

    /// Publishes the latest completed fixpoint as an immutable, shareable
    /// snapshot (see [`GpulogEngine::snapshot`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::NoFixpoint`] before the first
    /// completed run.
    pub fn snapshot(&self) -> EngineResult<crate::snapshot::FixpointSnapshot> {
        self.engine.snapshot()
    }

    /// Completed fixpoints so far (see [`GpulogEngine::generation`]).
    pub fn generation(&self) -> u64 {
        self.engine.generation()
    }

    /// Stages extensional facts for the next run — the serving writer's
    /// path for growing the extensional database between fixpoints (see
    /// [`GpulogEngine::insert_facts_batch`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::BadFacts`] for unknown relations or
    /// arity mismatches.
    pub fn insert_facts_batch(
        &mut self,
        relation: &str,
        batch: &gpulog_hisa::TupleBatch,
    ) -> EngineResult<()> {
        self.engine.insert_facts_batch(relation, batch)
    }

    /// Runs the program's `?-` goal through the magic-sets rewrite instead
    /// of materializing the full fixpoint (see
    /// [`GpulogEngine::run_query`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::MissingQuery`] when the program
    /// carries no `?-` goal, and goal errors from the rewrite.
    pub fn query(&self) -> EngineResult<QueryResult> {
        self.engine.run_query()
    }

    /// Runs an ad-hoc point query: `Some(c)` binds a column to `c`,
    /// `None` leaves it free (see [`GpulogEngine::run_query_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::EngineError::UnknownQueryRelation`] or
    /// [`crate::EngineError::QueryArityMismatch`] for goals that do not
    /// match the program's declarations.
    pub fn query_with(
        &self,
        relation: &str,
        bindings: &[Option<u32>],
    ) -> EngineResult<QueryResult> {
        self.engine.run_query_with(relation, bindings)
    }

    /// Lint findings collected when the program was built (the default
    /// configuration lints at [`crate::analysis::passes::LintLevel::Warn`],
    /// so findings never fail construction here — inspect them with this
    /// accessor).
    pub fn diagnostics(&self) -> &crate::analysis::passes::ProgramDiagnostics {
        self.engine.diagnostics()
    }

    /// Access to the underlying engine.
    pub fn engine(&self) -> &GpulogEngine {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut GpulogEngine {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;

    #[test]
    fn facade_round_trip() {
        let device = Device::with_workers(DeviceProfile::default(), 4);
        let mut dl = Gpulog::from_source(
            &device,
            r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y).
            Reach(x, y) :- Edge(x, z), Reach(z, y).
        ",
        )
        .unwrap();
        dl.add_facts("Edge", [[0u32, 1], [1, 2], [2, 3]]).unwrap();
        let stats = dl.run().unwrap();
        assert_eq!(dl.len("Reach"), Some(6));
        assert!(dl.contains("Reach", &[0, 3]));
        assert_eq!(dl.tuples("Reach").unwrap().len(), 6);
        assert_eq!(dl.tuples_iter("Reach").unwrap().count(), 6);
        assert_eq!(dl.batch("Reach").unwrap().len(), 6);
        assert!(stats.iterations > 0);
        assert!(dl.engine().relation_size("Edge").is_some());
    }

    #[test]
    fn from_program_uses_the_builder_path() {
        use crate::ast::{ProgramBuilder, Term};
        let device = Device::with_workers(DeviceProfile::default(), 2);
        let program = ProgramBuilder::new()
            .input_relation("E", 2)
            .output_relation("Sym", 2)
            .rule_with("Sym", vec![Term::var("y"), Term::var("x")], |r| {
                r.body("E", vec![Term::var("x"), Term::var("y")]);
            })
            .build()
            .unwrap();
        let mut dl = Gpulog::from_program(&device, &program).unwrap();
        dl.add_facts("E", [[1u32, 2]]).unwrap();
        dl.run().unwrap();
        assert!(dl.contains("Sym", &[2, 1]));
    }

    #[test]
    fn facade_exposes_snapshots_generations_and_staged_inserts() {
        use gpulog_hisa::TupleBatch;
        let device = Device::with_workers(DeviceProfile::default(), 2);
        let mut dl = Gpulog::from_source(
            &device,
            r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y).
            Reach(x, y) :- Edge(x, z), Reach(z, y).
        ",
        )
        .unwrap();
        assert_eq!(dl.generation(), 0);
        assert!(dl.snapshot().is_err(), "no fixpoint yet");
        dl.add_facts("Edge", [[0u32, 1]]).unwrap();
        dl.run().unwrap();
        let first = dl.snapshot().unwrap();
        assert_eq!(first.generation(), 1);
        dl.insert_facts_batch("Edge", &TupleBatch::from_rows(2, [[1u32, 2]]))
            .unwrap();
        dl.run().unwrap();
        assert_eq!(dl.generation(), 2);
        assert_eq!(dl.len("Reach"), Some(3));
        // The earlier snapshot still holds its own fixpoint.
        assert_eq!(first.relation_size("Reach"), Some(1));
    }

    #[test]
    fn facade_runs_goal_directed_queries() {
        let device = Device::with_workers(DeviceProfile::default(), 2);
        let mut dl = Gpulog::from_source(
            &device,
            r"
            .decl Edge(x: number, y: number)
            .input Edge
            .decl Reach(x: number, y: number)
            .output Reach
            Reach(x, y) :- Edge(x, y).
            Reach(x, z) :- Reach(x, y), Edge(y, z).
            ?- Reach(0, y).
        ",
        )
        .unwrap();
        dl.add_facts("Edge", [[0u32, 1], [1, 2], [5, 6]]).unwrap();
        let goal = dl.query().unwrap();
        assert_eq!(goal.answers.as_flat(), &[0, 1, 0, 2]);
        let ad_hoc = dl.query_with("Reach", &[Some(5), None]).unwrap();
        assert_eq!(ad_hoc.answers.as_flat(), &[5, 6]);
        // Goal runs never advance the facade's own fixpoint generation.
        assert_eq!(dl.generation(), 0);
    }
}
