//! Synthetic inputs for context-sensitive points-to analysis (CSPA).
//!
//! The paper's CSPA experiments (Table 4, Figure 6) use the Graspan-derived
//! `Assign` and `Dereference` edge relations extracted from httpd, a
//! statically linked Linux subset, and PostgreSQL. Those extractions are not
//! redistributable, so this module generates synthetic program graphs whose
//! *shape* matches what makes CSPA expensive: long assignment chains (deep
//! value flow), shared dereference targets (alias cliques), and a
//! dereference-to-assignment ratio similar to the paper's inputs
//! (roughly 3:1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A CSPA input: the extensional `Assign` and `Dereference` relations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CspaInput {
    /// Dataset name for reporting (e.g. `"httpd (synthetic)"`).
    pub name: String,
    /// `Assign(dst, src)` edges: the value of `src` flows into `dst`.
    pub assign: Vec<(u32, u32)>,
    /// `Dereference(ptr, val)` edges: `val` is loaded/stored through `ptr`.
    pub dereference: Vec<(u32, u32)>,
}

impl CspaInput {
    /// Number of assign edges.
    pub fn assign_len(&self) -> usize {
        self.assign.len()
    }

    /// Number of dereference edges.
    pub fn dereference_len(&self) -> usize {
        self.dereference.len()
    }

    /// Assign edges as a flat row-major buffer.
    pub fn assign_flat(&self) -> Vec<u32> {
        self.assign.iter().flat_map(|&(a, b)| [a, b]).collect()
    }

    /// Dereference edges as a flat row-major buffer.
    pub fn dereference_flat(&self) -> Vec<u32> {
        self.dereference.iter().flat_map(|&(a, b)| [a, b]).collect()
    }
}

/// Parameters for the synthetic CSPA program-graph generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CspaShape {
    /// Number of program variables.
    pub variables: u32,
    /// Number of `Assign` edges to generate.
    pub assign_edges: usize,
    /// Number of `Dereference` edges to generate.
    pub dereference_edges: usize,
    /// Average length of assignment chains (controls value-flow depth).
    pub chain_length: u32,
    /// Number of distinct dereference targets (controls alias clique sizes:
    /// fewer targets means larger `MemoryAlias`/`ValueAlias` cliques).
    pub deref_targets: u32,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a synthetic CSPA input with the given shape.
pub fn generate(name: impl Into<String>, shape: CspaShape) -> CspaInput {
    let mut rng = SmallRng::seed_from_u64(shape.seed);
    let vars = shape.variables.max(4);

    // Assign edges: mostly chains (v_{i+1} := v_i within a chain), with a few
    // cross-chain assignments to merge value flows.
    let mut assign = Vec::with_capacity(shape.assign_edges);
    let chain_len = shape.chain_length.max(2);
    let mut chain_start = 0u32;
    while assign.len() < shape.assign_edges {
        let this_len = chain_len + rng.gen_range(0..chain_len);
        for i in 0..this_len {
            if assign.len() >= shape.assign_edges {
                break;
            }
            let src = (chain_start + i) % vars;
            let dst = (chain_start + i + 1) % vars;
            assign.push((dst, src));
            // Occasionally merge with a random earlier variable.
            if rng.gen_bool(0.08) && assign.len() < shape.assign_edges {
                let other = rng.gen_range(0..vars);
                assign.push((dst, other));
            }
        }
        chain_start = (chain_start + this_len + 1) % vars;
    }

    // Dereference edges: pointers spread over all variables, values drawn
    // from a limited pool of targets so that dereference chains meet.
    let targets = shape.deref_targets.max(2).min(vars);
    let mut dereference = Vec::with_capacity(shape.dereference_edges);
    for _ in 0..shape.dereference_edges {
        let ptr = rng.gen_range(0..vars);
        let val = rng.gen_range(0..targets);
        dereference.push((ptr, val));
    }

    let mut input = CspaInput {
        name: name.into(),
        assign,
        dereference,
    };
    input.assign.sort_unstable();
    input.assign.dedup();
    input.dereference.sort_unstable();
    input.dereference.dedup();
    input
}

/// A scaled-down stand-in for the paper's httpd input (Assign 3.6e5,
/// Dereference 1.1e6 in the paper; here scaled by `scale`, default 1/400).
pub fn httpd_like(scale: f64) -> CspaInput {
    scaled("httpd (synthetic)", 362_000.0, 1_140_000.0, 24, 17, scale)
}

/// A scaled-down stand-in for the paper's Linux input (Assign 1.98e6,
/// Dereference 7.5e6). Linux has the largest input but, in the paper, the
/// smallest output and the fastest CSPA time — its value-flow chains are
/// shallow — so the synthetic stand-in uses shorter chains and more
/// dereference targets.
pub fn linux_like(scale: f64) -> CspaInput {
    scaled("linux (synthetic)", 1_980_000.0, 7_500_000.0, 6, 900, scale)
}

/// A scaled-down stand-in for the paper's PostgreSQL input (Assign 1.2e6,
/// Dereference 3.46e6) with deep chains and few targets (largest output).
pub fn postgres_like(scale: f64) -> CspaInput {
    scaled(
        "postgres (synthetic)",
        1_200_000.0,
        3_460_000.0,
        30,
        13,
        scale,
    )
}

fn scaled(
    name: &str,
    paper_assign: f64,
    paper_deref: f64,
    chain_length: u32,
    deref_targets: u32,
    scale: f64,
) -> CspaInput {
    let assign_edges = (paper_assign * scale).max(32.0) as usize;
    let dereference_edges = (paper_deref * scale).max(32.0) as usize;
    let variables = (assign_edges as u32).max(64);
    generate(
        name,
        CspaShape {
            variables,
            assign_edges,
            dereference_edges,
            chain_length,
            deref_targets,
            seed: 0x5eed_c59a,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_respects_sizes() {
        let shape = CspaShape {
            variables: 1000,
            assign_edges: 800,
            dereference_edges: 2400,
            chain_length: 10,
            deref_targets: 20,
            seed: 42,
        };
        let a = generate("x", shape);
        let b = generate("x", shape);
        assert_eq!(a, b);
        // Dedup may trim a little, but the scale must hold.
        assert!(a.assign_len() > 600 && a.assign_len() <= 800 + 80);
        assert!(a.dereference_len() > 1800 && a.dereference_len() <= 2400);
    }

    #[test]
    fn paper_stand_ins_keep_the_paper_input_ratios() {
        let httpd = httpd_like(1.0 / 400.0);
        let ratio = httpd.dereference_len() as f64 / httpd.assign_len() as f64;
        assert!(
            ratio > 2.0 && ratio < 4.5,
            "httpd deref/assign ratio {ratio}"
        );
        let linux = linux_like(1.0 / 400.0);
        assert!(linux.assign_len() > httpd.assign_len());
        let postgres = postgres_like(1.0 / 400.0);
        assert!(postgres.assign_len() > httpd.assign_len());
        assert!(postgres.assign_len() < linux.assign_len());
    }

    #[test]
    fn flat_buffers_have_even_length() {
        let input = httpd_like(1.0 / 1000.0);
        assert_eq!(input.assign_flat().len(), input.assign_len() * 2);
        assert_eq!(input.dereference_flat().len(), input.dereference_len() * 2);
    }

    #[test]
    fn edges_are_deduplicated() {
        let input = postgres_like(1.0 / 800.0);
        let mut assign = input.assign.clone();
        assign.sort_unstable();
        assign.dedup();
        assert_eq!(assign.len(), input.assign.len());
    }
}
