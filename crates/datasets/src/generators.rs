//! Synthetic graph generators, one per topology class used in the paper's
//! evaluation.
//!
//! The paper's REACH and SG experiments run over SNAP social/collaboration
//! networks, SuiteSparse finite-element meshes, P2P overlays, and road
//! networks. Those inputs are not redistributable here, so each topology
//! class gets a generator that reproduces its load-bearing characteristics
//! for Datalog evaluation: the fixpoint depth (diameter), the fan-out
//! distribution (join output sizes), and the tail behaviour (many late
//! iterations with tiny deltas for road networks, few fat iterations for
//! social networks).

use crate::graph::EdgeList;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for reproducible datasets.
fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Uniform random directed graph (Erdős–Rényi style) with `nodes` nodes and
/// approximately `edges` edges.
pub fn random_graph(nodes: u32, edges: usize, seed: u64) -> EdgeList {
    let mut rng = rng(seed);
    let mut list = Vec::with_capacity(edges);
    for _ in 0..edges {
        let a = rng.gen_range(0..nodes);
        let b = rng.gen_range(0..nodes);
        if a != b {
            list.push((a, b));
        }
    }
    let mut g = EdgeList::new(format!("random-{nodes}n-{edges}e"), list);
    g.dedup();
    g
}

/// A long path with occasional shortcut edges: the high-diameter, tiny-delta
/// shape of road networks (`usroads`, `SF.cedge`). REACH on this class runs
/// for hundreds of iterations with small deltas — the long-tail behaviour
/// eager buffer management targets.
pub fn road_network(nodes: u32, shortcut_every: u32, seed: u64) -> EdgeList {
    let mut rng = rng(seed);
    let mut edges = Vec::new();
    for i in 0..nodes.saturating_sub(1) {
        edges.push((i, i + 1));
        // Roads are (mostly) bidirectional.
        edges.push((i + 1, i));
    }
    if shortcut_every > 0 {
        for i in (0..nodes).step_by(shortcut_every as usize) {
            let span = rng.gen_range(2..=shortcut_every.max(3));
            let target = (i + span).min(nodes.saturating_sub(1));
            if target != i {
                edges.push((i, target));
            }
        }
    }
    let mut g = EdgeList::new(format!("road-{nodes}n"), edges);
    g.dedup();
    g
}

/// A 2-D grid mesh with diagonal struts: the finite-element shape
/// (`fe_body`, `fe_ocean`, `fe_sphere`, `vsp_finan`-like meshes). Moderate
/// diameter, very regular fan-out.
pub fn mesh_graph(rows: u32, cols: u32, seed: u64) -> EdgeList {
    let mut rng = rng(seed);
    let id = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
            // Occasional diagonal strut, as in an unstructured FE mesh.
            if r + 1 < rows && c + 1 < cols && rng.gen_bool(0.3) {
                edges.push((id(r, c), id(r + 1, c + 1)));
            }
        }
    }
    let mut g = EdgeList::new(format!("mesh-{rows}x{cols}"), edges);
    g.dedup();
    g
}

/// Preferential-attachment (Barabási–Albert style) graph: the power-law,
/// low-diameter shape of social and collaboration networks (`com-dblp`,
/// `CA-HepTH`, `ego-Facebook`, `loc-Brightkite`). Few iterations, large
/// per-iteration joins, heavy skew.
pub fn power_law_graph(nodes: u32, edges_per_node: u32, seed: u64) -> EdgeList {
    let mut rng = rng(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut targets: Vec<u32> = Vec::new(); // node repeated once per degree
                                            // Seed clique.
    let seed_nodes = edges_per_node.max(2).min(nodes);
    for a in 0..seed_nodes {
        for b in 0..seed_nodes {
            if a != b {
                edges.push((a, b));
                targets.push(b);
            }
        }
    }
    for v in seed_nodes..nodes {
        for _ in 0..edges_per_node {
            let t = if targets.is_empty() {
                rng.gen_range(0..v)
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if t != v {
                edges.push((v, t));
                // Social edges are reciprocated often enough to matter.
                if rng.gen_bool(0.5) {
                    edges.push((t, v));
                }
                targets.push(t);
                targets.push(v);
            }
        }
    }
    let mut g = EdgeList::new(format!("powerlaw-{nodes}n"), edges);
    g.dedup();
    g
}

/// Hub-and-spoke graph: `hubs` high-degree centers, each spoke node wired to
/// a random hub in both directions, and a hub-to-hub ring so everything is
/// mutually reachable. Unlike [`power_law_graph`] (a smooth preferential-
/// attachment degree *distribution*), this is the airline-network extreme:
/// a hard two-tier topology where nearly every path is spoke → hub → spoke.
/// REACH converges in very few iterations but the hub joins are maximally
/// skewed — the worst case for hash-partition balance and the best case for
/// overlapping the resulting fat merges behind compute.
pub fn hub_graph(nodes: u32, hubs: u32, seed: u64) -> EdgeList {
    let mut rng = rng(seed);
    let hubs = hubs.max(1).min(nodes.max(1));
    let mut edges = Vec::new();
    // Hub-to-hub ring (nodes 0..hubs are the hubs).
    for h in 0..hubs {
        let next = (h + 1) % hubs;
        if next != h {
            edges.push((h, next));
        }
    }
    // Each spoke attaches to one random hub, bidirectionally.
    for v in hubs..nodes {
        let h = rng.gen_range(0..hubs);
        edges.push((v, h));
        edges.push((h, v));
    }
    let mut g = EdgeList::new(format!("hub-{nodes}n-{hubs}h"), edges);
    g.dedup();
    g
}

/// Layered random DAG: the peer-to-peer overlay shape (`Gnutella31`) and a
/// convenient acyclic workload for SG (bounded generation depth).
pub fn layered_dag(layers: u32, width: u32, fanout: u32, seed: u64) -> EdgeList {
    let mut rng = rng(seed);
    let id = |layer: u32, i: u32| layer * width + i;
    let mut edges = Vec::new();
    for layer in 0..layers.saturating_sub(1) {
        for i in 0..width {
            for _ in 0..fanout {
                let j = rng.gen_range(0..width);
                edges.push((id(layer, i), id(layer + 1, j)));
            }
        }
    }
    let mut g = EdgeList::new(format!("dag-{layers}x{width}"), edges);
    g.dedup();
    g
}

/// A balanced binary tree with `depth` levels — the cleanest SG workload
/// (nodes of the same depth are in the same generation) and the graph family
/// used for quick sanity checks.
pub fn binary_tree(depth: u32) -> EdgeList {
    let mut edges = Vec::new();
    let nodes = (1u32 << depth) - 1;
    for v in 0..nodes {
        for child in [2 * v + 1, 2 * v + 2] {
            if child < nodes {
                edges.push((v, child));
            }
        }
    }
    EdgeList::new(format!("tree-d{depth}"), edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_is_deterministic_per_seed() {
        let a = random_graph(100, 500, 7);
        let b = random_graph(100, 500, 7);
        let c = random_graph(100, 500, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.len() > 400);
        assert!(a.id_bound() <= 100);
    }

    #[test]
    fn road_network_has_high_diameter_shape() {
        let g = road_network(1000, 50, 1);
        // Mostly the bidirectional chain: ~2 * (n - 1) edges plus shortcuts.
        assert!(g.len() >= 1998);
        assert!(g.len() < 2100);
    }

    #[test]
    fn mesh_graph_covers_the_grid() {
        let g = mesh_graph(10, 10, 1);
        assert_eq!(g.node_count(), 100);
        // 2 * 9 * 10 orthogonal edges plus some diagonals.
        assert!(g.len() >= 180);
    }

    #[test]
    fn power_law_graph_has_skewed_degree() {
        let g = power_law_graph(500, 3, 3);
        let mut in_degree = vec![0usize; g.id_bound() as usize];
        for &(_, b) in &g.edges {
            in_degree[b as usize] += 1;
        }
        let max = *in_degree.iter().max().unwrap();
        let mean = g.len() as f64 / in_degree.len() as f64;
        assert!(
            max as f64 > 5.0 * mean,
            "expected a hub: max {max}, mean {mean:.1}"
        );
    }

    #[test]
    fn hub_graph_concentrates_degree_on_the_hubs() {
        let g = hub_graph(500, 4, 5);
        assert_eq!(hub_graph(500, 4, 5), g); // deterministic per seed
        let mut degree = vec![0usize; g.id_bound() as usize];
        for &(a, b) in &g.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        // Every non-hub node touches exactly one hub (two directed edges).
        assert!(degree[4..].iter().all(|&d| d == 2));
        // Hubs carry everything else: ~496 spokes split across 4 hubs.
        assert!(degree[..4].iter().all(|&d| d > 50));
        // The ring keeps the hub tier strongly connected.
        for h in 0..4u32 {
            assert!(g.edges.contains(&(h, (h + 1) % 4)));
        }
    }

    #[test]
    fn layered_dag_is_acyclic_by_construction() {
        let g = layered_dag(5, 10, 2, 9);
        assert!(g.edges.iter().all(|&(a, b)| b / 10 == a / 10 + 1));
    }

    #[test]
    fn binary_tree_has_expected_edge_count() {
        let g = binary_tree(4); // 15 nodes
        assert_eq!(g.len(), 14);
        assert_eq!(g.node_count(), 15);
    }

    #[test]
    fn generators_produce_no_self_loops_or_duplicates() {
        for g in [
            random_graph(50, 300, 2),
            road_network(200, 20, 2),
            mesh_graph(8, 8, 2),
            power_law_graph(200, 3, 2),
            hub_graph(200, 3, 2),
            layered_dag(4, 8, 3, 2),
        ] {
            let mut seen = std::collections::HashSet::new();
            for &(a, b) in &g.edges {
                assert_ne!(a, b, "self loop in {}", g.name);
                assert!(seen.insert((a, b)), "duplicate edge in {}", g.name);
            }
        }
    }
}
